/root/repo/target/release/deps/ehna-41237d4fe1932f33.d: src/lib.rs

/root/repo/target/release/deps/libehna-41237d4fe1932f33.rlib: src/lib.rs

/root/repo/target/release/deps/libehna-41237d4fe1932f33.rmeta: src/lib.rs

src/lib.rs:
