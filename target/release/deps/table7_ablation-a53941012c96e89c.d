/root/repo/target/release/deps/table7_ablation-a53941012c96e89c.d: crates/bench/src/bin/table7_ablation.rs

/root/repo/target/release/deps/table7_ablation-a53941012c96e89c: crates/bench/src/bin/table7_ablation.rs

crates/bench/src/bin/table7_ablation.rs:
