/root/repo/target/release/deps/ehna_datasets-23cccaa77f7928c9.d: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

/root/repo/target/release/deps/libehna_datasets-23cccaa77f7928c9.rlib: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

/root/repo/target/release/deps/libehna_datasets-23cccaa77f7928c9.rmeta: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

crates/datasets/src/lib.rs:
crates/datasets/src/bipartite.rs:
crates/datasets/src/coauthor.rs:
crates/datasets/src/community.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/social.rs:
crates/datasets/src/util.rs:
