/root/repo/target/release/deps/ehna_cli-f00e8f5555d541e7.d: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/query.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/serve.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs

/root/repo/target/release/deps/libehna_cli-f00e8f5555d541e7.rlib: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/query.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/serve.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs

/root/repo/target/release/deps/libehna_cli-f00e8f5555d541e7.rmeta: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/query.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/serve.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs

crates/cli/src/lib.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/export.rs:
crates/cli/src/commands/generate.rs:
crates/cli/src/commands/linkpred.rs:
crates/cli/src/commands/nodeclass.rs:
crates/cli/src/commands/query.rs:
crates/cli/src/commands/reconstruct.rs:
crates/cli/src/commands/serve.rs:
crates/cli/src/commands/stats.rs:
crates/cli/src/commands/train.rs:
crates/cli/src/flags.rs:
crates/cli/src/method.rs:
