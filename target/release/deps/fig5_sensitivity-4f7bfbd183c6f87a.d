/root/repo/target/release/deps/fig5_sensitivity-4f7bfbd183c6f87a.d: crates/bench/src/bin/fig5_sensitivity.rs

/root/repo/target/release/deps/fig5_sensitivity-4f7bfbd183c6f87a: crates/bench/src/bin/fig5_sensitivity.rs

crates/bench/src/bin/fig5_sensitivity.rs:
