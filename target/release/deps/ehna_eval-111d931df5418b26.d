/root/repo/target/release/deps/ehna_eval-111d931df5418b26.d: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libehna_eval-111d931df5418b26.rlib: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libehna_eval-111d931df5418b26.rmeta: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/linkpred.rs:
crates/eval/src/logreg.rs:
crates/eval/src/metrics.rs:
crates/eval/src/nodeclass.rs:
crates/eval/src/operators.rs:
crates/eval/src/ranking.rs:
crates/eval/src/reconstruction.rs:
crates/eval/src/split.rs:
