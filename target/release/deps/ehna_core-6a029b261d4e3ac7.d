/root/repo/target/release/deps/ehna_core-6a029b261d4e3ac7.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libehna_core-6a029b261d4e3ac7.rlib: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libehna_core-6a029b261d4e3ac7.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/attention.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/model.rs:
crates/core/src/negative.rs:
crates/core/src/trainer.rs:
crates/core/src/variants.rs:
