/root/repo/target/release/deps/ehna-c1d7ad22b8f94392.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ehna-c1d7ad22b8f94392: crates/cli/src/main.rs

crates/cli/src/main.rs:
