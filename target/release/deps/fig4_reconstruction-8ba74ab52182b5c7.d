/root/repo/target/release/deps/fig4_reconstruction-8ba74ab52182b5c7.d: crates/bench/src/bin/fig4_reconstruction.rs

/root/repo/target/release/deps/fig4_reconstruction-8ba74ab52182b5c7: crates/bench/src/bin/fig4_reconstruction.rs

crates/bench/src/bin/fig4_reconstruction.rs:
