/root/repo/target/release/deps/serve-02981feb0ec75610.d: crates/bench/benches/serve.rs

/root/repo/target/release/deps/serve-02981feb0ec75610: crates/bench/benches/serve.rs

crates/bench/benches/serve.rs:
