/root/repo/target/release/deps/table3_6_linkpred-fbff9a6f755a86f2.d: crates/bench/src/bin/table3_6_linkpred.rs

/root/repo/target/release/deps/table3_6_linkpred-fbff9a6f755a86f2: crates/bench/src/bin/table3_6_linkpred.rs

crates/bench/src/bin/table3_6_linkpred.rs:
