/root/repo/target/release/deps/ehna_bench-a3e004701031eade.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libehna_bench-a3e004701031eade.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libehna_bench-a3e004701031eade.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
