/root/repo/target/release/deps/table8_timing-ccf71a2fbdbea62e.d: crates/bench/src/bin/table8_timing.rs

/root/repo/target/release/deps/table8_timing-ccf71a2fbdbea62e: crates/bench/src/bin/table8_timing.rs

crates/bench/src/bin/table8_timing.rs:
