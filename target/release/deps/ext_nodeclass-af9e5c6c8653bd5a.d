/root/repo/target/release/deps/ext_nodeclass-af9e5c6c8653bd5a.d: crates/bench/src/bin/ext_nodeclass.rs

/root/repo/target/release/deps/ext_nodeclass-af9e5c6c8653bd5a: crates/bench/src/bin/ext_nodeclass.rs

crates/bench/src/bin/ext_nodeclass.rs:
