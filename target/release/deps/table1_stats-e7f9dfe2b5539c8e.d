/root/repo/target/release/deps/table1_stats-e7f9dfe2b5539c8e.d: crates/bench/src/bin/table1_stats.rs

/root/repo/target/release/deps/table1_stats-e7f9dfe2b5539c8e: crates/bench/src/bin/table1_stats.rs

crates/bench/src/bin/table1_stats.rs:
