/root/repo/target/release/deps/ehna_walks-339317e33269382c.d: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

/root/repo/target/release/deps/libehna_walks-339317e33269382c.rlib: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

/root/repo/target/release/deps/libehna_walks-339317e33269382c.rmeta: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

crates/walks/src/lib.rs:
crates/walks/src/alias.rs:
crates/walks/src/context.rs:
crates/walks/src/ctdne.rs:
crates/walks/src/decay.rs:
crates/walks/src/neighborhood.rs:
crates/walks/src/node2vec.rs:
crates/walks/src/stats.rs:
crates/walks/src/temporal.rs:
