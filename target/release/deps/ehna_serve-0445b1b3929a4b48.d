/root/repo/target/release/deps/ehna_serve-0445b1b3929a4b48.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libehna_serve-0445b1b3929a4b48.rlib: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

/root/repo/target/release/deps/libehna_serve-0445b1b3929a4b48.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/engine.rs:
crates/serve/src/index.rs:
crates/serve/src/json.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
crates/serve/src/store.rs:
