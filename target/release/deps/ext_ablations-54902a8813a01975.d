/root/repo/target/release/deps/ext_ablations-54902a8813a01975.d: crates/bench/src/bin/ext_ablations.rs

/root/repo/target/release/deps/ext_ablations-54902a8813a01975: crates/bench/src/bin/ext_ablations.rs

crates/bench/src/bin/ext_ablations.rs:
