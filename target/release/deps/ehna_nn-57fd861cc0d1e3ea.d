/root/repo/target/release/deps/ehna_nn-57fd861cc0d1e3ea.d: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

/root/repo/target/release/deps/libehna_nn-57fd861cc0d1e3ea.rlib: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

/root/repo/target/release/deps/libehna_nn-57fd861cc0d1e3ea.rmeta: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

crates/nn/src/lib.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/ioutil.rs:
crates/nn/src/kernels.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/store.rs:
