/root/repo/target/release/deps/ehna_baselines-77d891ac79e00d6d.d: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

/root/repo/target/release/deps/libehna_baselines-77d891ac79e00d6d.rlib: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

/root/repo/target/release/deps/libehna_baselines-77d891ac79e00d6d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctdne.rs:
crates/baselines/src/htne.rs:
crates/baselines/src/line.rs:
crates/baselines/src/node2vec.rs:
crates/baselines/src/skipgram.rs:
