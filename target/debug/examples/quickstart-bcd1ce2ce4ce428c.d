/root/repo/target/debug/examples/quickstart-bcd1ce2ce4ce428c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bcd1ce2ce4ce428c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
