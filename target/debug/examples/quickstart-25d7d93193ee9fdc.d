/root/repo/target/debug/examples/quickstart-25d7d93193ee9fdc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-25d7d93193ee9fdc: examples/quickstart.rs

examples/quickstart.rs:
