/root/repo/target/debug/examples/link_prediction-0690bacda3cf0166.d: examples/link_prediction.rs

/root/repo/target/debug/examples/link_prediction-0690bacda3cf0166: examples/link_prediction.rs

examples/link_prediction.rs:
