/root/repo/target/debug/examples/time_sliced_embeddings-d07dcd01d6b525ba.d: examples/time_sliced_embeddings.rs

/root/repo/target/debug/examples/time_sliced_embeddings-d07dcd01d6b525ba: examples/time_sliced_embeddings.rs

examples/time_sliced_embeddings.rs:
