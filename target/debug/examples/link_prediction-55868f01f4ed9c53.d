/root/repo/target/debug/examples/link_prediction-55868f01f4ed9c53.d: examples/link_prediction.rs Cargo.toml

/root/repo/target/debug/examples/liblink_prediction-55868f01f4ed9c53.rmeta: examples/link_prediction.rs Cargo.toml

examples/link_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
