/root/repo/target/debug/examples/time_sliced_embeddings-ed7486aa3628b936.d: examples/time_sliced_embeddings.rs Cargo.toml

/root/repo/target/debug/examples/libtime_sliced_embeddings-ed7486aa3628b936.rmeta: examples/time_sliced_embeddings.rs Cargo.toml

examples/time_sliced_embeddings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
