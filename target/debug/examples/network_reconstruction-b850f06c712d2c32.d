/root/repo/target/debug/examples/network_reconstruction-b850f06c712d2c32.d: examples/network_reconstruction.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_reconstruction-b850f06c712d2c32.rmeta: examples/network_reconstruction.rs Cargo.toml

examples/network_reconstruction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
