/root/repo/target/debug/examples/network_reconstruction-0cd50445eea1cafa.d: examples/network_reconstruction.rs

/root/repo/target/debug/examples/network_reconstruction-0cd50445eea1cafa: examples/network_reconstruction.rs

examples/network_reconstruction.rs:
