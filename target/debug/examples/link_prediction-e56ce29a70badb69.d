/root/repo/target/debug/examples/link_prediction-e56ce29a70badb69.d: examples/link_prediction.rs

/root/repo/target/debug/examples/link_prediction-e56ce29a70badb69: examples/link_prediction.rs

examples/link_prediction.rs:
