/root/repo/target/debug/examples/time_sliced_embeddings-37f0201bcc04a813.d: examples/time_sliced_embeddings.rs

/root/repo/target/debug/examples/time_sliced_embeddings-37f0201bcc04a813: examples/time_sliced_embeddings.rs

examples/time_sliced_embeddings.rs:
