/root/repo/target/debug/examples/quickstart-ad32dba53367c505.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ad32dba53367c505: examples/quickstart.rs

examples/quickstart.rs:
