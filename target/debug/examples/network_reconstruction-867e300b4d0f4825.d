/root/repo/target/debug/examples/network_reconstruction-867e300b4d0f4825.d: examples/network_reconstruction.rs

/root/repo/target/debug/examples/network_reconstruction-867e300b4d0f4825: examples/network_reconstruction.rs

examples/network_reconstruction.rs:
