/root/repo/target/debug/examples/coauthor_evolution-4daa2df661fedfab.d: examples/coauthor_evolution.rs Cargo.toml

/root/repo/target/debug/examples/libcoauthor_evolution-4daa2df661fedfab.rmeta: examples/coauthor_evolution.rs Cargo.toml

examples/coauthor_evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
