/root/repo/target/debug/examples/coauthor_evolution-640db4ba9e70b1d7.d: examples/coauthor_evolution.rs

/root/repo/target/debug/examples/coauthor_evolution-640db4ba9e70b1d7: examples/coauthor_evolution.rs

examples/coauthor_evolution.rs:
