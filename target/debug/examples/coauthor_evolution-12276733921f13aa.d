/root/repo/target/debug/examples/coauthor_evolution-12276733921f13aa.d: examples/coauthor_evolution.rs

/root/repo/target/debug/examples/coauthor_evolution-12276733921f13aa: examples/coauthor_evolution.rs

examples/coauthor_evolution.rs:
