/root/repo/target/debug/deps/walks_on_datasets-c221a0c245ee241d.d: tests/walks_on_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libwalks_on_datasets-c221a0c245ee241d.rmeta: tests/walks_on_datasets.rs Cargo.toml

tests/walks_on_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
