/root/repo/target/debug/deps/ext_nodeclass-ff7b1f887e0ac081.d: crates/bench/src/bin/ext_nodeclass.rs

/root/repo/target/debug/deps/ext_nodeclass-ff7b1f887e0ac081: crates/bench/src/bin/ext_nodeclass.rs

crates/bench/src/bin/ext_nodeclass.rs:
