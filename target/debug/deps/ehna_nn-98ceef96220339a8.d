/root/repo/target/debug/deps/ehna_nn-98ceef96220339a8.d: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libehna_nn-98ceef96220339a8.rmeta: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/ioutil.rs:
crates/nn/src/kernels.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
