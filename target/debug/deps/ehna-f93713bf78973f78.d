/root/repo/target/debug/deps/ehna-f93713bf78973f78.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ehna-f93713bf78973f78: crates/cli/src/main.rs

crates/cli/src/main.rs:
