/root/repo/target/debug/deps/ehna-7028de32e545a2bd.d: src/lib.rs

/root/repo/target/debug/deps/ehna-7028de32e545a2bd: src/lib.rs

src/lib.rs:
