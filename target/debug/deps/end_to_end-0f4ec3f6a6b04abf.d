/root/repo/target/debug/deps/end_to_end-0f4ec3f6a6b04abf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0f4ec3f6a6b04abf: tests/end_to_end.rs

tests/end_to_end.rs:
