/root/repo/target/debug/deps/properties-c5506ee3321a21ac.d: crates/tgraph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c5506ee3321a21ac.rmeta: crates/tgraph/tests/properties.rs Cargo.toml

crates/tgraph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
