/root/repo/target/debug/deps/reachability-823a1455a3400ddc.d: crates/walks/tests/reachability.rs Cargo.toml

/root/repo/target/debug/deps/libreachability-823a1455a3400ddc.rmeta: crates/walks/tests/reachability.rs Cargo.toml

crates/walks/tests/reachability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
