/root/repo/target/debug/deps/ehna_datasets-65af7f0ca9590958.d: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libehna_datasets-65af7f0ca9590958.rmeta: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/bipartite.rs:
crates/datasets/src/coauthor.rs:
crates/datasets/src/community.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/social.rs:
crates/datasets/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
