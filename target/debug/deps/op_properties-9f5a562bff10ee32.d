/root/repo/target/debug/deps/op_properties-9f5a562bff10ee32.d: crates/nn/tests/op_properties.rs

/root/repo/target/debug/deps/op_properties-9f5a562bff10ee32: crates/nn/tests/op_properties.rs

crates/nn/tests/op_properties.rs:
