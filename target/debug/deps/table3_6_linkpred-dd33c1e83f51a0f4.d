/root/repo/target/debug/deps/table3_6_linkpred-dd33c1e83f51a0f4.d: crates/bench/src/bin/table3_6_linkpred.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_6_linkpred-dd33c1e83f51a0f4.rmeta: crates/bench/src/bin/table3_6_linkpred.rs Cargo.toml

crates/bench/src/bin/table3_6_linkpred.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
