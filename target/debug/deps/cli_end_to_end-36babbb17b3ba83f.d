/root/repo/target/debug/deps/cli_end_to_end-36babbb17b3ba83f.d: tests/cli_end_to_end.rs

/root/repo/target/debug/deps/cli_end_to_end-36babbb17b3ba83f: tests/cli_end_to_end.rs

tests/cli_end_to_end.rs:
