/root/repo/target/debug/deps/ehna_tgraph-fac4c778619d63ba.d: crates/tgraph/src/lib.rs crates/tgraph/src/algo.rs crates/tgraph/src/builder.rs crates/tgraph/src/edge.rs crates/tgraph/src/embedding.rs crates/tgraph/src/error.rs crates/tgraph/src/graph.rs crates/tgraph/src/ids.rs crates/tgraph/src/io.rs crates/tgraph/src/names.rs crates/tgraph/src/prep.rs crates/tgraph/src/stats.rs crates/tgraph/src/view.rs

/root/repo/target/debug/deps/libehna_tgraph-fac4c778619d63ba.rlib: crates/tgraph/src/lib.rs crates/tgraph/src/algo.rs crates/tgraph/src/builder.rs crates/tgraph/src/edge.rs crates/tgraph/src/embedding.rs crates/tgraph/src/error.rs crates/tgraph/src/graph.rs crates/tgraph/src/ids.rs crates/tgraph/src/io.rs crates/tgraph/src/names.rs crates/tgraph/src/prep.rs crates/tgraph/src/stats.rs crates/tgraph/src/view.rs

/root/repo/target/debug/deps/libehna_tgraph-fac4c778619d63ba.rmeta: crates/tgraph/src/lib.rs crates/tgraph/src/algo.rs crates/tgraph/src/builder.rs crates/tgraph/src/edge.rs crates/tgraph/src/embedding.rs crates/tgraph/src/error.rs crates/tgraph/src/graph.rs crates/tgraph/src/ids.rs crates/tgraph/src/io.rs crates/tgraph/src/names.rs crates/tgraph/src/prep.rs crates/tgraph/src/stats.rs crates/tgraph/src/view.rs

crates/tgraph/src/lib.rs:
crates/tgraph/src/algo.rs:
crates/tgraph/src/builder.rs:
crates/tgraph/src/edge.rs:
crates/tgraph/src/embedding.rs:
crates/tgraph/src/error.rs:
crates/tgraph/src/graph.rs:
crates/tgraph/src/ids.rs:
crates/tgraph/src/io.rs:
crates/tgraph/src/names.rs:
crates/tgraph/src/prep.rs:
crates/tgraph/src/stats.rs:
crates/tgraph/src/view.rs:
