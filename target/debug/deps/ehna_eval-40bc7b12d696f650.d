/root/repo/target/debug/deps/ehna_eval-40bc7b12d696f650.d: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libehna_eval-40bc7b12d696f650.rmeta: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/linkpred.rs:
crates/eval/src/logreg.rs:
crates/eval/src/metrics.rs:
crates/eval/src/nodeclass.rs:
crates/eval/src/operators.rs:
crates/eval/src/ranking.rs:
crates/eval/src/reconstruction.rs:
crates/eval/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
