/root/repo/target/debug/deps/baselines-64a0bd89e22a7e10.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-64a0bd89e22a7e10.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
