/root/repo/target/debug/deps/ehna_baselines-1bd10fd74c1f1ac4.d: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs Cargo.toml

/root/repo/target/debug/deps/libehna_baselines-1bd10fd74c1f1ac4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ctdne.rs:
crates/baselines/src/htne.rs:
crates/baselines/src/line.rs:
crates/baselines/src/node2vec.rs:
crates/baselines/src/skipgram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
