/root/repo/target/debug/deps/ehna_nn-436c52f7896a34ee.d: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

/root/repo/target/debug/deps/ehna_nn-436c52f7896a34ee: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

crates/nn/src/lib.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/ioutil.rs:
crates/nn/src/kernels.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/store.rs:
