/root/repo/target/debug/deps/ext_nodeclass-c3cc702175dec48e.d: crates/bench/src/bin/ext_nodeclass.rs

/root/repo/target/debug/deps/ext_nodeclass-c3cc702175dec48e: crates/bench/src/bin/ext_nodeclass.rs

crates/bench/src/bin/ext_nodeclass.rs:
