/root/repo/target/debug/deps/reachability-3bcffa3c511ca3b1.d: crates/walks/tests/reachability.rs

/root/repo/target/debug/deps/reachability-3bcffa3c511ca3b1: crates/walks/tests/reachability.rs

crates/walks/tests/reachability.rs:
