/root/repo/target/debug/deps/table7_ablation-73f142275eeecaaa.d: crates/bench/src/bin/table7_ablation.rs

/root/repo/target/debug/deps/table7_ablation-73f142275eeecaaa: crates/bench/src/bin/table7_ablation.rs

crates/bench/src/bin/table7_ablation.rs:
