/root/repo/target/debug/deps/fig5_sensitivity-206fde6c5877cfca.d: crates/bench/src/bin/fig5_sensitivity.rs

/root/repo/target/debug/deps/fig5_sensitivity-206fde6c5877cfca: crates/bench/src/bin/fig5_sensitivity.rs

crates/bench/src/bin/fig5_sensitivity.rs:
