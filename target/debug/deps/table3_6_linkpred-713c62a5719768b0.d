/root/repo/target/debug/deps/table3_6_linkpred-713c62a5719768b0.d: crates/bench/src/bin/table3_6_linkpred.rs

/root/repo/target/debug/deps/table3_6_linkpred-713c62a5719768b0: crates/bench/src/bin/table3_6_linkpred.rs

crates/bench/src/bin/table3_6_linkpred.rs:
