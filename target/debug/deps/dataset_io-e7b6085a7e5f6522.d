/root/repo/target/debug/deps/dataset_io-e7b6085a7e5f6522.d: tests/dataset_io.rs

/root/repo/target/debug/deps/dataset_io-e7b6085a7e5f6522: tests/dataset_io.rs

tests/dataset_io.rs:
