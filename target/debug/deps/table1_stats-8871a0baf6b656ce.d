/root/repo/target/debug/deps/table1_stats-8871a0baf6b656ce.d: crates/bench/src/bin/table1_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_stats-8871a0baf6b656ce.rmeta: crates/bench/src/bin/table1_stats.rs Cargo.toml

crates/bench/src/bin/table1_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
