/root/repo/target/debug/deps/table8_timing-b32dd5c99cc42877.d: crates/bench/src/bin/table8_timing.rs

/root/repo/target/debug/deps/table8_timing-b32dd5c99cc42877: crates/bench/src/bin/table8_timing.rs

crates/bench/src/bin/table8_timing.rs:
