/root/repo/target/debug/deps/ehna-4c0c65c16faeb4b2.d: src/lib.rs

/root/repo/target/debug/deps/libehna-4c0c65c16faeb4b2.rlib: src/lib.rs

/root/repo/target/debug/deps/libehna-4c0c65c16faeb4b2.rmeta: src/lib.rs

src/lib.rs:
