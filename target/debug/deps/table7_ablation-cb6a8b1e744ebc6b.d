/root/repo/target/debug/deps/table7_ablation-cb6a8b1e744ebc6b.d: crates/bench/src/bin/table7_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_ablation-cb6a8b1e744ebc6b.rmeta: crates/bench/src/bin/table7_ablation.rs Cargo.toml

crates/bench/src/bin/table7_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
