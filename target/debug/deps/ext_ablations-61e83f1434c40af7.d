/root/repo/target/debug/deps/ext_ablations-61e83f1434c40af7.d: crates/bench/src/bin/ext_ablations.rs

/root/repo/target/debug/deps/ext_ablations-61e83f1434c40af7: crates/bench/src/bin/ext_ablations.rs

crates/bench/src/bin/ext_ablations.rs:
