/root/repo/target/debug/deps/walks_on_datasets-5863d65f7c1b776e.d: tests/walks_on_datasets.rs

/root/repo/target/debug/deps/walks_on_datasets-5863d65f7c1b776e: tests/walks_on_datasets.rs

tests/walks_on_datasets.rs:
