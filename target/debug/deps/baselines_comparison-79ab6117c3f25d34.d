/root/repo/target/debug/deps/baselines_comparison-79ab6117c3f25d34.d: tests/baselines_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_comparison-79ab6117c3f25d34.rmeta: tests/baselines_comparison.rs Cargo.toml

tests/baselines_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
