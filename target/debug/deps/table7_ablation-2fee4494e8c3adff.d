/root/repo/target/debug/deps/table7_ablation-2fee4494e8c3adff.d: crates/bench/src/bin/table7_ablation.rs

/root/repo/target/debug/deps/table7_ablation-2fee4494e8c3adff: crates/bench/src/bin/table7_ablation.rs

crates/bench/src/bin/table7_ablation.rs:
