/root/repo/target/debug/deps/ehna_bench-2182ae31fecc0860.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/ehna_bench-2182ae31fecc0860: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
