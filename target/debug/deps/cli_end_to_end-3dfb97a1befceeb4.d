/root/repo/target/debug/deps/cli_end_to_end-3dfb97a1befceeb4.d: tests/cli_end_to_end.rs

/root/repo/target/debug/deps/cli_end_to_end-3dfb97a1befceeb4: tests/cli_end_to_end.rs

tests/cli_end_to_end.rs:
