/root/repo/target/debug/deps/fig4_reconstruction-a5ab631a6cb7d6dd.d: crates/bench/src/bin/fig4_reconstruction.rs

/root/repo/target/debug/deps/fig4_reconstruction-a5ab631a6cb7d6dd: crates/bench/src/bin/fig4_reconstruction.rs

crates/bench/src/bin/fig4_reconstruction.rs:
