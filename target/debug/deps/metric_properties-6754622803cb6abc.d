/root/repo/target/debug/deps/metric_properties-6754622803cb6abc.d: crates/eval/tests/metric_properties.rs

/root/repo/target/debug/deps/metric_properties-6754622803cb6abc: crates/eval/tests/metric_properties.rs

crates/eval/tests/metric_properties.rs:
