/root/repo/target/debug/deps/ehna_serve-2c16f9aa31ec2553.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/ehna_serve-2c16f9aa31ec2553: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/engine.rs:
crates/serve/src/index.rs:
crates/serve/src/json.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
crates/serve/src/store.rs:
