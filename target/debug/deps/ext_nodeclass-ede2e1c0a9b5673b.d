/root/repo/target/debug/deps/ext_nodeclass-ede2e1c0a9b5673b.d: crates/bench/src/bin/ext_nodeclass.rs Cargo.toml

/root/repo/target/debug/deps/libext_nodeclass-ede2e1c0a9b5673b.rmeta: crates/bench/src/bin/ext_nodeclass.rs Cargo.toml

crates/bench/src/bin/ext_nodeclass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
