/root/repo/target/debug/deps/op_properties-a4d0f001ec8894a1.d: crates/nn/tests/op_properties.rs Cargo.toml

/root/repo/target/debug/deps/libop_properties-a4d0f001ec8894a1.rmeta: crates/nn/tests/op_properties.rs Cargo.toml

crates/nn/tests/op_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
