/root/repo/target/debug/deps/aggregation-400676e5c782c081.d: crates/bench/benches/aggregation.rs Cargo.toml

/root/repo/target/debug/deps/libaggregation-400676e5c782c081.rmeta: crates/bench/benches/aggregation.rs Cargo.toml

crates/bench/benches/aggregation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
