/root/repo/target/debug/deps/ext_ablations-29e910e06e750f6c.d: crates/bench/src/bin/ext_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libext_ablations-29e910e06e750f6c.rmeta: crates/bench/src/bin/ext_ablations.rs Cargo.toml

crates/bench/src/bin/ext_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
