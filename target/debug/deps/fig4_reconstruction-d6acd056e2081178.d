/root/repo/target/debug/deps/fig4_reconstruction-d6acd056e2081178.d: crates/bench/src/bin/fig4_reconstruction.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_reconstruction-d6acd056e2081178.rmeta: crates/bench/src/bin/fig4_reconstruction.rs Cargo.toml

crates/bench/src/bin/fig4_reconstruction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
