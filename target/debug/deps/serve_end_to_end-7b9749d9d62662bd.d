/root/repo/target/debug/deps/serve_end_to_end-7b9749d9d62662bd.d: crates/cli/tests/serve_end_to_end.rs

/root/repo/target/debug/deps/serve_end_to_end-7b9749d9d62662bd: crates/cli/tests/serve_end_to_end.rs

crates/cli/tests/serve_end_to_end.rs:
