/root/repo/target/debug/deps/table3_6_linkpred-69b5cfadf57e5d28.d: crates/bench/src/bin/table3_6_linkpred.rs

/root/repo/target/debug/deps/table3_6_linkpred-69b5cfadf57e5d28: crates/bench/src/bin/table3_6_linkpred.rs

crates/bench/src/bin/table3_6_linkpred.rs:
