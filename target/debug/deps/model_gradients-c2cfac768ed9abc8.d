/root/repo/target/debug/deps/model_gradients-c2cfac768ed9abc8.d: tests/model_gradients.rs

/root/repo/target/debug/deps/model_gradients-c2cfac768ed9abc8: tests/model_gradients.rs

tests/model_gradients.rs:
