/root/repo/target/debug/deps/properties-350d087809f83105.d: crates/tgraph/tests/properties.rs

/root/repo/target/debug/deps/properties-350d087809f83105: crates/tgraph/tests/properties.rs

crates/tgraph/tests/properties.rs:
