/root/repo/target/debug/deps/serve-dbf257516028ef01.d: crates/bench/benches/serve.rs Cargo.toml

/root/repo/target/debug/deps/libserve-dbf257516028ef01.rmeta: crates/bench/benches/serve.rs Cargo.toml

crates/bench/benches/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
