/root/repo/target/debug/deps/ehna_bench-a9b31fb84648e82e.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libehna_bench-a9b31fb84648e82e.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libehna_bench-a9b31fb84648e82e.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
