/root/repo/target/debug/deps/proptest-1f7e68b677561742.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-1f7e68b677561742: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
