/root/repo/target/debug/deps/ehna-d0a668f75c189a13.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ehna-d0a668f75c189a13: crates/cli/src/main.rs

crates/cli/src/main.rs:
