/root/repo/target/debug/deps/ehna_nn-2fbff3d14dd4de76.d: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

/root/repo/target/debug/deps/libehna_nn-2fbff3d14dd4de76.rlib: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

/root/repo/target/debug/deps/libehna_nn-2fbff3d14dd4de76.rmeta: crates/nn/src/lib.rs crates/nn/src/gradcheck.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/ioutil.rs crates/nn/src/kernels.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/store.rs

crates/nn/src/lib.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/ioutil.rs:
crates/nn/src/kernels.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/store.rs:
