/root/repo/target/debug/deps/table7_ablation-63ebb513d758a0c2.d: crates/bench/src/bin/table7_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_ablation-63ebb513d758a0c2.rmeta: crates/bench/src/bin/table7_ablation.rs Cargo.toml

crates/bench/src/bin/table7_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
