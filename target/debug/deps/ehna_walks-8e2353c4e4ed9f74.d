/root/repo/target/debug/deps/ehna_walks-8e2353c4e4ed9f74.d: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs Cargo.toml

/root/repo/target/debug/deps/libehna_walks-8e2353c4e4ed9f74.rmeta: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs Cargo.toml

crates/walks/src/lib.rs:
crates/walks/src/alias.rs:
crates/walks/src/context.rs:
crates/walks/src/ctdne.rs:
crates/walks/src/decay.rs:
crates/walks/src/neighborhood.rs:
crates/walks/src/node2vec.rs:
crates/walks/src/stats.rs:
crates/walks/src/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
