/root/repo/target/debug/deps/ehna_eval-58a5c6c7288fdbdc.d: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/ehna_eval-58a5c6c7288fdbdc: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/linkpred.rs:
crates/eval/src/logreg.rs:
crates/eval/src/metrics.rs:
crates/eval/src/nodeclass.rs:
crates/eval/src/operators.rs:
crates/eval/src/ranking.rs:
crates/eval/src/reconstruction.rs:
crates/eval/src/split.rs:
