/root/repo/target/debug/deps/serve_end_to_end-7804fe2f2206297f.d: crates/cli/tests/serve_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libserve_end_to_end-7804fe2f2206297f.rmeta: crates/cli/tests/serve_end_to_end.rs Cargo.toml

crates/cli/tests/serve_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
