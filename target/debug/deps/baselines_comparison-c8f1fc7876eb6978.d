/root/repo/target/debug/deps/baselines_comparison-c8f1fc7876eb6978.d: tests/baselines_comparison.rs

/root/repo/target/debug/deps/baselines_comparison-c8f1fc7876eb6978: tests/baselines_comparison.rs

tests/baselines_comparison.rs:
