/root/repo/target/debug/deps/table8_timing-e38c13327b311b18.d: crates/bench/src/bin/table8_timing.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_timing-e38c13327b311b18.rmeta: crates/bench/src/bin/table8_timing.rs Cargo.toml

crates/bench/src/bin/table8_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
