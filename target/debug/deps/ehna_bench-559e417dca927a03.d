/root/repo/target/debug/deps/ehna_bench-559e417dca927a03.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libehna_bench-559e417dca927a03.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
