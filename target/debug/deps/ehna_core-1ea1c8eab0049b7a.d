/root/repo/target/debug/deps/ehna_core-1ea1c8eab0049b7a.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libehna_core-1ea1c8eab0049b7a.rlib: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libehna_core-1ea1c8eab0049b7a.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/attention.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/model.rs:
crates/core/src/negative.rs:
crates/core/src/trainer.rs:
crates/core/src/variants.rs:
