/root/repo/target/debug/deps/model_gradients-1142b5f814724095.d: tests/model_gradients.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_gradients-1142b5f814724095.rmeta: tests/model_gradients.rs Cargo.toml

tests/model_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
