/root/repo/target/debug/deps/nn_ops-0de3f94f375e37e1.d: crates/bench/benches/nn_ops.rs Cargo.toml

/root/repo/target/debug/deps/libnn_ops-0de3f94f375e37e1.rmeta: crates/bench/benches/nn_ops.rs Cargo.toml

crates/bench/benches/nn_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
