/root/repo/target/debug/deps/graph-e67bc966569a9f69.d: crates/bench/benches/graph.rs Cargo.toml

/root/repo/target/debug/deps/libgraph-e67bc966569a9f69.rmeta: crates/bench/benches/graph.rs Cargo.toml

crates/bench/benches/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
