/root/repo/target/debug/deps/ehna_baselines-f52c865d42a137e3.d: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

/root/repo/target/debug/deps/ehna_baselines-f52c865d42a137e3: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctdne.rs:
crates/baselines/src/htne.rs:
crates/baselines/src/line.rs:
crates/baselines/src/node2vec.rs:
crates/baselines/src/skipgram.rs:
