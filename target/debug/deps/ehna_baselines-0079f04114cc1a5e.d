/root/repo/target/debug/deps/ehna_baselines-0079f04114cc1a5e.d: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

/root/repo/target/debug/deps/libehna_baselines-0079f04114cc1a5e.rlib: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

/root/repo/target/debug/deps/libehna_baselines-0079f04114cc1a5e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctdne.rs crates/baselines/src/htne.rs crates/baselines/src/line.rs crates/baselines/src/node2vec.rs crates/baselines/src/skipgram.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctdne.rs:
crates/baselines/src/htne.rs:
crates/baselines/src/line.rs:
crates/baselines/src/node2vec.rs:
crates/baselines/src/skipgram.rs:
