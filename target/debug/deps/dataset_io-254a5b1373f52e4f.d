/root/repo/target/debug/deps/dataset_io-254a5b1373f52e4f.d: tests/dataset_io.rs

/root/repo/target/debug/deps/dataset_io-254a5b1373f52e4f: tests/dataset_io.rs

tests/dataset_io.rs:
