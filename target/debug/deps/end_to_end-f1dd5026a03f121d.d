/root/repo/target/debug/deps/end_to_end-f1dd5026a03f121d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f1dd5026a03f121d: tests/end_to_end.rs

tests/end_to_end.rs:
