/root/repo/target/debug/deps/ehna-7fe71f85995aa528.d: src/lib.rs

/root/repo/target/debug/deps/ehna-7fe71f85995aa528: src/lib.rs

src/lib.rs:
