/root/repo/target/debug/deps/ehna_eval-f6895b12f6949322.d: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libehna_eval-f6895b12f6949322.rlib: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libehna_eval-f6895b12f6949322.rmeta: crates/eval/src/lib.rs crates/eval/src/linkpred.rs crates/eval/src/logreg.rs crates/eval/src/metrics.rs crates/eval/src/nodeclass.rs crates/eval/src/operators.rs crates/eval/src/ranking.rs crates/eval/src/reconstruction.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/linkpred.rs:
crates/eval/src/logreg.rs:
crates/eval/src/metrics.rs:
crates/eval/src/nodeclass.rs:
crates/eval/src/operators.rs:
crates/eval/src/ranking.rs:
crates/eval/src/reconstruction.rs:
crates/eval/src/split.rs:
