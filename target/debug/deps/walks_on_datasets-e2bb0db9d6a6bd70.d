/root/repo/target/debug/deps/walks_on_datasets-e2bb0db9d6a6bd70.d: tests/walks_on_datasets.rs

/root/repo/target/debug/deps/walks_on_datasets-e2bb0db9d6a6bd70: tests/walks_on_datasets.rs

tests/walks_on_datasets.rs:
