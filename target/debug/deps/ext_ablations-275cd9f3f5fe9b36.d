/root/repo/target/debug/deps/ext_ablations-275cd9f3f5fe9b36.d: crates/bench/src/bin/ext_ablations.rs

/root/repo/target/debug/deps/ext_ablations-275cd9f3f5fe9b36: crates/bench/src/bin/ext_ablations.rs

crates/bench/src/bin/ext_ablations.rs:
