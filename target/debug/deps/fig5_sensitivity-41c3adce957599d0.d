/root/repo/target/debug/deps/fig5_sensitivity-41c3adce957599d0.d: crates/bench/src/bin/fig5_sensitivity.rs

/root/repo/target/debug/deps/fig5_sensitivity-41c3adce957599d0: crates/bench/src/bin/fig5_sensitivity.rs

crates/bench/src/bin/fig5_sensitivity.rs:
