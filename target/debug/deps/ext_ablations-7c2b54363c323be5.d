/root/repo/target/debug/deps/ext_ablations-7c2b54363c323be5.d: crates/bench/src/bin/ext_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libext_ablations-7c2b54363c323be5.rmeta: crates/bench/src/bin/ext_ablations.rs Cargo.toml

crates/bench/src/bin/ext_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
