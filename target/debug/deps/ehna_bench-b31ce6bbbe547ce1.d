/root/repo/target/debug/deps/ehna_bench-b31ce6bbbe547ce1.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libehna_bench-b31ce6bbbe547ce1.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
