/root/repo/target/debug/deps/ehna_bench-1a3f7fdad52575f3.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/ehna_bench-1a3f7fdad52575f3: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
