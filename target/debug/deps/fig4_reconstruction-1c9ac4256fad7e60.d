/root/repo/target/debug/deps/fig4_reconstruction-1c9ac4256fad7e60.d: crates/bench/src/bin/fig4_reconstruction.rs

/root/repo/target/debug/deps/fig4_reconstruction-1c9ac4256fad7e60: crates/bench/src/bin/fig4_reconstruction.rs

crates/bench/src/bin/fig4_reconstruction.rs:
