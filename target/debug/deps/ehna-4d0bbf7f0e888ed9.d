/root/repo/target/debug/deps/ehna-4d0bbf7f0e888ed9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libehna-4d0bbf7f0e888ed9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
