/root/repo/target/debug/deps/fig5_sensitivity-cdde16af9614232e.d: crates/bench/src/bin/fig5_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sensitivity-cdde16af9614232e.rmeta: crates/bench/src/bin/fig5_sensitivity.rs Cargo.toml

crates/bench/src/bin/fig5_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
