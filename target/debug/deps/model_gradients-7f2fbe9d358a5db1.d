/root/repo/target/debug/deps/model_gradients-7f2fbe9d358a5db1.d: tests/model_gradients.rs

/root/repo/target/debug/deps/model_gradients-7f2fbe9d358a5db1: tests/model_gradients.rs

tests/model_gradients.rs:
