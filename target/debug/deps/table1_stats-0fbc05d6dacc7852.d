/root/repo/target/debug/deps/table1_stats-0fbc05d6dacc7852.d: crates/bench/src/bin/table1_stats.rs

/root/repo/target/debug/deps/table1_stats-0fbc05d6dacc7852: crates/bench/src/bin/table1_stats.rs

crates/bench/src/bin/table1_stats.rs:
