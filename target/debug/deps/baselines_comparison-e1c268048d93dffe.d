/root/repo/target/debug/deps/baselines_comparison-e1c268048d93dffe.d: tests/baselines_comparison.rs

/root/repo/target/debug/deps/baselines_comparison-e1c268048d93dffe: tests/baselines_comparison.rs

tests/baselines_comparison.rs:
