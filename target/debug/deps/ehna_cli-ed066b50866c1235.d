/root/repo/target/debug/deps/ehna_cli-ed066b50866c1235.d: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs

/root/repo/target/debug/deps/ehna_cli-ed066b50866c1235: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs

crates/cli/src/lib.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/export.rs:
crates/cli/src/commands/generate.rs:
crates/cli/src/commands/linkpred.rs:
crates/cli/src/commands/nodeclass.rs:
crates/cli/src/commands/reconstruct.rs:
crates/cli/src/commands/stats.rs:
crates/cli/src/commands/train.rs:
crates/cli/src/flags.rs:
crates/cli/src/method.rs:
