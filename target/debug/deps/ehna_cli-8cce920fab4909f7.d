/root/repo/target/debug/deps/ehna_cli-8cce920fab4909f7.d: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/query.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/serve.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs Cargo.toml

/root/repo/target/debug/deps/libehna_cli-8cce920fab4909f7.rmeta: crates/cli/src/lib.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/export.rs crates/cli/src/commands/generate.rs crates/cli/src/commands/linkpred.rs crates/cli/src/commands/nodeclass.rs crates/cli/src/commands/query.rs crates/cli/src/commands/reconstruct.rs crates/cli/src/commands/serve.rs crates/cli/src/commands/stats.rs crates/cli/src/commands/train.rs crates/cli/src/flags.rs crates/cli/src/method.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/export.rs:
crates/cli/src/commands/generate.rs:
crates/cli/src/commands/linkpred.rs:
crates/cli/src/commands/nodeclass.rs:
crates/cli/src/commands/query.rs:
crates/cli/src/commands/reconstruct.rs:
crates/cli/src/commands/serve.rs:
crates/cli/src/commands/stats.rs:
crates/cli/src/commands/train.rs:
crates/cli/src/flags.rs:
crates/cli/src/method.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
