/root/repo/target/debug/deps/ehna-4560777e1777fd3c.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ehna-4560777e1777fd3c: crates/cli/src/main.rs

crates/cli/src/main.rs:
