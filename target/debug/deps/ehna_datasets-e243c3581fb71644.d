/root/repo/target/debug/deps/ehna_datasets-e243c3581fb71644.d: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

/root/repo/target/debug/deps/libehna_datasets-e243c3581fb71644.rlib: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

/root/repo/target/debug/deps/libehna_datasets-e243c3581fb71644.rmeta: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

crates/datasets/src/lib.rs:
crates/datasets/src/bipartite.rs:
crates/datasets/src/coauthor.rs:
crates/datasets/src/community.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/social.rs:
crates/datasets/src/util.rs:
