/root/repo/target/debug/deps/table8_timing-540c545c0f0c81f2.d: crates/bench/src/bin/table8_timing.rs

/root/repo/target/debug/deps/table8_timing-540c545c0f0c81f2: crates/bench/src/bin/table8_timing.rs

crates/bench/src/bin/table8_timing.rs:
