/root/repo/target/debug/deps/ehna_bench-d3f0344bfbc433e3.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libehna_bench-d3f0344bfbc433e3.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libehna_bench-d3f0344bfbc433e3.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/methods.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/methods.rs:
crates/bench/src/table.rs:
