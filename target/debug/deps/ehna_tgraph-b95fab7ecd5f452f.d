/root/repo/target/debug/deps/ehna_tgraph-b95fab7ecd5f452f.d: crates/tgraph/src/lib.rs crates/tgraph/src/algo.rs crates/tgraph/src/builder.rs crates/tgraph/src/edge.rs crates/tgraph/src/embedding.rs crates/tgraph/src/error.rs crates/tgraph/src/graph.rs crates/tgraph/src/ids.rs crates/tgraph/src/io.rs crates/tgraph/src/names.rs crates/tgraph/src/prep.rs crates/tgraph/src/stats.rs crates/tgraph/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libehna_tgraph-b95fab7ecd5f452f.rmeta: crates/tgraph/src/lib.rs crates/tgraph/src/algo.rs crates/tgraph/src/builder.rs crates/tgraph/src/edge.rs crates/tgraph/src/embedding.rs crates/tgraph/src/error.rs crates/tgraph/src/graph.rs crates/tgraph/src/ids.rs crates/tgraph/src/io.rs crates/tgraph/src/names.rs crates/tgraph/src/prep.rs crates/tgraph/src/stats.rs crates/tgraph/src/view.rs Cargo.toml

crates/tgraph/src/lib.rs:
crates/tgraph/src/algo.rs:
crates/tgraph/src/builder.rs:
crates/tgraph/src/edge.rs:
crates/tgraph/src/embedding.rs:
crates/tgraph/src/error.rs:
crates/tgraph/src/graph.rs:
crates/tgraph/src/ids.rs:
crates/tgraph/src/io.rs:
crates/tgraph/src/names.rs:
crates/tgraph/src/prep.rs:
crates/tgraph/src/stats.rs:
crates/tgraph/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
