/root/repo/target/debug/deps/training-5a0c7ab68a3bbc48.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-5a0c7ab68a3bbc48.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
