/root/repo/target/debug/deps/dataset_io-348ba0022ef4771e.d: tests/dataset_io.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_io-348ba0022ef4771e.rmeta: tests/dataset_io.rs Cargo.toml

tests/dataset_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
