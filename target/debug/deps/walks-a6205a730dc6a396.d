/root/repo/target/debug/deps/walks-a6205a730dc6a396.d: crates/bench/benches/walks.rs Cargo.toml

/root/repo/target/debug/deps/libwalks-a6205a730dc6a396.rmeta: crates/bench/benches/walks.rs Cargo.toml

crates/bench/benches/walks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
