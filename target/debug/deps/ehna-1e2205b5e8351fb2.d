/root/repo/target/debug/deps/ehna-1e2205b5e8351fb2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libehna-1e2205b5e8351fb2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
