/root/repo/target/debug/deps/ehna_serve-b1acc0eab6d1fe6d.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libehna_serve-b1acc0eab6d1fe6d.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/engine.rs:
crates/serve/src/index.rs:
crates/serve/src/json.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
crates/serve/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
