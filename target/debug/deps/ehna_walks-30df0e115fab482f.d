/root/repo/target/debug/deps/ehna_walks-30df0e115fab482f.d: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

/root/repo/target/debug/deps/libehna_walks-30df0e115fab482f.rlib: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

/root/repo/target/debug/deps/libehna_walks-30df0e115fab482f.rmeta: crates/walks/src/lib.rs crates/walks/src/alias.rs crates/walks/src/context.rs crates/walks/src/ctdne.rs crates/walks/src/decay.rs crates/walks/src/neighborhood.rs crates/walks/src/node2vec.rs crates/walks/src/stats.rs crates/walks/src/temporal.rs

crates/walks/src/lib.rs:
crates/walks/src/alias.rs:
crates/walks/src/context.rs:
crates/walks/src/ctdne.rs:
crates/walks/src/decay.rs:
crates/walks/src/neighborhood.rs:
crates/walks/src/node2vec.rs:
crates/walks/src/stats.rs:
crates/walks/src/temporal.rs:
