/root/repo/target/debug/deps/table1_stats-ea16d73ef2431c33.d: crates/bench/src/bin/table1_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_stats-ea16d73ef2431c33.rmeta: crates/bench/src/bin/table1_stats.rs Cargo.toml

crates/bench/src/bin/table1_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
