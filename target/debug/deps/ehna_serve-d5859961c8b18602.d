/root/repo/target/debug/deps/ehna_serve-d5859961c8b18602.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/libehna_serve-d5859961c8b18602.rlib: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

/root/repo/target/debug/deps/libehna_serve-d5859961c8b18602.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/engine.rs crates/serve/src/index.rs crates/serve/src/json.rs crates/serve/src/server.rs crates/serve/src/stats.rs crates/serve/src/store.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/engine.rs:
crates/serve/src/index.rs:
crates/serve/src/json.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
crates/serve/src/store.rs:
