/root/repo/target/debug/deps/ehna_datasets-22556d0dc1f96001.d: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

/root/repo/target/debug/deps/ehna_datasets-22556d0dc1f96001: crates/datasets/src/lib.rs crates/datasets/src/bipartite.rs crates/datasets/src/coauthor.rs crates/datasets/src/community.rs crates/datasets/src/registry.rs crates/datasets/src/social.rs crates/datasets/src/util.rs

crates/datasets/src/lib.rs:
crates/datasets/src/bipartite.rs:
crates/datasets/src/coauthor.rs:
crates/datasets/src/community.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/social.rs:
crates/datasets/src/util.rs:
