/root/repo/target/debug/deps/ext_nodeclass-284de729f2d971d6.d: crates/bench/src/bin/ext_nodeclass.rs Cargo.toml

/root/repo/target/debug/deps/libext_nodeclass-284de729f2d971d6.rmeta: crates/bench/src/bin/ext_nodeclass.rs Cargo.toml

crates/bench/src/bin/ext_nodeclass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
