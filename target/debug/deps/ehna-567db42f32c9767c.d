/root/repo/target/debug/deps/ehna-567db42f32c9767c.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libehna-567db42f32c9767c.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
