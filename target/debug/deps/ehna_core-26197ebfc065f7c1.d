/root/repo/target/debug/deps/ehna_core-26197ebfc065f7c1.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs Cargo.toml

/root/repo/target/debug/deps/libehna_core-26197ebfc065f7c1.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/attention.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/model.rs crates/core/src/negative.rs crates/core/src/trainer.rs crates/core/src/variants.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/attention.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/model.rs:
crates/core/src/negative.rs:
crates/core/src/trainer.rs:
crates/core/src/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
