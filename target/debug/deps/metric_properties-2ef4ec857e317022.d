/root/repo/target/debug/deps/metric_properties-2ef4ec857e317022.d: crates/eval/tests/metric_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmetric_properties-2ef4ec857e317022.rmeta: crates/eval/tests/metric_properties.rs Cargo.toml

crates/eval/tests/metric_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
