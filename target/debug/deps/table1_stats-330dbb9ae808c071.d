/root/repo/target/debug/deps/table1_stats-330dbb9ae808c071.d: crates/bench/src/bin/table1_stats.rs

/root/repo/target/debug/deps/table1_stats-330dbb9ae808c071: crates/bench/src/bin/table1_stats.rs

crates/bench/src/bin/table1_stats.rs:
