//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Provides [`channel`]: multi-producer **multi-consumer** channels with
//! the `crossbeam-channel` interface (`unbounded`, `bounded`, cloneable
//! [`channel::Receiver`]s, disconnect-aware `recv`). Implementation is a
//! `Mutex<VecDeque>` + two `Condvar`s rather than crossbeam's lock-free
//! queues — correctness and API compatibility over raw throughput, which
//! is fine for the request fan-out this workspace uses it for (the work
//! units are whole query batches, not individual pointers).

pub mod channel {
    //! MPMC channels (`crossbeam-channel` API subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]. Carries the unsent
    /// message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`]: channel empty and no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is empty and every sender has been dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded MPMC channel: `send` blocks while `cap` messages queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`, blocking on a full bounded channel.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match shared.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue `msg` without blocking: a full bounded channel is an
        /// immediate [`TrySendError::Full`] instead of a wait.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = shared.cap {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message or total disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &self.shared;
            let deadline = Instant::now() + timeout;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let handles: Vec<_> =
                [rx, rx2].into_iter().map(|r| thread::spawn(move || r.iter().count())).collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                "sent"
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(t.join().unwrap(), "sent");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<i32>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }
    }
}
