//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Implements the benchmark-definition surface this workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / `sample_size` / `finish`, [`Bencher::iter`] / `iter_batched`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a plain wall-clock loop instead of criterion's
//! statistical machinery. Each benchmark warms up briefly, then runs
//! `sample_size` timed samples (auto-scaled iteration counts) and reports
//! min / mean / max per-iteration time to stdout. Good enough to compare
//! implementations on the same machine; not a substitute for criterion's
//! outlier analysis.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

/// Top-level harness handle; one per binary, passed to each target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: None, measurement_time: None }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, MEASURE_BUDGET, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = Some(budget);
        self
    }

    /// Run one benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let budget = self.measurement_time.unwrap_or(MEASURE_BUDGET);
        run_benchmark(&label, self.sample_size.unwrap_or(20), budget, f);
        self
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`]; only the API shape is
/// honored — batches are always one routine call per setup call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Routine input is cheap to hold many of.
    SmallInput,
    /// Routine input is expensive; batch sparsely.
    LargeInput,
    /// Re-run setup before every routine call.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    // Warmup: discover a per-sample iteration count that fits the budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= WARMUP_BUDGET / 4 || iters >= 1 << 20 {
            let per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
            let budget_per_sample = budget / samples.max(1) as u32;
            if !per_iter.is_zero() {
                iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
            }
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let min = per_iter_nanos.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_nanos.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    println!(
        "{label:<40} time: [{} {} {}]  ({iters} iters x {} samples)",
        fmt_nanos(min),
        fmt_nanos(mean),
        fmt_nanos(max),
        per_iter_nanos.len(),
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundle benchmark targets into a group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bencher_runs_routine_and_times_it() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| CALLS.fetch_add(1, Ordering::Relaxed));
        assert_eq!(CALLS.load(Ordering::Relaxed), 10);

        let mut b = Bencher { iters: 3, elapsed: Duration::ZERO };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.iters, 3);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_nanos(12.0).ends_with("ns"));
        assert!(fmt_nanos(12_500.0).ends_with("us"));
        assert!(fmt_nanos(12_500_000.0).ends_with("ms"));
        assert!(fmt_nanos(2.5e9).ends_with(" s"));
    }
}
