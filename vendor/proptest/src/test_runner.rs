//! Runner plumbing shared by the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// How a single generated case ended, when not a plain pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); try another input.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic generator backing one property test: seeded from the
/// test's name so distinct tests see distinct—but reproducible—streams.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_depends_on_name_only() {
        assert_eq!(deterministic_rng("a").next_u64(), deterministic_rng("a").next_u64());
        assert_ne!(deterministic_rng("a").next_u64(), deterministic_rng("b").next_u64());
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }
}
