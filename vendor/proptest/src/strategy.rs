//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// How many times rejection-based combinators retry before giving up on
/// the attempt and letting the runner regenerate from scratch.
const LOCAL_RETRIES: usize = 32;

/// A recipe for random values of `Self::Value`.
///
/// `generate` returns `None` when the underlying source rejected the draw
/// (e.g. a `prop_filter_map` predicate failed repeatedly); the test runner
/// counts that as a discard, not a failure.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value, or `None` on rejection.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`, retrying locally a bounded
    /// number of times. `whence` labels the filter in give-up panics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, whence, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(out) = self.inner.generate(rng).and_then(&self.f) {
                return Some(out);
            }
        }
        let _ = self.whence; // reported by the runner as a discard
        None
    }
}

/// Always the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// See [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.clone());
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = deterministic_rng("ranges");
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng).unwrap();
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_filter_map_compose() {
        let mut rng = deterministic_rng("combos");
        let strat = (0u32..100).prop_map(|v| v * 2).prop_filter_map("multiple of 4", |v| {
            if v % 4 == 0 {
                Some(v)
            } else {
                None
            }
        });
        for _ in 0..100 {
            let v = strat.generate(&mut rng).unwrap();
            assert_eq!(v % 4, 0);
        }
    }

    #[test]
    fn impossible_filter_rejects() {
        let mut rng = deterministic_rng("reject");
        let strat = (0u32..10).prop_filter_map("never", |_| None::<u32>);
        assert!(strat.generate(&mut rng).is_none());
    }

    #[test]
    fn vec_and_tuple_shapes() {
        let mut rng = deterministic_rng("shapes");
        let strat = crate::collection::vec((0u32..5, crate::bool::ANY), 2..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng).unwrap();
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&(n, _)| n < 5));
        }
        assert_eq!(Just(41).generate(&mut rng), Some(41));
    }
}
