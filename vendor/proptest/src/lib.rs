//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   plus [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`];
//! * [`Strategy`] with `prop_map` / `prop_filter_map`, range strategies
//!   over primitive numbers, tuple strategies, [`collection::vec`], and
//!   [`bool::ANY`].
//!
//! Differences from real proptest: failing cases are **not shrunk** (the
//! failing input is reported as generated), and there is no persistence
//! file — every run replays the same deterministic sequence, seeded per
//! test from the test's name, so failures are reproducible by rerunning.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Option<bool> {
            use rand::Rng;
            Some(rng.gen::<bool>())
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
            let mut accepted: u32 = 0;
            let mut discarded: u32 = 0;
            while accepted < config.cases {
                if discarded > 16 * config.cases + 100 {
                    panic!(
                        "proptest '{}' gave up: {} cases accepted, {} discarded",
                        stringify!($name),
                        accepted,
                        discarded
                    );
                }
                $(
                    let $pat = match $crate::strategy::Strategy::generate(&$strat, &mut rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            discarded += 1;
                            continue;
                        }
                    };
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => discarded += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest '{}' failed after {} passing cases: {}",
                        stringify!($name),
                        accepted,
                        msg
                    ),
                }
            }
        }
    )*};
}
