//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! * [`Rng`] with `gen`, `gen_range` (half-open and inclusive ranges over
//!   the primitive ints and floats), and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded via splitmix64.
//!
//! Statistical caveats versus the real crate: integer `gen_range` uses a
//! simple modulo reduction (the bias is ~`span / 2^64`, irrelevant for the
//! simulation and test workloads here), and `StdRng` is *not* the ChaCha12
//! generator, so seeded streams differ from upstream `rand`. Everything in
//! this repo that depends on determinism seeds its own `StdRng`, so only
//! internal reproducibility matters, and that is preserved.

use std::ops::{Range, RangeInclusive};

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        // The inclusive/exclusive distinction is below float resolution.
        let _ = inclusive;
        assert!(lo < hi, "cannot sample from empty float range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let _ = inclusive;
        assert!(lo < hi, "cannot sample from empty float range");
        (lo as f64 + unit_f64(rng.next_u64()) * (hi - lo) as f64) as f32
    }
}

/// Map a raw `u64` to `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A source of randomness: one required method, the rest derived.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's deterministic PRNG: xoshiro256++ (not upstream's
    /// ChaCha12 — streams differ from real `rand`, determinism does not).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint serialization.
        /// Not part of the upstream `rand` API; the workspace's
        /// deterministic-resume machinery needs to persist and restore
        /// the exact generator position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact position captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is absorbing for
        /// xoshiro256++ (every output would be a fixed point); it cannot
        /// have been produced by [`StdRng::state`] on a seeded generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0u64; 4], "all-zero xoshiro256++ state is degenerate");
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some buckets never hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
