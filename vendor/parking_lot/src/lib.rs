//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! interface: `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is recovered rather
//! than propagated, matching parking_lot's behavior of not poisoning at
//! all. No fairness/timeout extras — this workspace only needs plain
//! mutual exclusion for the serving engine's shared state.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // would panic with raw std::sync::Mutex::lock().unwrap()
        assert_eq!(*m.lock(), 1);
    }
}
