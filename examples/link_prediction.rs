//! Future link prediction on a synthetic social network (the §V-E task):
//! hold out the 20 % most recent friendships, train EHNA and a baseline
//! on the history, and compare their ability to predict the held-out
//! edges with a logistic-regression classifier.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use ehna::baselines::{EmbeddingMethod, Node2Vec, SkipGramConfig};
use ehna::core::{EhnaConfig, Trainer};
use ehna::datasets::{generate, Dataset, Scale};
use ehna::eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};
use ehna::walks::Node2VecConfig;

fn main() {
    let graph = generate(Dataset::DiggLike, Scale::Tiny, 42);
    println!("digg-like: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let task = LinkPredictionTask::prepare(&graph, LinkPredictionConfig::default());
    println!(
        "holding out {} future links (cutoff t={})",
        task.num_positives(),
        task.split().cutoff
    );

    // EHNA on the pre-cutoff network.
    let config = EhnaConfig {
        dim: 32,
        num_walks: 5,
        walk_length: 5,
        batch_size: 128,
        epochs: 3,
        lr: 2e-3,
        ..Default::default()
    };
    let mut trainer = Trainer::new(task.train_graph(), config).expect("valid config");
    trainer.train();
    let ehna_emb = trainer.into_embeddings();

    // Node2Vec baseline (static: blind to edge recency).
    let n2v = Node2Vec {
        walks: Node2VecConfig { length: 20, walks_per_node: 5, ..Default::default() },
        sgns: SkipGramConfig { dim: 32, epochs: 2, ..Default::default() },
        threads: 1,
    };
    let n2v_emb = n2v.embed(task.train_graph(), 42);

    println!("\n{:<12} {:>8} {:>8} {:>8} {:>8}", "method", "AUC", "F1", "Prec", "Rec");
    for (name, emb) in [("EHNA", &ehna_emb), ("Node2Vec", &n2v_emb)] {
        let m = task.evaluate(emb, EdgeOperator::WeightedL2);
        println!(
            "{:<12} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            name, m.auc, m.f1, m.precision, m.recall
        );
    }
    println!("\n(Weighted-L2 operator; see table3_6_linkpred for the full sweep.)");
}
