//! Network reconstruction on a bipartite purchase network (the §V-D
//! task): train embeddings on the full graph, then check how precisely
//! dot-product ranking recovers the true edges.
//!
//! ```text
//! cargo run --release --example network_reconstruction
//! ```

use ehna::baselines::{EmbeddingMethod, Line};
use ehna::core::{EhnaConfig, Trainer};
use ehna::datasets::{generate, Dataset, Scale};
use ehna::eval::reconstruction::precision_at;
use ehna::eval::ReconstructionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = generate(Dataset::TmallLike, Scale::Tiny, 42);
    println!("tmall-like: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // EHNA with the bidirectional objective (Eq. 7) — the paper's remedy
    // for bipartite buyer-item networks.
    let config = EhnaConfig {
        dim: 32,
        num_walks: 5,
        walk_length: 5,
        batch_size: 128,
        epochs: 3,
        lr: 2e-3,
        bidirectional: true,
        ..Default::default()
    };
    let mut trainer = Trainer::new(&graph, config).expect("valid config");
    trainer.train();
    let ehna_emb = trainer.into_embeddings();

    let line_emb = Line { dim: 32, samples_per_edge: 20, ..Default::default() }.embed(&graph, 42);

    let ps = [100usize, 300, 1_000, 3_000];
    let cfg = ReconstructionConfig { sample_nodes: 500, repetitions: 5 };
    println!("\n{:<10} {:>10} {:>10}", "P", "EHNA", "LINE");
    let mut rng = StdRng::seed_from_u64(7);
    let ehna_p = precision_at(&graph, &ehna_emb, &ps, &cfg, &mut rng);
    let mut rng = StdRng::seed_from_u64(7);
    let line_p = precision_at(&graph, &line_emb, &ps, &cfg, &mut rng);
    for (i, &p) in ps.iter().enumerate() {
        println!("{:<10} {:>10.4} {:>10.4}", p, ehna_p[i], line_p[i]);
    }
}
