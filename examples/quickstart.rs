//! Quickstart: build a temporal graph, train EHNA, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ehna::core::{EhnaConfig, Trainer};
use ehna::tgraph::{GraphBuilder, NodeId};

fn main() {
    // The paper's Figure 1 ego co-author network: node 1 collaborates
    // with 2 and 3 early (2011-2012), then with 4, 6 and 7 (2013-2018);
    // node 5 is never a direct co-author but enables later edges.
    let mut builder = GraphBuilder::new();
    for &(a, b, year) in &[
        (1u32, 2u32, 2011i64),
        (1, 3, 2012),
        (2, 3, 2011),
        (1, 4, 2013),
        (4, 5, 2014),
        (5, 6, 2015),
        (1, 6, 2016),
        (5, 8, 2016),
        (8, 7, 2017),
        (6, 7, 2017),
        (1, 7, 2018),
    ] {
        builder.add_edge(a, b, year, 1.0).expect("valid edge");
    }
    let graph = builder.build().expect("non-empty graph");
    println!("graph: {} nodes, {} temporal edges", graph.num_nodes(), graph.num_edges());

    // Train EHNA. A tiny config keeps this instant; real runs use
    // EhnaConfig::default() (d=64, k=10, l=10).
    let config = EhnaConfig {
        dim: 16,
        num_walks: 5,
        walk_length: 4,
        batch_size: 8,
        epochs: 30,
        lr: 5e-3,
        ..EhnaConfig::tiny()
    };
    let mut trainer = Trainer::new(&graph, config).expect("valid config");
    let report = trainer.train();
    println!(
        "trained {} epochs, loss {:.4} -> {:.4}",
        report.epoch_losses.len(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );

    let emb = trainer.into_embeddings();

    // With temporal information, node 1 should now sit closer to its
    // recent collaborators (6, 7) than to nodes it never met (0 is
    // isolated; 8 is two hops away historically).
    println!("\nsquared distances from node 1:");
    for v in [2u32, 3, 4, 5, 6, 7, 8] {
        println!("  to node {v}: {:.4}", emb.sq_dist(NodeId(1), NodeId(v)));
    }
}
