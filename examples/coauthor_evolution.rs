//! Watch how EHNA's temporal walks interpret an evolving co-authorship
//! network — the paper's Figure 2 narrative, executable.
//!
//! As the graph grows year by year, we sample historical neighborhoods
//! of node 1 and watch the *indirectly*-relevant node 5 appear in its
//! history even though they never co-author.
//!
//! ```text
//! cargo run --release --example coauthor_evolution
//! ```

use ehna::tgraph::{GraphBuilder, NodeId, Timestamp};
use ehna::walks::{NeighborhoodSampler, TemporalWalkConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Figure 1's ego network, fed in chronologically.
    let edges = [
        (1u32, 2u32, 2011i64),
        (1, 3, 2012),
        (2, 3, 2011),
        (1, 4, 2013),
        (4, 5, 2014),
        (5, 6, 2015),
        (1, 6, 2016),
        (5, 8, 2016),
        (8, 7, 2017),
        (6, 7, 2017),
        (1, 7, 2018),
    ];
    let mut builder = GraphBuilder::new();
    for &(a, b, t) in &edges {
        builder.add_edge(a, b, t, 1.0).expect("valid edge");
    }
    let graph = builder.build().expect("non-empty");

    let cfg = TemporalWalkConfig { length: 6, ..TemporalWalkConfig::for_graph(&graph) };
    let sampler = NeighborhoodSampler::new(&graph, cfg, 30);
    let mut rng = StdRng::seed_from_u64(1);

    println!("historical neighborhood of node 1 as the network evolves:");
    for year in [2013i64, 2015, 2017, 2019] {
        let hn = sampler.sample(NodeId(1), Timestamp(year), &mut rng);
        let mut support: Vec<u32> = hn.support().iter().map(|n| n.0).collect();
        support.sort_unstable();
        let has_5 = support.contains(&5);
        println!(
            "  before {year}: reachable history = {support:?}{}",
            if has_5 { "   <- node 5 found (never a direct co-author!)" } else { "" }
        );
    }

    println!(
        "\nThe temporal walk surfaces node 5 once the 4-5 (2014) and 5-6 (2015) \
         collaborations exist — exactly the paper's claim that node 5 'enables' \
         node 1's later edges to 6 and 7."
    );
}
