//! Time-sliced embeddings: embed the same network *as of* different
//! moments and watch node relationships evolve — the Figure 2 story told
//! with trained vectors instead of pictures.
//!
//! ```text
//! cargo run --release --example time_sliced_embeddings
//! ```

use ehna::core::{EhnaConfig, Trainer};
use ehna::datasets::{generate, Dataset, Scale};
use ehna::tgraph::Timestamp;

fn main() {
    // A dblp-like co-authorship network growing over ~60 simulated years.
    let graph = generate(Dataset::DblpLike, Scale::Tiny, 42);
    let (t0, t1) = (graph.min_time().raw(), graph.max_time().raw());
    println!(
        "dblp-like: {} nodes, {} edges, years [{t0}, {t1}]",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = EhnaConfig {
        dim: 32,
        num_walks: 5,
        walk_length: 5,
        batch_size: 64,
        epochs: 4,
        lr: 2e-3,
        ..Default::default()
    };
    let mut trainer = Trainer::new(&graph, config).expect("valid config");
    trainer.train();

    // Pick a well-connected author and their most recent collaborator.
    let hub = graph.nodes().max_by_key(|&v| graph.degree(v)).expect("non-empty graph");
    let recent = graph.latest_interaction(hub).expect("hub has edges").node;
    let first = graph.neighbors(hub).first().expect("hub has edges").node;

    println!(
        "\nhub author: node {hub} (degree {}); first co-author {first}, latest {recent}",
        graph.degree(hub)
    );
    println!("\n{:<8} {:>22} {:>22}", "year", "dist(hub, first)", "dist(hub, latest)");
    for year in [t0 + (t1 - t0) / 3, t0 + 2 * (t1 - t0) / 3, t1 + 1] {
        let emb = trainer.embeddings_at(Timestamp(year));
        println!(
            "{:<8} {:>22.4} {:>22.4}",
            year,
            emb.sq_dist(hub, first),
            emb.sq_dist(hub, recent)
        );
    }
    println!(
        "\nEarly slices see only the old collaborations; by the last slice the\n\
         recent collaborator's history dominates the hub's neighborhood."
    );
}
