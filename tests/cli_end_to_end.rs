//! End-to-end CLI flow: generate → stats → train → evaluate, all through
//! the library entry point (no subprocesses).

use ehna_cli::run;
use ehna_tgraph::NodeEmbeddings;

fn cli(args: &[&str]) -> Result<String, String> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&v, &mut out).map_err(|e| e.message)?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn generate_stats_train_evaluate_pipeline() {
    let dir = std::env::temp_dir();
    let net = dir.join("ehna_e2e_net.txt");
    let snap = dir.join("ehna_e2e_emb.bin");
    let net_s = net.to_str().unwrap();
    let snap_s = snap.to_str().unwrap();

    // 1. generate
    let out =
        cli(&["generate", "--dataset", "digg", "--scale", "tiny", "--seed", "5", "--out", net_s])
            .expect("generate");
    assert!(out.contains("digg-like"));

    // 2. stats
    let out = cli(&["stats", net_s]).expect("stats");
    assert!(out.contains("temporal edges"));

    // 3. train (cheap method for test speed)
    let out =
        cli(&["train", net_s, "--method", "line", "--dim", "16", "--epochs", "1", "--out", snap_s])
            .expect("train");
    assert!(out.contains("wrote"));
    let emb = NodeEmbeddings::load(std::fs::File::open(&snap).unwrap()).expect("snapshot");
    assert_eq!(emb.dim(), 16);

    // 4. link prediction evaluation
    let out = cli(&["linkpred", net_s, "--method", "line", "--dim", "16", "--epochs", "1"])
        .expect("linkpred");
    assert!(out.contains("Weighted-L2"));

    // 5. reconstruction evaluation
    let out = cli(&[
        "reconstruct",
        net_s,
        "--method",
        "line",
        "--dim",
        "16",
        "--epochs",
        "1",
        "--p",
        "50,200",
        "--sample-nodes",
        "120",
        "--repetitions",
        "2",
    ])
    .expect("reconstruct");
    assert!(out.contains("P=200"));

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn cli_errors_are_actionable() {
    // Unknown method names the valid set.
    let err =
        cli(&["train", "/tmp/nonexistent.txt", "--method", "gcn", "--out", "/tmp/x"]).unwrap_err();
    assert!(err.contains("node2vec"), "{err}");
    // Missing file is a runtime error mentioning io.
    let err = cli(&["stats", "/definitely/missing.txt"]).unwrap_err();
    assert!(err.contains("io error"), "{err}");
}
