//! Dataset generators round-tripped through the edge-list IO layer, and
//! embedding snapshots through files — the persistence story end to end.

use ehna::datasets::{generate, Dataset, Scale, ALL_DATASETS};
use ehna::tgraph::{read_edge_list, write_edge_list, GraphStats, NodeEmbeddings, NodeId};
use std::io::Cursor;

#[test]
fn every_dataset_roundtrips_through_edge_lists() {
    for d in ALL_DATASETS {
        let g = generate(d, Scale::Tiny, 2);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let g2 = read_edge_list(Cursor::new(&buf)).expect("read");
        assert_eq!(g.num_edges(), g2.num_edges(), "{d:?}");
        // Isolated trailing nodes may drop on reload (no edges reference
        // them); active-node stats must match exactly.
        let (s1, s2) = (GraphStats::compute(&g), GraphStats::compute(&g2));
        assert_eq!(s1.num_active_nodes, s2.num_active_nodes, "{d:?}");
        assert_eq!(s1.num_static_edges, s2.num_static_edges, "{d:?}");
        assert_eq!(s1.min_time, s2.min_time, "{d:?}");
        assert_eq!(s1.max_time, s2.max_time, "{d:?}");
        for e in g.edges().iter().step_by(53) {
            assert!(g2.has_edge(e.src, e.dst), "{d:?}: lost edge {e:?}");
        }
    }
}

#[test]
fn embedding_snapshot_file_roundtrip() {
    let dir = std::env::temp_dir().join("ehna_it_snapshot.bin");
    let mut e = NodeEmbeddings::zeros(10, 8);
    for v in 0..10u32 {
        for (i, x) in e.get_mut(NodeId(v)).iter_mut().enumerate() {
            *x = (v as f32) * 0.1 + (i as f32) * 0.01;
        }
    }
    {
        let f = std::fs::File::create(&dir).expect("create");
        e.save(f).expect("save");
    }
    let back = NodeEmbeddings::load(std::fs::File::open(&dir).expect("open")).expect("load");
    assert_eq!(e, back);
    let _ = std::fs::remove_file(dir);
}

#[test]
fn snapshot_view_consistent_with_split_training() {
    // The training graph of a temporal split must agree with a strict
    // snapshot view at the cutoff.
    use ehna::eval::temporal_split;
    use ehna::tgraph::{SnapshotView, Timestamp};
    let g = generate(Dataset::DblpLike, Scale::Tiny, 3);
    let split = temporal_split(&g, 0.2);
    let view = SnapshotView::strict(&g, Timestamp(split.cutoff));
    assert_eq!(view.num_edges(), split.train.num_edges());
    for v in g.nodes().step_by(17) {
        assert_eq!(view.degree(v), split.train.degree(v), "{v:?}");
    }
}
