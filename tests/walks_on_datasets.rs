//! Cross-crate invariants: the walk engines against the synthetic dataset
//! generators at realistic sizes.

use ehna::datasets::{generate, Dataset, Scale, ALL_DATASETS};
use ehna::tgraph::Timestamp;
use ehna::walks::{
    CtdneConfig, CtdneWalker, NeighborhoodSampler, TemporalWalkConfig, TemporalWalker,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn temporal_walks_respect_relevance_on_every_dataset() {
    for d in ALL_DATASETS {
        let g = generate(d, Scale::Tiny, 1);
        let walker = TemporalWalker::new(&g, TemporalWalkConfig::for_graph(&g));
        let mut rng = StdRng::seed_from_u64(2);
        let t_ref = g.max_time();
        let mut non_trivial = 0usize;
        for v in g.nodes().take(200) {
            let w = walker.walk(v, t_ref, &mut rng);
            assert!(w.times.windows(2).all(|p| p[0] >= p[1]), "{d:?}: time order broken");
            assert!(w.times[1..].iter().all(|&t| t < t_ref), "{d:?}: future interaction leaked");
            if w.len() > 2 {
                non_trivial += 1;
            }
        }
        // Realistic datasets must yield substantive histories.
        assert!(non_trivial > 50, "{d:?}: only {non_trivial} non-trivial walks");
    }
}

#[test]
fn neighborhood_sampling_scales_and_is_deterministic() {
    let g = generate(Dataset::DiggLike, Scale::Tiny, 1);
    let sampler = NeighborhoodSampler::new(&g, TemporalWalkConfig::for_graph(&g), 10);
    let targets: Vec<_> = g.edges().iter().rev().take(100).map(|e| (e.src, e.t)).collect();
    let a = sampler.sample_batch(&targets, 1, 3);
    let b = sampler.sample_batch(&targets, 8, 3);
    assert_eq!(a, b, "thread count changed walk results");
    assert_eq!(a.len(), 100);
    assert!(a.iter().filter(|hn| hn.has_history()).count() > 80);
}

#[test]
fn ctdne_walks_flow_forward_on_bursty_data() {
    // The tmall-like burst concentrates events; forward walks must still
    // respect non-decreasing time through the burst.
    let g = generate(Dataset::TmallLike, Scale::Tiny, 1);
    let walker = CtdneWalker::new(&g, CtdneConfig::default());
    let mut rng = StdRng::seed_from_u64(4);
    for i in (0..g.num_edges()).step_by(97) {
        let w = walker.walk_from_edge(i, &mut rng);
        let mut t = Timestamp::MIN;
        for pair in w.windows(2) {
            let hop = g
                .neighbors(pair[0])
                .iter()
                .filter(|n| n.node == pair[1] && n.t >= t)
                .map(|n| n.t)
                .min()
                .expect("phantom hop");
            t = hop;
        }
    }
}

#[test]
fn decay_kernel_biases_walks_toward_burst_era() {
    // On tmall-like data, recent (burst-era) interactions should dominate
    // first steps under the exponential kernel.
    let g = generate(Dataset::TmallLike, Scale::Tiny, 1);
    let span = g.max_time().delta(g.min_time());
    let cfg = TemporalWalkConfig::for_graph(&g);
    let walker = TemporalWalker::new(&g, cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let t_ref = g.max_time();
    let burst_start = g.max_time().raw() - (span * 0.10) as i64;
    let mut recent = 0usize;
    let mut total = 0usize;
    for v in g.nodes() {
        // Only probe nodes active across eras.
        let nbrs = g.neighbors(v);
        if nbrs.len() < 4 || nbrs.first().unwrap().t.raw() >= burst_start {
            continue;
        }
        let w = walker.walk(v, t_ref, &mut rng);
        if w.len() > 1 {
            total += 1;
            if w.times[1].raw() >= burst_start {
                recent += 1;
            }
        }
        if total >= 300 {
            break;
        }
    }
    assert!(total > 100, "not enough probes ({total})");
    let frac = recent as f64 / total as f64;
    assert!(frac > 0.5, "kernel not biasing to recent era: {frac:.2}");
}
