//! End-to-end integration: dataset generation → EHNA training → both
//! paper tasks, asserting the learned embeddings beat trivial baselines.

use ehna::core::{EhnaConfig, Trainer};
use ehna::datasets::{generate, Dataset, Scale};
use ehna::eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};
use ehna::tgraph::NodeEmbeddings;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_config(dim: usize) -> EhnaConfig {
    EhnaConfig {
        dim,
        num_walks: 4,
        walk_length: 4,
        batch_size: 128,
        epochs: 3,
        lr: 2e-3,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn ehna_learns_link_prediction_on_social_network() {
    let graph = generate(Dataset::DiggLike, Scale::Tiny, 3);
    let task =
        LinkPredictionTask::prepare(&graph, LinkPredictionConfig { seed: 5, ..Default::default() });
    let mut trainer = Trainer::new(task.train_graph(), quick_config(24)).expect("config");
    let report = trainer.train();
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let emb = trainer.into_embeddings();

    let m = task.evaluate(&emb, EdgeOperator::WeightedL2);
    // Materially better than chance on a real temporal task.
    assert!(m.auc > 0.60, "EHNA link-pred AUC only {:.3}", m.auc);

    // And better than untrained (raw init) embeddings.
    let untrained = {
        let t = Trainer::new(task.train_graph(), quick_config(24)).expect("config");
        t.model().raw_embeddings()
    };
    let m0 = task.evaluate(&untrained, EdgeOperator::WeightedL2);
    assert!(
        m.auc > m0.auc + 0.05,
        "training did not help: {:.3} vs untrained {:.3}",
        m.auc,
        m0.auc
    );
}

#[test]
fn ehna_separates_recent_edges_on_social_network() {
    // Regression test of the verified behavior (EXPERIMENTS.md finding 2):
    // the aggregated readouts separate *recent* edge endpoints from random
    // pairs, even though global dot-product reconstruction is weak at this
    // scale.
    use ehna::tgraph::NodeId;
    use rand::Rng;
    let graph = generate(Dataset::DiggLike, Scale::Tiny, 42);
    // The verified configuration (see EXPERIMENTS.md): short-budget runs
    // can pass through an inverted transient before separating. The
    // budget was re-calibrated from 12 to 16 epochs when the GEMM
    // kernels switched to fused multiply-add chains — same math, new
    // rounding, so this seed's trajectory shifted (ratio 0.82 at 12
    // epochs, 0.55 at 16).
    let cfg = EhnaConfig {
        dim: 32,
        num_walks: 4,
        walk_length: 4,
        batch_size: 64,
        epochs: 16,
        lr: 2e-3,
        seed: 42,
        ..Default::default()
    };
    let mut trainer = Trainer::new(&graph, cfg).expect("config");
    trainer.train();
    let d = 32usize;
    let recent: Vec<_> = graph.edges().iter().rev().take(48).cloned().collect();
    let mut targets: Vec<(NodeId, ehna::tgraph::Timestamp)> = Vec::new();
    targets.extend(recent.iter().map(|e| (e.src, e.t)));
    targets.extend(recent.iter().map(|e| (e.dst, e.t)));
    let mut rng = StdRng::seed_from_u64(9);
    for e in &recent {
        loop {
            let v = NodeId(rng.gen_range(0..graph.num_nodes() as u32));
            if v != e.src && v != e.dst && graph.degree(v) > 0 {
                targets.push((v, e.t));
                break;
            }
        }
    }
    let z = trainer.aggregate_targets(&targets, false);
    let b = recent.len();
    let row = |i: usize| &z[i * d..(i + 1) * d];
    let sq = |a: &[f32], c: &[f32]| -> f64 {
        a.iter().zip(c).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
    };
    let (mut dp, mut dn) = (0.0, 0.0);
    for i in 0..b {
        dp += sq(row(i), row(b + i));
        dn += sq(row(i), row(2 * b + i));
    }
    assert!(
        dp < 0.8 * dn,
        "recent-edge endpoints not closer than random pairs: d_pos {dp:.3} vs d_neg {dn:.3}"
    );
}

#[test]
fn bidirectional_objective_on_bipartite_network() {
    let graph = generate(Dataset::TmallLike, Scale::Tiny, 5);
    let cfg = EhnaConfig { bidirectional: true, ..quick_config(16) };
    let mut trainer = Trainer::new(&graph, cfg).expect("config");
    let report = trainer.train();
    // The Eq. 7 objective must optimize stably on bipartite data...
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let first = report.epoch_losses[0];
    let last = *report.epoch_losses.last().unwrap();
    assert!(last < first, "no learning: {first:.4} -> {last:.4}");
    // ...and inference must cover every node (users and items).
    let emb = trainer.into_embeddings();
    assert_eq!(emb.num_nodes(), graph.num_nodes());
    assert!(emb.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn final_embeddings_are_normalized_readouts() {
    let graph = generate(Dataset::YelpLike, Scale::Tiny, 6);
    let mut trainer = Trainer::new(&graph, quick_config(16)).expect("config");
    trainer.train_epoch();
    let emb = trainer.into_embeddings();
    for v in graph.nodes() {
        let norm: f32 = emb.get(v).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-2, "node {v:?} norm {norm}");
    }
}

#[test]
fn embeddings_snapshot_roundtrip_through_bytes() {
    let graph = generate(Dataset::DiggLike, Scale::Tiny, 7);
    let mut trainer = Trainer::new(&graph, quick_config(16)).expect("config");
    trainer.train_epoch();
    let emb = trainer.into_embeddings();
    let bytes = emb.to_bytes();
    let back = NodeEmbeddings::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(emb, back);
}
