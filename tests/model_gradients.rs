//! Gradient verification of the *composite* EHNA forward pass: the same
//! finite-difference machinery that validates individual ops in
//! `ehna-nn` is applied to a full margin-loss training objective built
//! from attention + LSTM + batch-norm + readout, catching any wiring
//! error between the layers.

use ehna::nn::gradcheck::check_grads;
use ehna::nn::layers::{Linear, StackedLstm};
use ehna::nn::ParamStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A miniature EHNA-shaped composite: attention-weighted walk embeddings
/// through a stacked LSTM, readout with concat + linear + normalize, and a
/// hinge loss between two aggregated targets and one negative.
#[test]
fn composite_ehna_objective_gradients_are_correct() {
    let d = 3usize;
    let l = 3usize; // walk length
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let emb_data: Vec<f32> = (0..6 * d).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let emb = store.add_param("emb", 6, d, emb_data);
    let lstm = StackedLstm::new(&mut store, "lstm", d, d, 2, &mut rng);
    let readout = Linear::new(&mut store, "w", 2 * d, d, &mut rng);
    // Constant attention time-coefficients (the non-learned part of Eq. 3).
    let coeffs = [0.0f32, -0.8, -1.5];

    check_grads(
        &mut store,
        |g, s| {
            // Walk of target node 0 through nodes [0, 1, 2].
            let e_target = g.gather(s, emb, &[0]);
            let steps: Vec<_> = (0..l).map(|t| g.gather(s, emb, &[t as u32])).collect();
            // Node-level attention logits: -(1/S) * ||e_x - e_v||^2.
            let mut dists = Vec::new();
            for &x_t in &steps {
                let diff = g.sub(x_t, e_target);
                dists.push(g.row_sq_norms(diff));
            }
            let mut dist_row = dists[0];
            for &c in &dists[1..] {
                dist_row = g.concat_cols(dist_row, c);
            }
            let coeff = g.constant(1, l, coeffs.to_vec());
            let logits = g.mul(dist_row, coeff);
            let alpha = g.softmax_rows(logits);
            let weighted: Vec<_> = steps
                .iter()
                .enumerate()
                .map(|(t, &x_t)| {
                    let a = g.slice_cols(alpha, t, t + 1);
                    g.mul_colb(x_t, a)
                })
                .collect();
            let h = lstm.forward_sequence(g, s, &weighted);
            let cat = g.concat_cols(h, e_target);
            let z_x = readout.forward(g, s, cat);
            let z_x = g.l2_normalize_rows(z_x, 1e-4);

            // A second target (node 3) aggregated trivially, plus a
            // negative (node 5).
            let e_y = g.gather(s, emb, &[3]);
            let cat_y = g.concat_cols(e_y, e_y);
            let z_y = readout.forward(g, s, cat_y);
            let z_y = g.l2_normalize_rows(z_y, 1e-4);
            let e_n = g.gather(s, emb, &[5]);
            let cat_n = g.concat_cols(e_n, e_n);
            let z_n = readout.forward(g, s, cat_n);
            let z_n = g.l2_normalize_rows(z_n, 1e-4);

            // Margin hinge loss (Eq. 6 with Q=1).
            let dp = g.sub(z_x, z_y);
            let dp = g.row_sq_norms(dp);
            let dn = g.sub(z_x, z_n);
            let dn = g.row_sq_norms(dn);
            let gap = g.sub(dp, dn);
            let gap = g.add_scalar(gap, 1.0);
            let hinge = g.relu(gap);
            g.sum_all(hinge)
        },
        1e-2,
        5e-2,
    )
    .expect("composite gradients must match finite differences");
}
