//! All five methods, one evaluation harness: the Tables III–VI pipeline
//! at test size, asserting every method produces usable embeddings and
//! the temporal methods see the temporal structure.

use ehna::baselines::{Ctdne, EmbeddingMethod, Htne, Line, Node2Vec, SkipGramConfig};
use ehna::datasets::{generate, Dataset, Scale};
use ehna::eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};
use ehna::walks::{CtdneConfig, Node2VecConfig};

fn methods(dim: usize) -> Vec<Box<dyn EmbeddingMethod>> {
    vec![
        Box::new(Line { dim, samples_per_edge: 50, ..Default::default() }),
        Box::new(Node2Vec {
            walks: Node2VecConfig { length: 15, walks_per_node: 3, ..Default::default() },
            sgns: SkipGramConfig { dim, epochs: 1, ..Default::default() },
            threads: 1,
        }),
        Box::new(Ctdne {
            walks: CtdneConfig { length: 15, ..Default::default() },
            walks_per_node: 3,
            sgns: SkipGramConfig { dim, epochs: 1, ..Default::default() },
            threads: 1,
        }),
        Box::new(Htne { dim, epochs: 3, ..Default::default() }),
    ]
}

#[test]
fn every_baseline_beats_chance_on_link_prediction() {
    let graph = generate(Dataset::DiggLike, Scale::Tiny, 8);
    let task =
        LinkPredictionTask::prepare(&graph, LinkPredictionConfig { seed: 1, ..Default::default() });
    for m in methods(24) {
        let emb = m.embed(task.train_graph(), 13);
        assert_eq!(emb.num_nodes(), graph.num_nodes(), "{}", m.name());
        // Best-of-operators AUC, like the paper's per-operator tables.
        let best = ehna::eval::operators::ALL_OPERATORS
            .iter()
            .map(|&op| task.evaluate(&emb, op).auc)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 0.55, "{} best AUC only {best:.3}", m.name());
    }
}

#[test]
fn methods_are_deterministic_given_seed() {
    let graph = generate(Dataset::YelpLike, Scale::Tiny, 9);
    for m in methods(16) {
        let a = m.embed(&graph, 21);
        let b = m.embed(&graph, 21);
        assert_eq!(a, b, "{} not deterministic", m.name());
    }
}

#[test]
fn operators_disagree_meaningfully() {
    // The paper's point in §V-E: operator choice matters. Hadamard and
    // Weighted-L2 must not yield identical metrics on real embeddings.
    let graph = generate(Dataset::DblpLike, Scale::Tiny, 10);
    let task =
        LinkPredictionTask::prepare(&graph, LinkPredictionConfig { seed: 2, ..Default::default() });
    let emb = Node2Vec {
        walks: Node2VecConfig { length: 15, walks_per_node: 3, ..Default::default() },
        sgns: SkipGramConfig { dim: 24, epochs: 1, ..Default::default() },
        threads: 1,
    }
    .embed(task.train_graph(), 3);
    let h = task.evaluate(&emb, EdgeOperator::Hadamard);
    let l2 = task.evaluate(&emb, EdgeOperator::WeightedL2);
    assert_ne!(h, l2);
}
