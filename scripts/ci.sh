#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full workspace test suite.
# Run from the repo root before pushing; everything must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "ci: all green"
