#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full workspace test suite.
# Run from the repo root before pushing; everything must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== fault-injection suite (wall-clock bounded)"
# The hostile-client tests double as a regression gate for server
# shutdown: if a hang is ever reintroduced, the hard timeout turns a
# wedged CI run into a fast failure. Build first so the timeout budget
# is spent on the tests, not the compiler.
cargo test -p ehna-serve --test fault_injection --no-run -q
timeout --kill-after=10 120 \
    cargo test -p ehna-serve --test fault_injection -q

echo "== checkpoint/resume gates (wall-clock bounded)"
# Resume determinism (train 2N uninterrupted == train N + checkpoint +
# reload + train N, bit-for-bit) and crash-recovery (kill at any point
# of the atomic-write protocol leaves a loadable checkpoint; corrupted
# bytes are always rejected). Hard timeout so a deadlocked resume or a
# proptest blow-up fails fast instead of wedging CI.
cargo test -p ehna-core --test resume_determinism --no-run -q
cargo test -p ehna-core --test checkpoint_robustness --no-run -q
timeout --kill-after=10 180 \
    cargo test -p ehna-core --test resume_determinism -q
timeout --kill-after=10 180 \
    cargo test -p ehna-core --test checkpoint_robustness -q

echo "== streaming gates (wall-clock bounded)"
# WAL robustness (proptest round-trip, every-byte truncation recovery,
# torn-tail tolerance, mid-file corruption fail-stop), incremental-vs-
# full-rebuild equivalence (frozen model < 1e-4; fine-tuned drift under
# the documented bound), and the CLI end-to-end path (train a prefix,
# serve it, ingest + stream the suffix, hot-swap per batch under client
# load). Hard timeouts so a wedged tail-poll or refresh loop fails fast.
cargo test -p ehna-stream --test wal_robustness --no-run -q
cargo test -p ehna-stream --test refresh_equivalence --no-run -q
cargo test -p ehna-cli --test streaming --no-run -q
timeout --kill-after=10 120 \
    cargo test -p ehna-stream --test wal_robustness -q
timeout --kill-after=10 180 \
    cargo test -p ehna-stream --test refresh_equivalence -q
timeout --kill-after=10 120 \
    cargo test -p ehna-cli --test streaming -q

echo "== router gates (wall-clock bounded)"
# The cluster tier's load-bearing guarantees: EHNP v2 frame codec
# robustness (proptest round-trip, every-byte truncation, single-byte
# corruption, oversized lengths capped before allocation), the
# equivalence gate (a router over N ∈ {1,2,4} shards answers knn AND
# batch byte-identically to a standalone server — ids, ordering, tie
# breaks, error strings, `cached` flags with the answer cache on and
# off, down to empty and single-node tables; shard-local IVF holds
# recall@10 ≥ 0.95 against the brute-force oracle), and fault injection
# (replica killed mid-load under 16 clients, tar-pit replica
# circuit-broken without delaying a restarted peer's probe recovery,
# rolling reload under load with cache invalidation — zero malformed
# client responses throughout). Hard timeouts so a wedged scatter or
# probe loop fails fast instead of hanging CI.
cargo test -p ehna-cluster --test proto_robustness --no-run -q
cargo test -p ehna-cluster --test router_equivalence --no-run -q
cargo test -p ehna-cluster --test cluster_faults --no-run -q
timeout --kill-after=10 120 \
    cargo test -p ehna-cluster --test proto_robustness -q
timeout --kill-after=10 180 \
    cargo test -p ehna-cluster --test router_equivalence -q
timeout --kill-after=10 180 \
    cargo test -p ehna-cluster --test cluster_faults -q

echo "== quant gates (wall-clock bounded)"
# The EHNQ artifact family's load-bearing guarantees: format robustness
# (proptest round-trip per format within documented error bounds,
# every-byte truncation and single-byte corruption rejected on heap
# open, mmap open defers only the code-section audit, 64-byte section
# alignment, mmap-vs-heap scorers bit-identical), serving quality
# (recall@10 >= 0.95 for every quantized format against the f32 oracle,
# int8/PQ >= 4x code-byte compression, tie-heavy brute-vs-full-probe-IVF
# bit identity under the pinned f64 distance contract, heap/mmap answer
# identity under concurrent reload churn, canonical node-key
# resolution), and the quantize/serve/shard CLI path end to end. The
# router equivalence gate above already covers quantized shards being
# byte-identical to a quantized standalone server. Hard timeouts so a
# wedged churn thread fails fast.
cargo test -p ehna-tgraph --test quant_robustness --no-run -q
cargo test -p ehna-serve --test quant_serving --no-run -q
cargo test -p ehna-cli quantize --no-run -q
timeout --kill-after=10 180 \
    cargo test -p ehna-tgraph --test quant_robustness -q
timeout --kill-after=10 180 \
    cargo test -p ehna-serve --test quant_serving -q
timeout --kill-after=10 120 \
    cargo test -p ehna-cli quantize -q

echo "== kernel gates (wall-clock bounded)"
# The fused-kernel layer's contracts: blocked GEMMs match a naive oracle
# on randomized shapes with NaN/Inf propagation (the bug class that
# motivated the rewrite — zero-skip shortcuts silently masking NaN), and
# training is bit-identical at 1 vs 4 kernel threads, end-to-end through
# sampling, backprop, and optimizer updates. The kernels microbench is
# built (--no-run) so perf regressions stay one command away. Hard
# timeouts so a deadlocked thread-scope fails fast.
cargo bench -p ehna-bench --bench kernels --no-run
cargo test -p ehna-nn --test kernel_proptests --no-run -q
cargo test -p ehna-core --test threaded_determinism --no-run -q
timeout --kill-after=10 120 \
    cargo test -p ehna-nn --test kernel_proptests -q
timeout --kill-after=10 180 \
    cargo test -p ehna-core --test threaded_determinism -q

echo "== aggregator gates (wall-clock bounded)"
# The pluggable node-stage subsystem's contracts: the LSTM aggregator is
# pinned bit-for-bit to the pre-trait loss trace (aggregator_golden), the
# fused temporal-attention op matches its composed-graph oracle forward
# and backward and passes gradcheck with padding rows provably at zero
# gradient (attention_ops), and an attn train -> export -> serve -> query
# journey runs the real CLI end to end. Hard timeouts so a wedged kernel
# thread-scope fails fast. (threaded_determinism above already covers
# both aggregators' 1-vs-4-thread bit-identity.)
cargo test -p ehna-core --test aggregator_golden --no-run -q
cargo test -p ehna-nn --test attention_ops --no-run -q
cargo test -p ehna-cli --test serve_end_to_end --no-run -q
timeout --kill-after=10 180 \
    cargo test -p ehna-core --test aggregator_golden -q
timeout --kill-after=10 120 \
    cargo test -p ehna-nn --test attention_ops -q
timeout --kill-after=10 180 \
    cargo test -p ehna-cli --test serve_end_to_end train_attn_aggregator_round_trip -q

echo "== cargo test (workspace, pipelined: EHNA_PIPELINE_DEPTH=3)"
# Re-run the suite with a non-default prefetch depth so the pipelined
# training path is exercised suite-wide; results must be identical to
# the synchronous path, so the same tests must pass unchanged.
EHNA_PIPELINE_DEPTH=3 cargo test --workspace -q

echo "ci: all green"
