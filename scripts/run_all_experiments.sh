#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the extension
# experiments, then patch EXPERIMENTS.md with the measured numbers.
#
# Usage: scripts/run_all_experiments.sh [scale] [budget]
#   scale:  tiny (default) | small | medium
#   budget: quick (default) | full
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-tiny}"
BUDGET="${2:-quick}"

cargo build --release -p ehna-bench --bins

for bin in table1_stats table8_timing fig4_reconstruction table3_6_linkpred \
           table7_ablation fig5_sensitivity ext_ablations ext_nodeclass; do
    echo "=== $bin (scale=$SCALE budget=$BUDGET) ==="
    "./target/release/$bin" --scale "$SCALE" --budget "$BUDGET" --seed 42
done

python3 scripts/fill_experiments.py "$SCALE"
echo "done — results in results/, summary in EXPERIMENTS.md"
