#!/usr/bin/env python3
"""Patch EXPERIMENTS.md with measured tables from results/*.tsv.

Each `<!-- MARKER -->` in EXPERIMENTS.md is replaced by a markdown
rendering of the corresponding TSV files. Re-runnable: markers are kept in
the output so the file can be regenerated after new harness runs.
"""
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "results")
DOC = os.path.join(ROOT, "EXPERIMENTS.md")


def tsv_to_md(path, max_rows=None):
    with open(path) as f:
        rows = [line.rstrip("\n").split("\t") for line in f if line.strip()]
    if not rows:
        return "(empty)"
    head, body = rows[0], rows[1:]
    if max_rows:
        body = body[:max_rows]
    out = ["| " + " | ".join(head) + " |", "|" + "---|" * len(head)]
    out += ["| " + " | ".join(r) + " |" for r in body]
    return "\n".join(out)


def section(marker, files, title_fmt="**{name}**"):
    parts = [f"<!-- {marker} -->"]
    for path in files:
        if not os.path.exists(path):
            parts.append(f"_missing: {os.path.basename(path)}_")
            continue
        name = os.path.basename(path).replace(".tsv", "")
        parts.append(title_fmt.format(name=name))
        parts.append("")
        parts.append(tsv_to_md(path))
        parts.append("")
    return "\n".join(parts)


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    r = lambda n: os.path.join(RESULTS, n)
    blocks = {
        "TABLE1": section("TABLE1", [r(f"table1_stats_{scale}.tsv")]),
        "FIG4": section(
            "FIG4",
            [r(f"fig4_{d}_{scale}.tsv") for d in ["digg", "yelp", "tmall", "dblp"]],
        ),
        "TABLE36": section(
            "TABLE36",
            [r(f"table3_6_{d}_{scale}.tsv") for d in ["digg", "yelp", "tmall", "dblp"]],
        ),
        "TABLE7": section("TABLE7", [r(f"table7_ablation_{scale}.tsv")]),
        "TABLE8": section("TABLE8", [r(f"table8_timing_{scale}.tsv")]),
        "FIG5": section(
            "FIG5",
            [
                r(f"fig5_{s}_{scale}.tsv")
                for s in ["margin", "walk_length", "log2_p", "log2_q"]
            ],
        ),
    }
    with open(DOC) as f:
        text = f.read()
    import re

    for marker, content in blocks.items():
        # Replace the marker plus any previously generated block (up to the
        # next heading or horizontal rule).
        pattern = re.compile(
            rf"<!-- {marker} -->.*?(?=\n## |\n---|\Z)", re.DOTALL
        )
        if not pattern.search(text):
            print(f"warning: marker {marker} not found", file=sys.stderr)
            continue
        text = pattern.sub(content + "\n", text)
    with open(DOC, "w") as f:
        f.write(text)
    print(f"patched {DOC} from {RESULTS} (scale={scale})")


if __name__ == "__main__":
    main()
