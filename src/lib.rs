//! # ehna — Temporal Network Representation Learning via Historical
//! Neighborhoods Aggregation
//!
//! A full Rust reproduction of the EHNA system (Huang, Bao, Li, Zhou,
//! Culpepper — ICDE 2020), including every substrate it depends on:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tgraph`] | `ehna-tgraph` | temporal graph storage, snapshots, IO, stats, embeddings |
//! | [`datasets`] | `ehna-datasets` | seeded synthetic digg/yelp/tmall/dblp-like generators |
//! | [`walks`] | `ehna-walks` | temporal / node2vec / CTDNE walk engines, alias sampling |
//! | [`nn`] | `ehna-nn` | reverse-mode autodiff, LSTM/BN/Linear layers, SGD/Adam |
//! | [`core`] | `ehna-core` | the EHNA model: attention, aggregation, training, ablations |
//! | [`baselines`] | `ehna-baselines` | Node2Vec, CTDNE, LINE, HTNE |
//! | [`eval`] | `ehna-eval` | reconstruction & link-prediction pipelines, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use ehna::datasets::{generate, Dataset, Scale};
//! use ehna::core::{EhnaConfig, Trainer};
//!
//! // A small synthetic co-authorship network.
//! let graph = generate(Dataset::DblpLike, Scale::Tiny, 42);
//!
//! // Train EHNA briefly and read out embeddings.
//! let config = EhnaConfig { epochs: 1, batch_size: 256, ..EhnaConfig::tiny() };
//! let mut trainer = Trainer::new(&graph, config).unwrap();
//! trainer.train();
//! let embeddings = trainer.into_embeddings();
//! assert_eq!(embeddings.num_nodes(), graph.num_nodes());
//! ```

pub use ehna_baselines as baselines;
pub use ehna_core as core;
pub use ehna_datasets as datasets;
pub use ehna_eval as eval;
pub use ehna_nn as nn;
pub use ehna_tgraph as tgraph;
pub use ehna_walks as walks;
