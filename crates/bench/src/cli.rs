//! Tiny hand-rolled flag parser shared by the harness binaries (keeps the
//! workspace free of an argument-parsing dependency).

use crate::methods::TrainBudget;
use ehna_datasets::Scale;
use std::path::PathBuf;

/// Flags common to every harness binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset scale preset.
    pub scale: Scale,
    /// Embedding dimensionality (paper: 128; scaled default 32 so the
    /// full harness suite runs on one CPU core in tens of minutes).
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
    /// Training effort.
    pub budget: TrainBudget,
    /// Output directory for TSV files.
    pub out: PathBuf,
    /// Restrict to one dataset (name), if given.
    pub only_dataset: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Tiny,
            dim: 32,
            seed: 42,
            budget: TrainBudget::Quick,
            out: PathBuf::from("results"),
            only_dataset: None,
        }
    }
}

impl Args {
    /// Parse from an iterator of arguments (excluding argv[0]).
    ///
    /// # Errors
    /// Returns a usage message on unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("flag {name} needs a value"));
            match flag.as_str() {
                "--scale" => out.scale = value("--scale")?.parse()?,
                "--dim" => {
                    out.dim = value("--dim")?.parse().map_err(|e| format!("bad --dim: {e}"))?;
                }
                "--seed" => {
                    out.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--budget" => out.budget = value("--budget")?.parse()?,
                "--out" => out.out = PathBuf::from(value("--out")?),
                "--dataset" => out.only_dataset = Some(value("--dataset")?),
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag '{other}'\n{}", usage())),
            }
        }
        if out.dim == 0 || out.dim % 2 != 0 {
            return Err("--dim must be a positive even number (LINE splits it)".into());
        }
        Ok(out)
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        match Args::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Create the output directory and return a file path within it.
    pub fn out_file(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        self.out.join(name)
    }
}

fn usage() -> String {
    "usage: <bin> [--scale tiny|small|medium] [--dim N] [--seed N] \
     [--budget quick|full] [--out DIR] [--dataset digg|yelp|tmall|dblp]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        Args::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.dim, 32);
        assert_eq!(a.scale, Scale::Tiny);
        assert!(a.only_dataset.is_none());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--scale",
            "small",
            "--dim",
            "32",
            "--seed",
            "7",
            "--budget",
            "full",
            "--out",
            "/tmp/r",
            "--dataset",
            "yelp",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.dim, 32);
        assert_eq!(a.seed, 7);
        assert_eq!(a.budget, TrainBudget::Full);
        assert_eq!(a.out, PathBuf::from("/tmp/r"));
        assert_eq!(a.only_dataset.as_deref(), Some("yelp"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--dim", "0"]).is_err());
        assert!(parse(&["--dim", "63"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--dim"]).is_err());
    }
}
