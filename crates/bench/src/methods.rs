//! The five compared methods (paper §V-B plus EHNA itself) behind one
//! dispatch type, with two training budgets.

use ehna_baselines::{Ctdne, EmbeddingMethod, Htne, Line, Node2Vec, SkipGramConfig};
use ehna_core::{EhnaConfig, EhnaVariant, Trainer};
use ehna_tgraph::{NodeEmbeddings, TemporalGraph};
use ehna_walks::{CtdneConfig, Node2VecConfig};
use std::fmt;
use std::str::FromStr;

/// How much compute to spend per method.
///
/// `Quick` keeps every harness runnable in minutes at `Scale::Tiny`;
/// `Full` uses the paper's walk/epoch settings (`k = 10`, `l = 10`,
/// `l = 80` for Node2Vec) and is meant for `Scale::Small`+ runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainBudget {
    /// Reduced walk counts / epochs.
    Quick,
    /// Paper-default settings.
    Full,
}

impl FromStr for TrainBudget {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(TrainBudget::Quick),
            "full" => Ok(TrainBudget::Full),
            other => Err(format!("unknown budget '{other}' (quick|full)")),
        }
    }
}

/// One of the compared embedding methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// LINE (1st+2nd order, concatenated).
    Line,
    /// Node2Vec (static p/q walks + SGNS).
    Node2Vec,
    /// CTDNE (forward temporal walks + SGNS).
    Ctdne,
    /// HTNE (Hawkes neighborhood formation).
    Htne,
    /// EHNA — optionally one of its ablation variants.
    Ehna(EhnaVariant),
}

/// Column order of Tables III–VI.
pub const PAPER_METHOD_ORDER: [Method; 5] =
    [Method::Line, Method::Node2Vec, Method::Ctdne, Method::Htne, Method::Ehna(EhnaVariant::Full)];

impl Method {
    /// Table column label.
    pub fn name(self) -> &'static str {
        match self {
            Method::Line => "LINE",
            Method::Node2Vec => "Node2Vec",
            Method::Ctdne => "CTDNE",
            Method::Htne => "HTNE",
            Method::Ehna(v) => v.name(),
        }
    }

    /// Whether this is the proposed method (for error-reduction rows).
    pub fn is_ours(self) -> bool {
        matches!(self, Method::Ehna(_))
    }

    /// Train this method on `graph`.
    pub fn train(
        self,
        graph: &TemporalGraph,
        dim: usize,
        seed: u64,
        budget: TrainBudget,
    ) -> NodeEmbeddings {
        let quick = budget == TrainBudget::Quick;
        match self {
            Method::Line => {
                Line { dim, samples_per_edge: if quick { 30 } else { 50 }, ..Default::default() }
                    .embed(graph, seed)
            }
            Method::Node2Vec => Node2Vec {
                walks: Node2VecConfig {
                    length: if quick { 20 } else { 80 },
                    walks_per_node: if quick { 4 } else { 10 },
                    ..Default::default()
                },
                sgns: SkipGramConfig {
                    dim,
                    epochs: if quick { 1 } else { 2 },
                    ..Default::default()
                },
                threads: 1,
            }
            .embed(graph, seed),
            Method::Ctdne => Ctdne {
                walks: CtdneConfig { length: if quick { 20 } else { 80 }, ..Default::default() },
                walks_per_node: if quick { 4 } else { 10 },
                sgns: SkipGramConfig {
                    dim,
                    epochs: if quick { 1 } else { 2 },
                    ..Default::default()
                },
                threads: 1,
            }
            .embed(graph, seed),
            Method::Htne => Htne { dim, epochs: if quick { 3 } else { 10 }, ..Default::default() }
                .embed(graph, seed),
            Method::Ehna(variant) => {
                // §IV-D: bipartite (user–item) networks need the
                // bidirectional objective Eq. 7.
                let bidirectional = ehna_tgraph::algo::is_bipartite(graph);
                let config = variant
                    .configure(EhnaConfig { bidirectional, ..ehna_config(dim, seed, budget) });
                let mut trainer = Trainer::new(graph, config).expect("valid EHNA config");
                trainer.train();
                trainer.into_embeddings()
            }
        }
    }
}

/// The EHNA base configuration per budget.
pub fn ehna_config(dim: usize, seed: u64, budget: TrainBudget) -> EhnaConfig {
    match budget {
        TrainBudget::Quick => EhnaConfig {
            dim,
            num_walks: 5,
            walk_length: 5,
            batch_size: 64,
            epochs: 8,
            lr: 2e-3,
            seed,
            ..Default::default()
        },
        TrainBudget::Full => EhnaConfig {
            dim,
            num_walks: 10,
            walk_length: 10,
            batch_size: 512,
            epochs: 6,
            lr: 1e-3,
            seed,
            ..Default::default()
        },
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_datasets::{generate, Dataset, Scale};

    #[test]
    fn every_method_trains_on_tiny_graph() {
        let g = generate(Dataset::DiggLike, Scale::Tiny, 1);
        for m in PAPER_METHOD_ORDER {
            let e = m.train(&g, 16, 3, TrainBudget::Quick);
            assert_eq!(e.num_nodes(), g.num_nodes(), "{m}");
            assert_eq!(e.dim(), 16, "{m}");
            assert!(e.as_slice().iter().all(|v| v.is_finite()), "{m}");
        }
    }

    #[test]
    fn names_in_paper_order() {
        let names: Vec<&str> = PAPER_METHOD_ORDER.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LINE", "Node2Vec", "CTDNE", "HTNE", "EHNA"]);
        assert!(Method::Ehna(EhnaVariant::Full).is_ours());
        assert!(!Method::Line.is_ours());
    }

    #[test]
    fn budget_parses() {
        assert_eq!("quick".parse::<TrainBudget>().unwrap(), TrainBudget::Quick);
        assert_eq!("FULL".parse::<TrainBudget>().unwrap(), TrainBudget::Full);
        assert!("lavish".parse::<TrainBudget>().is_err());
    }
}
