//! # ehna-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation section (§V),
//! plus criterion micro-benchmarks. Each binary prints the same rows or
//! series the paper reports and writes TSV into `results/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_stats` | Table I — dataset statistics |
//! | `fig4_reconstruction` | Figure 4 — reconstruction Precision@P curves |
//! | `table3_6_linkpred` | Tables III–VI — link prediction, 4 operators × 4 metrics |
//! | `table7_ablation` | Table VII — EHNA variant ablation |
//! | `table8_timing` | Table VIII — training time per epoch |
//! | `fig5_sensitivity` | Figure 5 — parameter sensitivity on yelp-like |
//!
//! Common flags: `--scale tiny|small|medium`, `--dim N`, `--seed N`,
//! `--budget quick|full`, `--out DIR`.

pub mod cli;
pub mod methods;
pub mod table;

pub use cli::Args;
pub use methods::{Method, TrainBudget, PAPER_METHOD_ORDER};
