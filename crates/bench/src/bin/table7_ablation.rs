//! Table VII — ablation study.
//!
//! F1 under the Weighted-L2 operator in the link-prediction task for the
//! four EHNA variants (full, -NA no attention, -RW traditional walks,
//! -SL single-level single-layer LSTM) on every dataset.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin table7_ablation -- --scale tiny
//! ```

use ehna_bench::methods::Method;
use ehna_bench::table::{f4, Table};
use ehna_bench::Args;
use ehna_core::variants::ALL_VARIANTS;
use ehna_datasets::{generate, ALL_DATASETS};
use ehna_eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};

fn main() {
    let args = Args::from_env();
    let datasets: Vec<_> = ALL_DATASETS
        .into_iter()
        .filter(|d| args.only_dataset.as_deref().map_or(true, |o| o == d.name()))
        .collect();

    let mut table = Table::new(
        std::iter::once("Method".to_string()).chain(datasets.iter().map(|d| d.name().to_string())),
    );
    let mut rows: Vec<Vec<String>> =
        ALL_VARIANTS.iter().map(|v| vec![v.name().to_string()]).collect();

    for &d in &datasets {
        let graph = generate(d, args.scale, args.seed);
        let task = LinkPredictionTask::prepare(
            &graph,
            LinkPredictionConfig { seed: args.seed, ..Default::default() },
        );
        for (vi, &variant) in ALL_VARIANTS.iter().enumerate() {
            eprintln!("[ablation] {} / {} ...", d.name(), variant.name());
            let emb =
                Method::Ehna(variant).train(task.train_graph(), args.dim, args.seed, args.budget);
            let m = task.evaluate(&emb, EdgeOperator::WeightedL2);
            rows[vi].push(f4(m.f1));
        }
    }
    for row in rows {
        table.row(row);
    }
    println!("\nTable VII: F1 under Weighted-L2, EHNA variants (scale '{}')\n", args.scale);
    print!("{}", table.render());
    let path = args.out_file(&format!("table7_ablation_{}.tsv", args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("wrote {}", path.display());
}
