//! Ad-hoc kernel timing at the shapes the EHNA aggregation actually runs
//! (`cargo run --release -p ehna-bench --bin profile_kernels`). The
//! criterion bench (`benches/kernels.rs`) covers fixed headline shapes;
//! this bin sweeps the long-thin LSTM/attention shapes where per-tile
//! overhead, not FLOPs, can dominate.

use ehna_nn::kernels;
use std::time::Instant;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

fn time_it(label: &str, flops: usize, mut f: impl FnMut()) {
    // Warm up, then run enough iterations to fill ~0.3 s.
    f();
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.3 / once) as usize).clamp(1, 10_000);
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<44} {:>9.3} ms  {:>7.2} GFLOP/s", per * 1e3, flops as f64 / per / 1e9);
}

fn main() {
    for &(m, k, n) in
        &[(3030usize, 32usize, 128usize), (3030, 64, 256), (256, 64, 256), (640, 32, 128)]
    {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        time_it(&format!("gemm_acc    m={m} k={k} n={n}"), 2 * m * k * n, || {
            kernels::gemm_acc(m, k, n, &a, &b, &mut c)
        });
        let bt = rand_vec(n * k, 3);
        time_it(&format!("gemm_nt_acc m={m} k={k} n={n}"), 2 * m * k * n, || {
            kernels::gemm_nt_acc(m, k, n, &a, &bt, &mut c)
        });
        // Weight-grad shape: c (k×n) += aᵀ (m×k)ᵀ · b (m×n), reduction over m.
        let bn = rand_vec(m * n, 5);
        let mut cn = vec![0.0f32; k * n];
        time_it(&format!("gemm_tn_acc m={k} k={m} n={n}"), 2 * m * k * n, || {
            kernels::gemm_tn_acc(k, m, n, &a, &bn, &mut cn)
        });
    }
    for &(bsz, h) in &[(3030usize, 32usize), (256, 64)] {
        let pre = rand_vec(bsz * 4 * h, 6);
        let cp = rand_vec(bsz * h, 7);
        let mut hc = vec![0.0f32; bsz * 2 * h];
        let mut aux = vec![0.0f32; bsz * 5 * h];
        // ~25 flops per (row, unit): 3 sigmoids + 2 tanh + muls.
        time_it(&format!("lstm_step_forward b={bsz} h={h}"), 25 * bsz * h, || {
            kernels::lstm_step_forward(bsz, h, &pre, &cp, &mut hc, &mut aux)
        });
    }
    let (m, n) = (3030usize, 32usize);
    let x = rand_vec(m * n, 8);
    let mut y = vec![0.0f32; m * n];
    time_it(&format!("softmax_rows_forward m={m} n={n}"), 5 * m * n, || {
        kernels::softmax_rows_forward(m, n, &x, &mut y)
    });
}
