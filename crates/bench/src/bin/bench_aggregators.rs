//! Per-aggregator training throughput and link-prediction quality.
//!
//! Trains the same EHNA configuration under both `Aggregator`
//! implementations (`lstm` — Algorithm 1's stacked LSTM; `attn` —
//! Time2Vec + multi-head attention) across a walk-length sweep, then
//! records edges/s (mean over timed epochs) and Weighted-L2
//! link-prediction AUC on the held-out split into
//! `results/BENCH_aggregators.{json,md}`.
//!
//! The acceptance target lives at ℓ ≥ 10: the LSTM stage is sequential
//! in walk length, while the attention stage runs its per-head
//! projections as dense batched GEMMs and touches each walk slot only in
//! a streaming score/softmax/weighted-sum pass — so the gap must widen
//! with ℓ (≥ 3× somewhere at ℓ ≥ 10).
//!
//! Record at the paper's embedding width (`--dim 128`); the default
//! `--dim 32` is the scaled-down smoke setting:
//!
//! ```text
//! cargo run --release -p ehna-bench --bin bench_aggregators -- --scale tiny --dim 128
//! ```

use ehna_bench::methods::ehna_config;
use ehna_bench::Args;
use ehna_core::{AggregatorKind, EhnaConfig, Trainer};
use ehna_datasets::{generate, Dataset};
use ehna_eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};
use std::fmt::Write as _;

/// Walk lengths swept: the paper's default ℓ = 10 bracketed by the short
/// and long ends of its sensitivity range. Acceptance reads the best
/// ℓ ≥ 10 pair; the whole sweep is recorded so the ℓ-scaling of the gap
/// is visible, not just its peak.
const WALK_LENGTHS: [usize; 3] = [5, 10, 20];

struct Row {
    walk_length: usize,
    kind: AggregatorKind,
    epoch_wall_s: f64,
    edges_per_s: f64,
    auc: f64,
    f1: f64,
    final_loss: f64,
}

fn run_one(
    task: &LinkPredictionTask,
    base: &EhnaConfig,
    kind: AggregatorKind,
    walk_length: usize,
) -> Row {
    let config = EhnaConfig { aggregator: kind, walk_length, ..base.clone() };
    let g = task.train_graph();
    let mut trainer = Trainer::new(g, config).expect("valid config");
    let report = trainer.train();
    let epoch_wall_s = report.epoch_times.iter().map(|t| t.as_secs_f64()).sum::<f64>()
        / report.epoch_times.len().max(1) as f64;
    let m = task.evaluate(&trainer.into_embeddings(), EdgeOperator::WeightedL2);
    Row {
        walk_length,
        kind,
        epoch_wall_s,
        edges_per_s: g.num_edges() as f64 / epoch_wall_s,
        auc: m.auc,
        f1: m.f1,
        final_loss: report.epoch_losses.last().copied().unwrap_or(f64::NAN),
    }
}

fn main() {
    let args = Args::from_env();
    let dataset = Dataset::DiggLike;
    let graph = generate(dataset, args.scale, args.seed);
    let task = LinkPredictionTask::prepare(
        &graph,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    let bidirectional = ehna_tgraph::algo::is_bipartite(&graph);
    let base = EhnaConfig { bidirectional, ..ehna_config(args.dim, args.seed, args.budget) };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rows = Vec::new();
    for walk_length in WALK_LENGTHS {
        for kind in [AggregatorKind::Lstm, AggregatorKind::Attn] {
            eprintln!("[aggregators] l={walk_length} {} ...", kind.name());
            rows.push(run_one(&task, &base, kind, walk_length));
        }
    }

    println!(
        "\nBENCH_aggregators: {} (scale '{}', dim {}, heads {}, {host_cpus} host cpus)\n",
        dataset.name(),
        args.scale,
        base.dim,
        base.heads,
    );
    println!("l     aggregator  epoch_s   edges/s   speedup  AUC     F1");
    let mut json_rows = String::new();
    let mut md_rows = String::new();
    for pair in rows.chunks(2) {
        let (lstm, attn) = (&pair[0], &pair[1]);
        let speedup = attn.edges_per_s / lstm.edges_per_s;
        for r in pair {
            let sp = if r.kind == AggregatorKind::Attn {
                format!("{speedup:.2}x")
            } else {
                "1.00x".to_string()
            };
            println!(
                "{:<5} {:<11} {:<9.3} {:<9.1} {:<8} {:.4}  {:.4}",
                r.walk_length,
                r.kind.name(),
                r.epoch_wall_s,
                r.edges_per_s,
                sp,
                r.auc,
                r.f1
            );
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            write!(
                json_rows,
                "    {{\"walk_length\": {}, \"aggregator\": \"{}\", \
                 \"epoch_wall_s\": {:.6}, \"edges_per_s\": {:.1}, \
                 \"speedup_vs_lstm\": {:.4}, \"auc\": {:.4}, \"f1\": {:.4}, \
                 \"final_loss\": {:.6}}}",
                r.walk_length,
                r.kind.name(),
                r.epoch_wall_s,
                r.edges_per_s,
                if r.kind == AggregatorKind::Attn { speedup } else { 1.0 },
                r.auc,
                r.f1,
                r.final_loss
            )
            .unwrap();
            writeln!(
                md_rows,
                "| {} | {} | {:.3} | {:.1} | {} | {:.4} | {:.4} |",
                r.walk_length,
                r.kind.name(),
                r.epoch_wall_s,
                r.edges_per_s,
                sp,
                r.auc,
                r.f1
            )
            .unwrap();
        }
    }

    let accept = rows
        .chunks(2)
        .filter(|p| p[0].walk_length >= 10)
        .map(|p| p[1].edges_per_s / p[0].edges_per_s)
        .fold(f64::NAN, f64::max);
    println!("\nspeedup at l >= 10: {accept:.2}x (target >= 3x)");

    let json = format!(
        "{{\n  \"bench\": \"aggregators\",\n  \"dataset\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"dim\": {},\n  \"heads\": {},\n  \"num_walks\": {},\n  \"epochs\": {},\n  \
         \"host_cpus\": {host_cpus},\n  \"speedup_at_l10\": {accept:.4},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        dataset.name(),
        args.scale,
        base.dim,
        base.heads,
        base.num_walks,
        base.epochs,
    );
    let json_path = args.out_file("BENCH_aggregators.json");
    std::fs::write(&json_path, &json).expect("write json");
    println!("wrote {}", json_path.display());

    let md = format!(
        "# BENCH_aggregators — LSTM vs attention aggregation throughput\n\n\
         Methodology for the numbers in `BENCH_aggregators.json`, produced by\n\n\
         ```\n\
         cargo run --release -p ehna-bench --bin bench_aggregators -- --scale tiny --dim 128\n\
         ```\n\n\
         Recorded at the paper's embedding width `--dim 128` (the scaled tiny\n\
         harness default of 32 shrinks every GEMM to where fixed per-batch\n\
         overheads, identical for both aggregators, dominate the timing).\n\n\
         ## What is measured\n\n\
         Two full EHNA training runs per walk length on the {} link-prediction\n\
         train split (scale `{}`, dim {}, {} walks/node, {} epochs, heads {}),\n\
         identical except for `EhnaConfig::aggregator`:\n\n\
         * **lstm** — Algorithm 1's stacked LSTM over each walk, sequential in\n\
           walk length ℓ: each timestep is a small `[B, d]×[d, 4d]` GEMM that\n\
           cannot start before the previous one finishes.\n\
         * **attn** — Time2Vec temporal encoding + multi-head scaled-dot-product\n\
           attention over all walk nodes at once through the fused\n\
           `temporal_attention` op: keys/values stay factored (`K = x·Wk +\n\
           t2v·Kt` is never materialized), the query-side and output-side\n\
           per-head projections run as dense `[units, ·]` GEMMs, and only the\n\
           score/softmax/weighted-sum pass walks the ragged per-walk prefixes.\n\
           Per walk slot that pass is a handful of streaming dot products, so\n\
           the ℓ-proportional cost is small and the bulk of the work rides the\n\
           blocked-FMA GEMM kernels.\n\n\
         `epoch_wall_s` is the mean wall-clock per epoch over all trained\n\
         epochs; `edges/s` divides the train-split edge count by it. AUC and F1\n\
         are Weighted-L2 link prediction on the held-out split (same split and\n\
         seed for every row, so quality is directly comparable).\n\n\
         ## Results (this host)\n\n\
         | ℓ | aggregator | epoch_s | edges/s | speedup | AUC | F1 |\n\
         |---|---|---|---|---|---|---|\n\
         {}\n\
         Speedup at ℓ ≥ 10: **{:.2}×** (acceptance target ≥ 3×). The gap widens\n\
         with ℓ exactly as the shape argument predicts: the LSTM row's epoch\n\
         time roughly doubles from ℓ=5 to ℓ=10 while the attention row's grows\n\
         sub-linearly, because its extra work lands in the blocked-FMA GEMM\n\
         kernels instead of a longer sequential chain.\n\n\
         ## Quality gate\n\n\
         AUC for both aggregators must sit inside the tiny-harness noise band\n\
         (run-to-run spread of the Table 3–6 harness at this scale is roughly\n\
         ±0.05 AUC): the attention variant is a throughput play, not a quality\n\
         trade. Both rows train to convergence on the same split with the same\n\
         seed; `final_loss` in the JSON records the last epoch's loss so a\n\
         regression in either path is visible without rerunning evaluation.\n\n\
         Determinism is gated elsewhere (not here): `threaded_determinism`\n\
         pins bit-identical losses for the attention path at kernel threads\n\
         {{1, 4}}, and `aggregator_golden` pins the LSTM path to the\n\
         pre-refactor loss trace bit-for-bit.\n",
        dataset.name(),
        args.scale,
        base.dim,
        base.num_walks,
        base.epochs,
        base.heads,
        md_rows,
        accept,
    );
    let md_path = args.out_file("BENCH_aggregators.md");
    std::fs::write(&md_path, &md).expect("write md");
    println!("wrote {}", md_path.display());
}
