//! Figure 4 — network reconstruction.
//!
//! For every dataset and method: train embeddings on the full network,
//! rank sampled node pairs by dot product, and report Precision@P for a
//! log-spaced sweep of P (the paper sweeps 10² … 10⁶ at its scale; the
//! sweep here tops out near the sampled-pair count of the synthetic
//! presets). One TSV per dataset with a column per method — the Figure 4
//! series.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin fig4_reconstruction -- --scale tiny
//! ```

use ehna_bench::table::{f4, Table};
use ehna_bench::{Args, PAPER_METHOD_ORDER};
use ehna_datasets::{generate, ALL_DATASETS};
use ehna_eval::reconstruction::precision_at;
use ehna_eval::ReconstructionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    for d in ALL_DATASETS {
        if let Some(only) = &args.only_dataset {
            if only != d.name() {
                continue;
            }
        }
        let graph = generate(d, args.scale, args.seed);
        // P sweep: log-spaced up to roughly the edge count.
        let mut ps: Vec<usize> = vec![100, 300, 1_000, 3_000, 10_000, 30_000, 100_000];
        ps.retain(|&p| p <= graph.num_edges() * 10);
        let cfg = ReconstructionConfig { sample_nodes: 600.min(graph.num_nodes()), repetitions: 5 };

        let mut table = Table::new(
            std::iter::once("P".to_string())
                .chain(PAPER_METHOD_ORDER.iter().map(|m| m.name().to_string())),
        );
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for m in PAPER_METHOD_ORDER {
            eprintln!("[fig4] {} / {} ...", d.name(), m.name());
            let emb = m.train(&graph, args.dim, args.seed, args.budget);
            let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF164);
            columns.push(precision_at(&graph, &emb, &ps, &cfg, &mut rng));
        }
        for (i, &p) in ps.iter().enumerate() {
            let mut row = vec![p.to_string()];
            row.extend(columns.iter().map(|c| f4(c[i])));
            table.row(row);
        }
        println!("\nFigure 4 ({}-like, scale '{}'): Precision@P\n", d.name(), args.scale);
        print!("{}", table.render());
        let path = args.out_file(&format!("fig4_{}_{}.tsv", d.name(), args.scale));
        table.write_tsv(&path).expect("write tsv");
        println!("wrote {}", path.display());
    }
}
