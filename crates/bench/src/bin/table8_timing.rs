//! Table VIII — average training time per epoch.
//!
//! Times one training epoch of every method on every dataset, including
//! the multi-threaded walk-corpus variants (`Node2Vec 10`, `CTDNE 10`)
//! the paper reports. Absolute numbers depend on the machine; the paper's
//! comparison is about *relative* cost (HTNE cheapest, LINE flat across
//! datasets, EHNA between the walk methods and LINE).
//!
//! ```text
//! cargo run --release -p ehna-bench --bin table8_timing -- --scale tiny
//! ```

use ehna_baselines::{Ctdne, EmbeddingMethod, Htne, Line, Node2Vec, SkipGramConfig};
use ehna_bench::methods::ehna_config;
use ehna_bench::table::Table;
use ehna_bench::{Args, TrainBudget};
use ehna_core::Trainer;
use ehna_datasets::{generate, ALL_DATASETS};
use ehna_tgraph::TemporalGraph;
use ehna_walks::{CtdneConfig, Node2VecConfig};
use std::time::Instant;

/// Wall-time of `f`, in seconds.
fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn one_epoch_rows(graph: &TemporalGraph, args: &Args) -> Vec<(String, f64)> {
    let quick = args.budget == TrainBudget::Quick;
    let dim = args.dim;
    let seed = args.seed;
    let n2v = |threads| Node2Vec {
        walks: Node2VecConfig {
            length: if quick { 20 } else { 80 },
            walks_per_node: if quick { 4 } else { 10 },
            ..Default::default()
        },
        sgns: SkipGramConfig { dim, epochs: 1, ..Default::default() },
        threads,
    };
    let ctdne = |threads| Ctdne {
        walks: CtdneConfig { length: if quick { 20 } else { 80 }, ..Default::default() },
        walks_per_node: if quick { 4 } else { 10 },
        sgns: SkipGramConfig { dim, epochs: 1, ..Default::default() },
        threads,
    };
    let mut rows = Vec::new();
    rows.push((
        "Node2Vec".to_string(),
        time_it(|| {
            n2v(1).embed(graph, seed);
        }),
    ));
    rows.push((
        "Node2Vec 10".to_string(),
        time_it(|| {
            n2v(10).embed(graph, seed);
        }),
    ));
    rows.push((
        "CTDNE".to_string(),
        time_it(|| {
            ctdne(1).embed(graph, seed);
        }),
    ));
    rows.push((
        "CTDNE 10".to_string(),
        time_it(|| {
            ctdne(10).embed(graph, seed);
        }),
    ));
    rows.push((
        "LINE".to_string(),
        time_it(|| {
            Line { dim, samples_per_edge: if quick { 10 } else { 50 }, ..Default::default() }
                .embed(graph, seed);
        }),
    ));
    rows.push((
        "HTNE".to_string(),
        time_it(|| {
            Htne { dim, epochs: 1, ..Default::default() }.embed(graph, seed);
        }),
    ));
    rows.push(("EHNA".to_string(), {
        let cfg = ehna_config(dim, seed, args.budget);
        let mut trainer = Trainer::new(graph, cfg).expect("valid config");
        time_it(|| {
            trainer.train_epoch();
        })
    }));
    rows
}

fn main() {
    let args = Args::from_env();
    let datasets: Vec<_> = ALL_DATASETS
        .into_iter()
        .filter(|d| args.only_dataset.as_deref().map_or(true, |o| o == d.name()))
        .collect();
    let mut table = Table::new(
        std::iter::once("Method".to_string())
            .chain(datasets.iter().map(|d| format!("{} (s)", d.name()))),
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (di, &d) in datasets.iter().enumerate() {
        eprintln!("[timing] {} ...", d.name());
        let graph = generate(d, args.scale, args.seed);
        for (ri, (name, secs)) in one_epoch_rows(&graph, &args).into_iter().enumerate() {
            if di == 0 {
                rows.push(vec![name]);
            }
            rows[ri].push(format!("{secs:.3}"));
        }
    }
    for row in rows {
        table.row(row);
    }
    println!("\nTable VIII: training time per epoch (scale '{}')\n", args.scale);
    print!("{}", table.render());
    let path = args.out_file(&format!("table8_timing_{}.tsv", args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("wrote {}", path.display());
}
