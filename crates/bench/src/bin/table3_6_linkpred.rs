//! Tables III–VI — future link prediction.
//!
//! One table per dataset: for each Table II operator and each metric
//! (AUC / F1 / Precision / Recall), the score of every method plus the
//! error-reduction of EHNA against the best baseline — exactly the cell
//! layout of the paper's Tables III (Digg), IV (Yelp), V (Tmall) and
//! VI (DBLP).
//!
//! ```text
//! cargo run --release -p ehna-bench --bin table3_6_linkpred -- --scale tiny
//! ```

use ehna_bench::table::{f4, pct, Table};
use ehna_bench::{Args, PAPER_METHOD_ORDER};
use ehna_datasets::{generate, Dataset, ALL_DATASETS};
use ehna_eval::metrics::error_reduction;
use ehna_eval::operators::ALL_OPERATORS;
use ehna_eval::{BinaryMetrics, LinkPredictionConfig, LinkPredictionTask};
use ehna_tgraph::NodeEmbeddings;

fn main() {
    let args = Args::from_env();
    for d in ALL_DATASETS {
        if let Some(only) = &args.only_dataset {
            if only != d.name() {
                continue;
            }
        }
        run_dataset(&args, d);
    }
}

fn run_dataset(args: &Args, d: Dataset) {
    let graph = generate(d, args.scale, args.seed);
    let task = LinkPredictionTask::prepare(
        &graph,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    eprintln!(
        "[linkpred] {}: {} train edges, {} positives",
        d.name(),
        task.train_graph().num_edges(),
        task.num_positives()
    );

    // Train every method once on the pre-cutoff network.
    let embs: Vec<NodeEmbeddings> = PAPER_METHOD_ORDER
        .iter()
        .map(|m| {
            eprintln!("[linkpred] {} / {} ...", d.name(), m.name());
            m.train(task.train_graph(), args.dim, args.seed, args.budget)
        })
        .collect();

    let mut table = Table::new(
        ["Operator".to_string(), "Metric".to_string()]
            .into_iter()
            .chain(PAPER_METHOD_ORDER.iter().map(|m| m.name().to_string()))
            .chain(std::iter::once("Error Reduction".to_string())),
    );
    for op in ALL_OPERATORS {
        let per_method: Vec<BinaryMetrics> = embs.iter().map(|e| task.evaluate(e, op)).collect();
        type MetricGetter = fn(&BinaryMetrics) -> f64;
        let metric_rows: [(&str, MetricGetter); 4] = [
            ("AUC", |m| m.auc),
            ("F1", |m| m.f1),
            ("Precision", |m| m.precision),
            ("Recall", |m| m.recall),
        ];
        for (label, get) in metric_rows {
            let scores: Vec<f64> = per_method.iter().map(get).collect();
            // Best baseline = best of all non-EHNA columns.
            let best_baseline =
                scores[..scores.len() - 1].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let ours = *scores.last().expect("EHNA column");
            let mut row = vec![op.name().to_string(), label.to_string()];
            row.extend(scores.iter().map(|&s| f4(s)));
            row.push(pct(error_reduction(best_baseline, ours)));
            table.row(row);
        }
    }
    println!("\nLink prediction on {}-like (scale '{}'): \n", d.name(), args.scale);
    print!("{}", table.render());
    let path = args.out_file(&format!("table3_6_{}_{}.tsv", d.name(), args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("wrote {}", path.display());
}
