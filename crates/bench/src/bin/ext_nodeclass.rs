//! Extension experiment: node classification on a temporal stochastic
//! block model (the paper's intro motivates this task; §V evaluates only
//! reconstruction and link prediction).
//!
//! Communities are both structurally and *temporally* coherent (each has
//! an activity era), so temporal methods have signal the static ones
//! cannot see.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin ext_nodeclass -- --scale tiny
//! ```

use ehna_bench::table::{f4, Table};
use ehna_bench::{Args, PAPER_METHOD_ORDER};
use ehna_datasets::CommunityConfig;
use ehna_eval::nodeclass::{evaluate, NodeClassificationConfig};

fn main() {
    let args = Args::from_env();
    let scale_factor = match args.scale {
        ehna_datasets::Scale::Tiny => 1,
        ehna_datasets::Scale::Small => 4,
        ehna_datasets::Scale::Medium => 16,
    };
    let cfg = CommunityConfig {
        num_nodes: 400 * scale_factor,
        num_events: 4_000 * scale_factor,
        ..Default::default()
    };
    let (graph, labels) = cfg.generate(args.seed);
    println!(
        "temporal SBM: {} nodes, {} edges, {} communities\n",
        graph.num_nodes(),
        graph.num_edges(),
        cfg.num_communities
    );

    let mut table = Table::new(["Method", "Accuracy", "Macro-F1"]);
    let nc_cfg = NodeClassificationConfig { seed: args.seed, ..Default::default() };
    for m in PAPER_METHOD_ORDER {
        eprintln!("[nodeclass] {} ...", m.name());
        let emb = m.train(&graph, args.dim, args.seed, args.budget);
        let r = evaluate(&emb, &labels, &nc_cfg);
        table.row([m.name().to_string(), f4(r.accuracy), f4(r.macro_f1)]);
    }
    println!("Node classification (extension experiment):\n\n{}", table.render());
    let path = args.out_file(&format!("ext_nodeclass_{}.tsv", args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("wrote {}", path.display());
}
