//! Table I — dataset statistics.
//!
//! Prints the `# nodes / # temporal edges` rows of the paper's Table I for
//! the synthetic dataset presets, alongside the real datasets' sizes for
//! reference, plus shape diagnostics (static edges, degree skew) that the
//! generators are designed to match.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin table1_stats -- --scale small
//! ```

use ehna_bench::table::Table;
use ehna_bench::Args;
use ehna_datasets::{generate, ALL_DATASETS};
use ehna_tgraph::GraphStats;

fn main() {
    let args = Args::from_env();
    let mut table = Table::new([
        "Dataset",
        "# nodes",
        "# temporal edges",
        "# static edges",
        "time span",
        "max degree",
        "degree gini",
        "(paper nodes)",
        "(paper edges)",
    ]);
    for d in ALL_DATASETS {
        if let Some(only) = &args.only_dataset {
            if only != d.name() {
                continue;
            }
        }
        let g = generate(d, args.scale, args.seed);
        let s = GraphStats::compute(&g);
        let (pn, pe) = d.paper_scale();
        table.row([
            d.name().to_string(),
            s.num_nodes.to_string(),
            s.num_temporal_edges.to_string(),
            s.num_static_edges.to_string(),
            format!("[{}, {}]", s.min_time, s.max_time),
            s.max_degree.to_string(),
            format!("{:.3}", s.degree_gini),
            pn.to_string(),
            pe.to_string(),
        ]);
    }
    println!("Table I (synthetic presets at scale '{}'):\n", args.scale);
    print!("{}", table.render());
    let path = args.out_file(&format!("table1_stats_{}.tsv", args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("\nwrote {}", path.display());
}
