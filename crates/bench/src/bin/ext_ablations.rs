//! Extension ablations beyond the paper's Table VII, covering the design
//! choices DESIGN.md calls out:
//!
//! 1. **Decay kernel** — exponential (Eq. 1) vs. linear cutoff vs. uniform
//!    (no decay) transition weighting in the temporal walk.
//! 2. **Objective direction** — unidirectional Eq. 6 vs. bidirectional
//!    Eq. 7 on the bipartite tmall-like network (the case §IV-D motivates).
//! 3. **Embedding dimension** — d ∈ {16, 32, 64, 128} (the paper fixes
//!    d = 128; this sweep shows the quality/cost trade the fixed choice
//!    hides).
//!
//! Each ablation reports link-prediction F1 (Weighted-L2) like Table VII.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin ext_ablations -- --scale tiny
//! ```

use ehna_bench::methods::ehna_config;
use ehna_bench::table::{f4, Table};
use ehna_bench::Args;
use ehna_core::{EhnaConfig, Trainer};
use ehna_datasets::{generate, Dataset};
use ehna_eval::{EdgeOperator, LinkPredictionConfig, LinkPredictionTask};
use ehna_walks::DecayKernel;

fn f1_for(task: &LinkPredictionTask, config: EhnaConfig) -> f64 {
    let mut trainer = Trainer::new(task.train_graph(), config).expect("valid config");
    trainer.train();
    let emb = trainer.into_embeddings();
    task.evaluate(&emb, EdgeOperator::WeightedL2).f1
}

fn main() {
    let args = Args::from_env();
    let base = ehna_config(args.dim, args.seed, args.budget);

    // ---- 1. kernel ablation on the social network -----------------------
    let digg = generate(Dataset::DiggLike, args.scale, args.seed);
    let task = LinkPredictionTask::prepare(
        &digg,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    let span = digg.max_time().delta(digg.min_time());
    let mut t1 = Table::new(["Kernel", "F1 (Weighted-L2)"]);
    for (name, kernel) in [
        ("exponential (paper)", DecayKernel::exponential_for_span(span)),
        ("linear", DecayKernel::Linear { horizon: span / 2.0 }),
        ("uniform (no decay)", DecayKernel::Uniform),
    ] {
        eprintln!("[ext] kernel = {name} ...");
        let cfg = EhnaConfig { kernel: Some(kernel), ..base.clone() };
        t1.row([name.to_string(), f4(f1_for(&task, cfg))]);
    }
    println!("\nAblation 1: decay kernel (digg-like)\n\n{}", t1.render());
    t1.write_tsv(&args.out_file(&format!("ext_kernel_{}.tsv", args.scale))).expect("tsv");

    // ---- 2. objective direction on the bipartite network ----------------
    let tmall = generate(Dataset::TmallLike, args.scale, args.seed);
    let task_t = LinkPredictionTask::prepare(
        &tmall,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    let mut t2 = Table::new(["Objective", "F1 (Weighted-L2)"]);
    for (name, bidirectional) in
        [("unidirectional (Eq. 6)", false), ("bidirectional (Eq. 7)", true)]
    {
        eprintln!("[ext] objective = {name} ...");
        let cfg = EhnaConfig { bidirectional, ..base.clone() };
        t2.row([name.to_string(), f4(f1_for(&task_t, cfg))]);
    }
    println!("\nAblation 2: negative-sampling direction (tmall-like)\n\n{}", t2.render());
    t2.write_tsv(&args.out_file(&format!("ext_bidir_{}.tsv", args.scale))).expect("tsv");

    // ---- 3. dimension sweep on the co-author network --------------------
    let dblp = generate(Dataset::DblpLike, args.scale, args.seed);
    let task_d = LinkPredictionTask::prepare(
        &dblp,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    let mut t3 = Table::new(["d", "F1 (Weighted-L2)", "train s/epoch"]);
    for d in [16usize, 32, 64, 128] {
        eprintln!("[ext] dim = {d} ...");
        let cfg = EhnaConfig { dim: d, ..base.clone() };
        let mut trainer = Trainer::new(task_d.train_graph(), cfg).expect("valid config");
        let report = trainer.train();
        let emb = trainer.into_embeddings();
        let f1 = task_d.evaluate(&emb, EdgeOperator::WeightedL2).f1;
        let per_epoch = report.wall_time.as_secs_f64() / report.epoch_times.len().max(1) as f64;
        t3.row([d.to_string(), f4(f1), format!("{per_epoch:.2}")]);
    }
    println!("\nAblation 3: embedding dimension (dblp-like)\n\n{}", t3.render());
    t3.write_tsv(&args.out_file(&format!("ext_dim_{}.tsv", args.scale))).expect("tsv");
}
