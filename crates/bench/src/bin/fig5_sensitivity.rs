//! Figure 5 — parameter sensitivity of EHNA on the yelp-like dataset.
//!
//! Four sweeps, each reporting the average F1 across the four Table II
//! operators in the link-prediction task (the paper's y-axis):
//! (a) safety margin m ∈ 1..5, (b) walk length l ∈ {1, 5, 10, 15, 20, 25},
//! (c) log2 p ∈ −2..2, (d) log2 q ∈ −2..2.
//!
//! ```text
//! cargo run --release -p ehna-bench --bin fig5_sensitivity -- --scale tiny
//! ```

use ehna_bench::methods::ehna_config;
use ehna_bench::table::{f4, Table};
use ehna_bench::Args;
use ehna_core::{EhnaConfig, Trainer};
use ehna_datasets::{generate, Dataset};
use ehna_eval::operators::ALL_OPERATORS;
use ehna_eval::{LinkPredictionConfig, LinkPredictionTask};

/// Train EHNA with `config` and return the mean F1 across operators.
fn avg_f1(task: &LinkPredictionTask, config: EhnaConfig) -> f64 {
    let mut trainer = Trainer::new(task.train_graph(), config).expect("valid config");
    trainer.train();
    let emb = trainer.into_embeddings();
    let total: f64 = ALL_OPERATORS.iter().map(|&op| task.evaluate(&emb, op).f1).sum();
    total / ALL_OPERATORS.len() as f64
}

fn sweep(name: &str, points: Vec<(String, EhnaConfig)>, task: &LinkPredictionTask, args: &Args) {
    let mut table = Table::new([name, "Avg. F1"]);
    for (label, cfg) in points {
        eprintln!("[fig5] {name} = {label} ...");
        table.row([label, f4(avg_f1(task, cfg))]);
    }
    println!("\nFigure 5: varying {name} (yelp-like, scale '{}')\n", args.scale);
    print!("{}", table.render());
    let slug = name.to_ascii_lowercase().replace(' ', "_");
    let path = args.out_file(&format!("fig5_{}_{}.tsv", slug, args.scale));
    table.write_tsv(&path).expect("write tsv");
    println!("wrote {}", path.display());
}

fn main() {
    let args = Args::from_env();
    let graph = generate(Dataset::YelpLike, args.scale, args.seed);
    let task = LinkPredictionTask::prepare(
        &graph,
        LinkPredictionConfig { seed: args.seed, ..Default::default() },
    );
    let base = ehna_config(args.dim, args.seed, args.budget);

    // (a) safety margin.
    sweep(
        "margin",
        (1..=5).map(|m| (m.to_string(), EhnaConfig { margin: m as f32, ..base.clone() })).collect(),
        &task,
        &args,
    );
    // (b) walk length.
    sweep(
        "walk length",
        [1usize, 5, 10, 15, 20, 25]
            .into_iter()
            .map(|l| (l.to_string(), EhnaConfig { walk_length: l, ..base.clone() }))
            .collect(),
        &task,
        &args,
    );
    // (c) log2 p.
    sweep(
        "log2 p",
        (-2..=2).map(|e| (e.to_string(), EhnaConfig { p: 2f64.powi(e), ..base.clone() })).collect(),
        &task,
        &args,
    );
    // (d) log2 q.
    sweep(
        "log2 q",
        (-2..=2).map(|e| (e.to_string(), EhnaConfig { q: 2f64.powi(e), ..base.clone() })).collect(),
        &task,
        &args,
    );
}
