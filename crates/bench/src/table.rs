//! Aligned console tables + TSV export for the harness binaries.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

/// A simple table: header row plus data rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns for the console.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Write as TSV (tab-separated, header first).
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = File::create(path)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Format a float with 4 decimals (the paper's table precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a percentage with one decimal and sign (error-reduction cells).
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_tsv() {
        let mut t = Table::new(["metric", "LINE", "EHNA"]);
        t.row(["AUC", "0.70", "0.93"]);
        t.row(["F1", "0.65", "0.88"]);
        let s = t.render();
        assert!(s.contains("metric"));
        assert!(s.contains("0.93"));
        assert_eq!(t.len(), 2);

        let dir = std::env::temp_dir().join("ehna_table_test.tsv");
        t.write_tsv(&dir).unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("metric\tLINE\tEHNA"));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(pct(0.126), "+12.6%");
        assert_eq!(pct(-0.031), "-3.1%");
    }
}
