//! Walk-engine throughput: the temporal walk (EHNA's inner loop), the
//! static node2vec walk, and the CTDNE forward walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_datasets::{generate, Dataset, Scale};
use ehna_walks::{
    CtdneConfig, CtdneWalker, Node2VecConfig, Node2VecWalker, TemporalWalkConfig, TemporalWalker,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_walks(c: &mut Criterion) {
    let g = generate(Dataset::DiggLike, Scale::Small, 1);
    let t_ref = g.max_time();
    let starts: Vec<_> = g.nodes().filter(|&v| g.degree(v) > 2).collect();

    let mut group = c.benchmark_group("walks");
    group.bench_function("temporal_walk_l10", |b| {
        let walker = TemporalWalker::new(&g, TemporalWalkConfig::for_graph(&g));
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            let v = starts[i % starts.len()];
            i += 1;
            black_box(walker.walk(v, t_ref, &mut rng).len())
        })
    });
    group.bench_function("node2vec_walk_l80", |b| {
        let walker = Node2VecWalker::new(&g, Node2VecConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0usize;
        b.iter(|| {
            let v = starts[i % starts.len()];
            i += 1;
            black_box(walker.walk(v, &mut rng).len())
        })
    });
    group.bench_function("ctdne_walk_l80", |b| {
        let walker = CtdneWalker::new(&g, CtdneConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut i = 0usize;
        let m = g.num_edges();
        b.iter(|| {
            let e = i % m;
            i += 1;
            black_box(walker.walk_from_edge(e, &mut rng).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
