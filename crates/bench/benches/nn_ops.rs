//! Micro-benchmarks of the autodiff substrate: GEMM kernels, LSTM steps,
//! and a forward+backward round trip at EHNA-typical shapes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_nn::layers::{LstmCell, StackedLstm};
use ehna_nn::{Graph, ParamStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("nn");

    // 256x64 @ 64x256 — the node-level LSTM gate matmul shape.
    let a = rand_vec(256 * 64, &mut rng);
    let b = rand_vec(64 * 256, &mut rng);
    group.bench_function("matmul_256x64x256", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let av = g.constant(256, 64, a.clone());
            let bv = g.constant(64, 256, b.clone());
            black_box(g.matmul(av, bv))
        })
    });

    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "cell", 64, 64, &mut rng);
    let x = rand_vec(256 * 64, &mut rng);
    group.bench_function("lstm_step_b256_d64", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(256, 64, x.clone());
            let h = g.constant(256, 64, vec![0.0; 256 * 64]);
            let (h1, _) = cell.step(&mut g, &store, xv, h, h);
            black_box(h1)
        })
    });

    let mut store2 = ParamStore::new();
    let stack = StackedLstm::new(&mut store2, "s", 64, 64, 2, &mut rng);
    group.bench_function("stacked_lstm_fwd_bwd_seq10_b64", |bch| {
        let steps_data: Vec<Vec<f32>> = (0..10).map(|_| rand_vec(64 * 64, &mut rng)).collect();
        bch.iter(|| {
            let mut g = Graph::new();
            let steps: Vec<_> = steps_data.iter().map(|d| g.constant(64, 64, d.clone())).collect();
            let h = stack.forward_sequence(&mut g, &store2, &steps);
            let sq = g.square(h);
            let loss = g.sum_all(sq);
            g.backward(loss);
            g.write_grads(&mut store2);
            store2.zero_grads();
            black_box(g.num_nodes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
