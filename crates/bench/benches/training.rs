//! Per-variant training-step cost (the Table VII ablations' compute
//! profile): one optimization step on a 32-edge batch for each variant —
//! plus the sync-vs-pipelined epoch comparison behind
//! `results/BENCH_training_pipeline.json` (methodology in the sibling
//! `BENCH_training_pipeline.md`).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ehna_bench::methods::ehna_config;
use ehna_bench::TrainBudget;
use ehna_core::variants::ALL_VARIANTS;
use ehna_core::{EhnaConfig, Trainer, TrainingReport};
use ehna_datasets::{generate, Dataset, Scale};
use ehna_tgraph::{NodeId, TemporalGraph, Timestamp};
use std::time::Duration;

fn bench_training(c: &mut Criterion) {
    let g = generate(Dataset::DblpLike, Scale::Tiny, 1);
    let edges: Vec<(NodeId, NodeId, Timestamp)> =
        g.edges().iter().rev().take(32).map(|e| (e.src, e.dst, e.t)).collect();

    let mut group = c.benchmark_group("training");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for variant in ALL_VARIANTS {
        let cfg = variant.configure(ehna_config(32, 7, TrainBudget::Quick));
        group.bench_function(format!("step_{}", variant.name()), |b| {
            b.iter_batched(
                || Trainer::new(&g, cfg.clone()).expect("valid config"),
                |mut trainer| black_box(trainer.train_batch(&edges, 0)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Walk-sampling threads for the pipeline comparison (the acceptance
/// configuration: `threads >= 4` on the digg-like generator).
const PIPELINE_THREADS: usize = 4;
const PIPELINE_EPOCHS: usize = 3;

fn pipeline_config(depth: usize, epochs: usize) -> EhnaConfig {
    EhnaConfig {
        threads: PIPELINE_THREADS,
        pipeline_depth: depth,
        epochs,
        ..ehna_config(32, 7, TrainBudget::Quick)
    }
}

fn timed_train(g: &TemporalGraph, depth: usize, epochs: usize) -> TrainingReport {
    let mut trainer = Trainer::new(g, pipeline_config(depth, epochs)).expect("valid config");
    trainer.train()
}

fn mean_epoch_secs(report: &TrainingReport) -> f64 {
    report.epoch_times.iter().map(|t| t.as_secs_f64()).sum::<f64>()
        / report.epoch_times.len().max(1) as f64
}

/// One sync-vs-pipelined comparison on `g`: fresh trainer per mode, same
/// seed, losses asserted bit-identical. Returns the JSON fragment for the
/// results file (without the outer braces' shared metadata).
///
/// Accounting: every field is a **per-epoch mean**, and wall-clock is
/// kept apart from thread-local phase time by name. `epoch_wall_s` is
/// elapsed wall-clock per epoch; `sample_thread_s` / `compute_thread_s`
/// are seconds spent inside each phase *on its own thread* — in the
/// pipelined mode the producer samples concurrently with compute, so
/// `sample_thread_s` is hidden time, not wall-clock, and the fields do
/// not sum to `epoch_wall_s`. (An earlier revision wrote per-run phase
/// totals next to a per-epoch wall mean under look-alike names, which
/// made `compute_s` appear ~3x larger than a whole epoch.)
fn compare_modes(g: &TemporalGraph, epochs: usize) -> String {
    let sync = timed_train(g, 0, epochs);
    let piped = timed_train(g, 2, epochs);
    assert_eq!(
        sync.epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        piped.epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "pipelined training diverged from synchronous"
    );
    let (s_epoch, p_epoch) = (mean_epoch_secs(&sync), mean_epoch_secs(&piped));
    let speedup = s_epoch / p_epoch;
    let edges_per_sec = g.num_edges() as f64 / p_epoch;
    let per_epoch = 1.0 / epochs as f64;
    let (s_ph, p_ph) = (sync.total_phase_timings(), piped.total_phase_timings());
    let sample_share = s_ph.sample_time.as_secs_f64()
        / (s_ph.sample_time.as_secs_f64() + s_ph.compute_time.as_secs_f64()).max(1e-12);
    println!(
        "  sync {s_epoch:.3}s/epoch, pipelined {p_epoch:.3}s/epoch, speedup {speedup:.2}x \
         (sync sample share {:.1}%)",
        sample_share * 100.0
    );
    format!(
        "\"nodes\": {}, \"edges\": {}, \"epochs_timed\": {epochs},\n    \
         \"sync\": {{\"epoch_wall_s\": {s_epoch:.6}, \"sample_thread_s\": {:.6}, \
         \"compute_thread_s\": {:.6}}},\n    \
         \"pipelined\": {{\"epoch_wall_s\": {p_epoch:.6}, \"sample_thread_s\": {:.6}, \
         \"compute_thread_s\": {:.6}, \"stall_wall_s\": {:.6}}},\n    \
         \"sync_sample_share\": {sample_share:.4},\n    \
         \"epoch_speedup\": {speedup:.4}, \"pipelined_edges_per_s\": {edges_per_sec:.1},\n    \
         \"bit_identical_losses\": true",
        g.num_nodes(),
        g.num_edges(),
        s_ph.sample_time.as_secs_f64() * per_epoch,
        s_ph.compute_time.as_secs_f64() * per_epoch,
        p_ph.sample_time.as_secs_f64() * per_epoch,
        p_ph.compute_time.as_secs_f64() * per_epoch,
        p_ph.prefetch_stall_time.as_secs_f64() * per_epoch,
    )
}

/// Sync vs pipelined epoch throughput, recorded as a JSON entry so the
/// speedup (and the determinism gate) is tracked over time. The primary
/// entry is the acceptance configuration (digg-like tiny, 4 threads);
/// dblp-like rides along because its denser per-node histories give walk
/// sampling a much larger share of epoch time, which is the regime the
/// prefetcher exists for (see BENCH_training_pipeline.md).
fn bench_pipeline(c: &mut Criterion) {
    // The env override would collapse the sync/pipelined comparison into
    // one mode; the comparison owns the knob here.
    std::env::remove_var("EHNA_PIPELINE_DEPTH");
    let digg = generate(Dataset::DiggLike, Scale::Tiny, 1);

    let mut group = c.benchmark_group("training_pipeline");
    group.sample_size(3).measurement_time(Duration::from_secs(10));
    for depth in [0usize, 2] {
        group.bench_function(format!("epoch_depth{depth}_t{PIPELINE_THREADS}"), |b| {
            b.iter_batched(
                || Trainer::new(&digg, pipeline_config(depth, 1)).expect("valid config"),
                |mut trainer| black_box(trainer.train_epoch()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let oversubscribed = PIPELINE_THREADS > host_cpus;
    if oversubscribed {
        eprintln!(
            "warning: training_pipeline requests {PIPELINE_THREADS} sampling threads on a \
             {host_cpus}-cpu host; workers time-slice cores, so thread counts above \
             host_cpus cannot add throughput here"
        );
    }
    println!("training_pipeline: digg-like tiny ({host_cpus} host cpus)");
    let digg_json = compare_modes(&digg, PIPELINE_EPOCHS);
    let dblp = generate(Dataset::DblpLike, Scale::Tiny, 1);
    println!("training_pipeline: dblp-like tiny");
    let dblp_json = compare_modes(&dblp, 2);

    let json = format!(
        "{{\n  \"bench\": \"training_pipeline\",\n  \"dataset\": \"digg-like\",\n  \
         \"scale\": \"tiny\",\n  \"threads\": {PIPELINE_THREADS},\n  \"pipeline_depth\": 2,\n  \
         \"host_cpus\": {host_cpus},\n  \"threads_oversubscribed\": {oversubscribed},\n  \
         {digg_json},\n  \
         \"secondary\": {{\n    \"dataset\": \"dblp-like\", \"scale\": \"tiny\",\n    \
         {dblp_json}\n  }}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_training_pipeline.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

criterion_group!(benches, bench_training, bench_pipeline);
criterion_main!(benches);
