//! Per-variant training-step cost (the Table VII ablations' compute
//! profile): one optimization step on a 32-edge batch for each variant.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ehna_bench::methods::ehna_config;
use ehna_bench::TrainBudget;
use ehna_core::variants::ALL_VARIANTS;
use ehna_core::Trainer;
use ehna_datasets::{generate, Dataset, Scale};
use ehna_tgraph::{NodeId, Timestamp};
use std::time::Duration;

fn bench_training(c: &mut Criterion) {
    let g = generate(Dataset::DblpLike, Scale::Tiny, 1);
    let edges: Vec<(NodeId, NodeId, Timestamp)> =
        g.edges().iter().rev().take(32).map(|e| (e.src, e.dst, e.t)).collect();

    let mut group = c.benchmark_group("training");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for variant in ALL_VARIANTS {
        let cfg = variant.configure(ehna_config(32, 7, TrainBudget::Quick));
        group.bench_function(format!("step_{}", variant.name()), |b| {
            b.iter_batched(
                || Trainer::new(&g, cfg.clone()).expect("valid config"),
                |mut trainer| black_box(trainer.train_batch(&edges, 0)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
