//! Router scatter-gather overhead on a 100k-node table: queries/s and
//! p50/p99 latency for a standalone server vs 2-shard and 4-shard
//! clusters (brute-force and shard-local IVF), plus the router's
//! version-keyed answer cache cold vs warm — all answering the same
//! JSON knn requests over TCP. Writes `results/BENCH_router.json`
//! (methodology in the sibling `BENCH_router.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use ehna_cluster::{plan_shards, Router, RouterConfig, ShardConfig, ShardServer};
use ehna_serve::{
    BruteForceIndex, EmbeddingStore, EngineConfig, IvfConfig, IvfIndex, KnnIndex, QueryEngine,
    RequestLimits, Server, ServerConfig,
};
use ehna_tgraph::NodeEmbeddings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 100_000;
const DIM: usize = 16;
const K: usize = 10;
const WARMUP: usize = 20;
const QUERIES: usize = 300;

fn big_table() -> NodeEmbeddings {
    let mut rng = StdRng::seed_from_u64(0xEC_7A);
    let data: Vec<f32> = (0..N * DIM).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
    NodeEmbeddings::from_vec(DIM, data)
}

fn engine_mem(emb: NodeEmbeddings) -> Arc<QueryEngine> {
    let store = Arc::new(EmbeddingStore::new(emb, None).expect("store"));
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

fn engine_file(snap: &Path, names: &Path, ivf: bool) -> Arc<QueryEngine> {
    let store = Arc::new(
        EmbeddingStore::open(snap.to_str().unwrap(), Some(names.to_str().unwrap()))
            .expect("shard store"),
    );
    let index: Box<dyn KnnIndex> = if ivf {
        Box::new(IvfIndex::build(Arc::clone(&store), IvfConfig::default()))
    } else {
        Box::new(BruteForceIndex::new(Arc::clone(&store)))
    };
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

struct Measured {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One persistent connection, sequential request/response; per-request
/// wall-clock gives the latency distribution, total time gives qps.
/// Node keys draw uniformly from `0..pool`: `pool == N` makes repeats
/// vanishingly rare (a cache-cold workload), a small pool makes the
/// warmup phase populate the router's answer cache so the timed phase
/// measures warm hits.
fn measure(addr: SocketAddr, pool: usize) -> Measured {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut w = BufWriter::new(stream.try_clone().expect("clone"));
    let mut r = BufReader::new(stream);
    let mut rng = StdRng::seed_from_u64(0x9E_11);
    let mut ask = |node: usize| -> Duration {
        let start = Instant::now();
        writeln!(w, r#"{{"op":"knn","node":"{node}","k":{K}}}"#).expect("write");
        w.flush().expect("flush");
        let mut line = String::new();
        r.read_line(&mut line).expect("read");
        assert!(line.contains(r#""ok":true"#), "bad response: {line}");
        start.elapsed()
    };
    // Warm every node in a small pool at least once so a cache-backed
    // target answers the timed phase entirely from its cache.
    for i in 0..WARMUP.max(pool.min(N)) {
        ask(if pool < N { i % pool } else { rng.gen_range(0..N) });
    }
    let mut lat = Vec::with_capacity(QUERIES);
    let begin = Instant::now();
    for _ in 0..QUERIES {
        lat.push(ask(rng.gen_range(0..pool)));
    }
    let total = begin.elapsed();
    lat.sort();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize].as_secs_f64() * 1e3;
    Measured { qps: QUERIES as f64 / total.as_secs_f64(), p50_ms: pct(0.50), p99_ms: pct(0.99) }
}

fn json_entry(label: &str, m: &Measured) -> String {
    format!(
        "\"{label}\": {{\"queries_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        m.qps, m.p50_ms, m.p99_ms
    )
}

fn bench_router(c: &mut Criterion) {
    let emb = big_table();
    let dir = std::env::temp_dir().join("ehna_bench_router");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");

    // Standalone oracle: one engine over the unsplit table.
    let standalone =
        Server::bind_with("127.0.0.1:0", engine_mem(emb.clone()), ServerConfig::default())
            .expect("bind standalone")
            .spawn()
            .expect("spawn standalone");
    println!("router bench: measuring standalone ({N} nodes, dim {DIM})");
    let base = measure(standalone.addr(), N);
    println!(
        "  standalone: {:.1} q/s, p50 {:.3} ms, p99 {:.3} ms",
        base.qps, base.p50_ms, base.p99_ms
    );

    let mut entries = vec![json_entry("standalone", &base)];
    // (label, shards, ivf shards, router cache entries, node pool).
    // pool == N is cache-cold (repeats are vanishingly rare in 100k);
    // the small pool makes every timed query a warm cache hit.
    let configs: [(&str, u32, bool, usize, usize); 5] = [
        ("shards_2", 2, false, 0, N),
        ("shards_4", 4, false, 0, N),
        ("shards_4_ivf", 4, true, 0, N),
        ("shards_2_cache_cold", 2, false, 1024, N),
        ("shards_2_cache_warm", 2, false, 1024, 64),
    ];
    for (label, shards, ivf, cache, pool) in configs {
        let shard_dir = dir.join(format!("s{shards}"));
        let manifest = if shard_dir.exists() {
            ehna_cluster::ClusterManifest::load(&shard_dir).expect("manifest")
        } else {
            std::fs::create_dir_all(&shard_dir).expect("shard dir");
            plan_shards(&emb, None, shards, &shard_dir).expect("plan")
        };
        let mut replicas = Vec::new();
        let mut teardown = Vec::new();
        for (i, entry) in manifest.shards.iter().enumerate() {
            let shard = ShardServer::bind(
                "127.0.0.1:0",
                engine_file(&shard_dir.join(&entry.snapshot), &shard_dir.join(&entry.names), ivf),
                RequestLimits::default(),
                None,
                ShardConfig { shard_id: i as u32, ..Default::default() },
            )
            .expect("bind shard");
            replicas.push(vec![shard.local_addr().expect("addr")]);
            teardown.push(shard.spawn().expect("spawn shard"));
        }
        let router = Router::new(
            manifest,
            replicas,
            RequestLimits::default(),
            RouterConfig {
                probe_interval: Duration::ZERO,
                cache_capacity: cache,
                ..Default::default()
            },
        )
        .expect("router");
        let front =
            Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
                .expect("bind router")
                .spawn()
                .expect("spawn router");
        println!("router bench: measuring {label}");
        let m = measure(front.addr(), pool);
        println!("  {label}: {:.1} q/s, p50 {:.3} ms, p99 {:.3} ms", m.qps, m.p50_ms, m.p99_ms);
        entries.push(json_entry(label, &m));
        front.shutdown();
        for h in teardown {
            h.shutdown();
        }
    }
    standalone.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"router_scatter_gather\",\n  \"nodes\": {N}, \"dim\": {DIM}, \
         \"k\": {K},\n  \"queries\": {QUERIES}, \"warmup\": {WARMUP},\n  \
         \"host_cpus\": {host_cpus},\n  {}\n}}\n",
        entries.join(",\n  ")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_router.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    // A light criterion group so the harness has a registered benchmark.
    let engine = engine_mem(big_table());
    let mut group = c.benchmark_group("router_components");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let mut probe = 0usize;
    group.bench_function("standalone_knn_inproc", |b| {
        b.iter(|| {
            probe = (probe + 7919) % N;
            criterion::black_box(
                ehna_serve::handle_line(
                    &engine,
                    &RequestLimits::default(),
                    &format!(r#"{{"op":"knn","node":"{probe}","k":{K}}}"#),
                )
                .to_string(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
