//! Baseline training throughput: SGNS updates, LINE edge samples, HTNE
//! events — the per-epoch cost components behind Table VIII.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_baselines::{Ctdne, EmbeddingMethod, Htne, Line, Node2Vec, SkipGramConfig};
use ehna_datasets::{generate, Dataset, Scale};
use ehna_walks::{CtdneConfig, Node2VecConfig};

fn bench_baselines(c: &mut Criterion) {
    let g = generate(Dataset::YelpLike, Scale::Tiny, 1);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    group.bench_function("node2vec_embed", |b| {
        let m = Node2Vec {
            walks: Node2VecConfig { length: 20, walks_per_node: 2, ..Default::default() },
            sgns: SkipGramConfig { dim: 32, epochs: 1, ..Default::default() },
            threads: 1,
        };
        b.iter(|| black_box(m.embed(&g, 1).num_nodes()))
    });
    group.bench_function("ctdne_embed", |b| {
        let m = Ctdne {
            walks: CtdneConfig { length: 20, ..Default::default() },
            walks_per_node: 2,
            sgns: SkipGramConfig { dim: 32, epochs: 1, ..Default::default() },
            threads: 1,
        };
        b.iter(|| black_box(m.embed(&g, 1).num_nodes()))
    });
    group.bench_function("line_embed", |b| {
        let m = Line { dim: 32, samples_per_edge: 5, ..Default::default() };
        b.iter(|| black_box(m.embed(&g, 1).num_nodes()))
    });
    group.bench_function("htne_embed", |b| {
        let m = Htne { dim: 32, epochs: 1, ..Default::default() };
        b.iter(|| black_box(m.embed(&g, 1).num_nodes()))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
