//! Micro-benchmarks of the temporal-graph substrate: the historical
//! queries (`neighbors_before`, `has_edge`) that dominate walk sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_datasets::{generate, Dataset, Scale};
use ehna_tgraph::{NodeId, Timestamp};

fn bench_graph(c: &mut Criterion) {
    let g = generate(Dataset::DiggLike, Scale::Small, 1);
    let mid = Timestamp((g.min_time().raw() + g.max_time().raw()) / 2);
    let nodes: Vec<NodeId> = g.nodes().filter(|&v| g.degree(v) > 0).collect();

    let mut group = c.benchmark_group("tgraph");
    group.bench_function("neighbors_before", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let v = nodes[i % nodes.len()];
            i += 1;
            black_box(g.neighbors_before(v, mid).len())
        })
    });
    group.bench_function("has_edge", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = nodes[i % nodes.len()];
            let bb = nodes[(i * 7 + 1) % nodes.len()];
            i += 1;
            black_box(g.has_edge(a, bb))
        })
    });
    group.bench_function("subgraph_before", |b| {
        b.iter(|| black_box(g.subgraph_before(mid).map(|h| h.num_edges())))
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
