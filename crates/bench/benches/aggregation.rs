//! The EHNA aggregation: one training step (forward + backward + update)
//! and one inference batch, at harness-default shapes (d=32, k=5, l=5).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ehna_bench::methods::ehna_config;
use ehna_bench::TrainBudget;
use ehna_core::Trainer;
use ehna_datasets::{generate, Dataset, Scale};
use ehna_tgraph::{NodeId, Timestamp};
use std::time::Duration;

fn bench_aggregation(c: &mut Criterion) {
    let g = generate(Dataset::DiggLike, Scale::Tiny, 1);
    let cfg = ehna_config(32, 7, TrainBudget::Quick);

    // A fixed batch of late edges (rich history).
    let edges: Vec<(NodeId, NodeId, Timestamp)> =
        g.edges().iter().rev().take(32).map(|e| (e.src, e.dst, e.t)).collect();
    let infer_targets: Vec<(NodeId, Timestamp)> = edges.iter().map(|&(x, _, t)| (x, t)).collect();

    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("train_batch_32edges_k5_l5_d32", |b| {
        b.iter_batched(
            || Trainer::new(&g, cfg.clone()).expect("valid config"),
            |mut trainer| black_box(trainer.train_batch(&edges, 0)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("inference_batch_32targets", |b| {
        let mut trainer = Trainer::new(&g, cfg.clone()).expect("valid config");
        trainer.train_batch(&edges, 0); // seed BN running stats
        b.iter(|| black_box(trainer.aggregate_targets(&infer_targets, false).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
