//! Micro-benchmarks of the fused training kernels at EHNA-typical
//! shapes: the three GEMM variants the tape emits (forward, dX, dW), the
//! fused LSTM gate block, softmax rows, and batch-norm. The vendored
//! criterion harness has no `Throughput` support, so a manual GFLOP/s
//! table is printed alongside the criterion timings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_nn::kernels::{
    batchnorm_train_forward, gemm_acc, gemm_nt_acc, gemm_tn_acc, lstm_step_backward,
    lstm_step_forward, softmax_rows_forward,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Time `f` over enough iterations to fill ~0.2s and return seconds/iter.
fn secs_per_iter(mut f: impl FnMut()) -> f64 {
    // Warm up and estimate.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.2 / once) as usize).clamp(1, 10_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// GEMM shapes the EHNA forward/backward actually runs: (batch·window)
/// rows through d=64 LSTM gates, plus a long-batch gradient accumulation
/// that crosses the TN chunking threshold.
const GEMM_SHAPES: [(usize, usize, usize); 3] = [(256, 64, 256), (64, 256, 64), (512, 64, 256)];

fn flops_table() {
    let mut rng = StdRng::seed_from_u64(7);
    println!("kernel GFLOP/s (single thread unless noted):");
    for (m, k, n) in GEMM_SHAPES {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let bt = rand_vec(n * k, &mut rng);
        let at = rand_vec(k * m, &mut rng);
        let mut c = vec![0.0f32; m * n];
        let flop = (2 * m * k * n) as f64;
        let s = secs_per_iter(|| gemm_acc(m, k, n, &a, &b, &mut c));
        println!("  gemm_acc    {m}x{k}x{n}: {:8.2} GFLOP/s", flop / s / 1e9);
        let s = secs_per_iter(|| gemm_nt_acc(m, k, n, &a, &bt, &mut c));
        println!("  gemm_nt_acc {m}x{k}x{n}: {:8.2} GFLOP/s", flop / s / 1e9);
        let s = secs_per_iter(|| gemm_tn_acc(m, k, n, &at, &b, &mut c));
        println!("  gemm_tn_acc {m}x{k}x{n}: {:8.2} GFLOP/s", flop / s / 1e9);
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("kernels");

    for (m, k, n) in GEMM_SHAPES {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let bt = rand_vec(n * k, &mut rng);
        let at = rand_vec(k * m, &mut rng);
        let mut cbuf = vec![0.0f32; m * n];
        group.bench_function(format!("gemm_acc_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                gemm_acc(m, k, n, &a, &b, &mut cbuf);
                black_box(cbuf[0])
            })
        });
        let mut cbuf2 = vec![0.0f32; m * n];
        group.bench_function(format!("gemm_nt_acc_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                gemm_nt_acc(m, k, n, &a, &bt, &mut cbuf2);
                black_box(cbuf2[0])
            })
        });
        let mut cbuf3 = vec![0.0f32; m * n];
        group.bench_function(format!("gemm_tn_acc_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                gemm_tn_acc(m, k, n, &at, &b, &mut cbuf3);
                black_box(cbuf3[0])
            })
        });
    }

    // Fused LSTM gate block, forward + backward, b=256 h=64.
    let (b, h) = (256usize, 64usize);
    let pre = rand_vec(b * 4 * h, &mut rng);
    let c_prev = rand_vec(b * h, &mut rng);
    let mut hc = vec![0.0f32; b * 2 * h];
    let mut aux = vec![0.0f32; b * 5 * h];
    group.bench_function("lstm_step_fwd_b256_h64", |bch| {
        bch.iter(|| {
            lstm_step_forward(b, h, &pre, &c_prev, &mut hc, &mut aux);
            black_box(hc[0])
        })
    });
    lstm_step_forward(b, h, &pre, &c_prev, &mut hc, &mut aux);
    let g_out = rand_vec(b * 2 * h, &mut rng);
    let mut dpre = vec![0.0f32; b * 4 * h];
    let mut dcp = vec![0.0f32; b * h];
    group.bench_function("lstm_step_bwd_b256_h64", |bch| {
        bch.iter(|| {
            lstm_step_backward(b, h, &aux, &c_prev, &g_out, &mut dpre, &mut dcp);
            black_box(dpre[0])
        })
    });

    // Fused softmax and batch-norm rows at attention-pool width.
    let (m, n) = (256usize, 64usize);
    let x = rand_vec(m * n, &mut rng);
    let mut y = vec![0.0f32; m * n];
    group.bench_function("softmax_rows_256x64", |bch| {
        bch.iter(|| {
            softmax_rows_forward(m, n, &x, &mut y);
            black_box(y[0])
        })
    });
    let gamma = rand_vec(n, &mut rng);
    let beta = rand_vec(n, &mut rng);
    let mut bn_out = vec![0.0f32; m * n];
    let mut bn_aux = vec![0.0f32; m * n + 3 * n];
    group.bench_function("batchnorm_train_fwd_256x64", |bch| {
        bch.iter(|| {
            batchnorm_train_forward(m, n, 1e-5, &x, &gamma, &beta, &mut bn_out, &mut bn_aux);
            black_box(bn_out[0])
        })
    });

    group.finish();
    flops_table();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
