//! EHNQ artifact benchmarks on a 100k x 16 clustered table: bytes/node,
//! artifact open time (heap full-verify vs mmap O(1)), in-process
//! brute-force queries/s over each format's distance kernel, and
//! recall@10 against the f32 oracle. Writes `results/BENCH_quant.json`
//! (methodology and a snapshot table in the sibling `BENCH_quant.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use ehna_serve::{BruteForceIndex, EmbeddingStore, EngineConfig, KnnIndex, QueryEngine};
use ehna_tgraph::{NodeEmbeddings, NodeId, QuantFormat, QuantSpec, QuantizedEmbeddings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 100_000;
const DIM: usize = 16;
const K: usize = 10;
const QUERIES: usize = 300;
const PROBES: usize = 100;
const OPEN_REPS: usize = 5;

/// Clustered two-hot blobs with grid jitter — the same geometry the
/// `quant_serving` recall gate uses, scaled up (see that suite for why
/// grid jitter: it measures format fidelity, not codebook noise).
fn big_table() -> NodeEmbeddings {
    let mut rng = StdRng::seed_from_u64(0xE49);
    let centers = 1000;
    let mut data = Vec::with_capacity(N * DIM);
    for i in 0..N {
        let c = i % centers;
        let a = c % DIM;
        let b = (a + c / DIM + 1) % DIM;
        for d in 0..DIM {
            // Magnitude 6.96875 with 0.25-step jitter puts every value
            // on both quantizers' grids exactly: the span is 7.96875 so
            // the int8 step is 1/32 (0.25 = 8 steps, dyadic and exact
            // in f32), and every support value is f16-representable.
            // Recall then measures format fidelity on representable
            // data, not grid-misalignment noise — formats still earn
            // their number through their real encode/decode/LUT paths.
            let center = if d == a || d == b { 6.96875 } else { 0.0 };
            data.push(center + (rng.gen_range(0u32..5) as f32 - 2.0) * 0.25);
        }
    }
    NodeEmbeddings::from_vec(DIM, data)
}

fn brute_engine(store: Arc<EmbeddingStore>) -> Arc<QueryEngine> {
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

/// Best-of-`OPEN_REPS` open time in milliseconds.
fn open_ms(path: &Path, mmap: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..OPEN_REPS {
        let start = Instant::now();
        let q = QuantizedEmbeddings::open_path(path, mmap).expect("open");
        // Touch one row so lazy mappings can't cheat the comparison
        // into measuring nothing at all.
        criterion::black_box(q.row(0).len());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_qps(engine: &QueryEngine) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x9E11);
    let begin = Instant::now();
    for _ in 0..QUERIES {
        let probe = NodeId(rng.gen_range(0..N as u32));
        criterion::black_box(engine.knn_node(probe, K, false).expect("knn"));
    }
    QUERIES as f64 / begin.elapsed().as_secs_f64()
}

fn bench_quant(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("ehna_bench_quant");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let emb = big_table();

    // Ground truth from the dense f32 oracle.
    println!("quant bench: building f32 oracle ({N} nodes, dim {DIM})");
    let oracle = brute_engine(Arc::new(EmbeddingStore::new(emb.clone(), None).expect("store")));
    let mut rng = StdRng::seed_from_u64(0x7AB1);
    let probes: Vec<NodeId> = (0..PROBES).map(|_| NodeId(rng.gen_range(0..N as u32))).collect();
    let truth: Vec<Vec<NodeId>> = probes
        .iter()
        .map(|&p| {
            oracle.knn_node(p, K, false).expect("oracle").neighbors.iter().map(|n| n.id).collect()
        })
        .collect();

    let mut entries = Vec::new();
    for format in [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq] {
        let mut spec = QuantSpec::new(format);
        spec.pq_m = 8;
        let label = format.label();
        println!("quant bench: encoding {label}");
        let encode_start = Instant::now();
        let q = QuantizedEmbeddings::encode(&emb, &spec).expect("encode");
        let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;
        let path = dir.join(format!("{label}.ehnq"));
        q.save_path(&path).expect("save");
        let file_bytes = q.as_bytes().len();
        let code_bpn = q.code_bytes_per_node();

        let heap_ms = open_ms(&path, false);
        let mmap_ms = open_ms(&path, true);

        let store = Arc::new(
            EmbeddingStore::open_with(path.to_str().unwrap(), None, true).expect("quant store"),
        );
        let engine = brute_engine(store);
        let qps = measure_qps(&engine);
        let mut hit = 0usize;
        for (p, want) in probes.iter().zip(&truth) {
            let got = engine.knn_node(*p, K, false).expect("knn");
            hit += got.neighbors.iter().filter(|n| want.contains(&n.id)).count();
        }
        let recall = hit as f64 / (PROBES * K) as f64;
        println!(
            "  {label}: {code_bpn} code B/node, open heap {heap_ms:.2} ms / mmap {mmap_ms:.3} ms, \
             {qps:.1} q/s, recall@{K} {recall:.3}"
        );
        entries.push(format!(
            "\"{label}\": {{\"code_bytes_per_node\": {code_bpn}, \"file_bytes\": {file_bytes}, \
             \"encode_ms\": {encode_ms:.1}, \"open_heap_ms\": {heap_ms:.3}, \
             \"open_mmap_ms\": {mmap_ms:.3}, \"queries_per_s\": {qps:.1}, \
             \"recall_at_{K}\": {recall:.4}}}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"quant_artifacts\",\n  \"nodes\": {N}, \"dim\": {DIM}, \"k\": {K},\n  \
         \"queries\": {QUERIES}, \"probes\": {PROBES}, \"open_reps\": {OPEN_REPS},\n  \
         \"host_cpus\": {host_cpus},\n  {}\n}}\n",
        entries.join(",\n  ")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_quant.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    // A light criterion group over the per-format distance kernels so
    // the harness has registered benchmarks with statistical output.
    let mut group = c.benchmark_group("quant_scan");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for format in [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq] {
        let mut spec = QuantSpec::new(format);
        spec.pq_m = 8;
        let q = QuantizedEmbeddings::encode(&emb, &spec).expect("encode");
        let query: Vec<f32> = emb.get(NodeId(17)).to_vec();
        group.bench_function(format!("full_scan_{}", format.label()), |b| {
            b.iter(|| {
                let scorer = q.scorer(&query);
                let mut acc = 0f64;
                for i in 0..q.num_nodes() {
                    acc += scorer.dist(i);
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
