//! Serving-path benchmarks: brute-force vs IVF top-k search on snapshots
//! at the two scales the issue calls out (10k and 100k nodes), plus the
//! IVF build cost so the index's amortization point is visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehna_serve::{BruteForceIndex, EmbeddingStore, IvfConfig, IvfIndex, KnnIndex};
use ehna_tgraph::{NodeEmbeddings, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DIM: usize = 64;
const K: usize = 10;

/// Clustered points, the shape trained embeddings actually take.
fn clustered_store(n: usize, blobs: usize, seed: u64) -> Arc<EmbeddingStore> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> =
        (0..blobs).map(|_| (0..DIM).map(|_| rng.gen_range(-8.0f32..8.0)).collect()).collect();
    let mut data = Vec::with_capacity(n * DIM);
    for v in 0..n {
        let c = &centers[v % blobs];
        data.extend(c.iter().map(|x| x + rng.gen_range(-0.5f32..0.5)));
    }
    Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(DIM, data), None).expect("store"))
}

fn bench_knn(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let store = clustered_store(n, 128, 0xBE_7C);
        let brute = BruteForceIndex::new(Arc::clone(&store));
        let ivf = IvfIndex::build(Arc::clone(&store), IvfConfig::default());

        let mut group = c.benchmark_group(format!("knn_{}k", n / 1000));
        group.sample_size(10);
        let mut probe = 0u32;
        group.bench_function("brute", |b| {
            b.iter(|| {
                probe = (probe + 7919) % n as u32;
                let q = store.row(NodeId(probe)).unwrap();
                black_box(brute.search(&q, K))
            })
        });
        group.bench_function("ivf", |b| {
            b.iter(|| {
                probe = (probe + 7919) % n as u32;
                let q = store.row(NodeId(probe)).unwrap();
                black_box(ivf.search(&q, K))
            })
        });
        group.finish();
    }
}

fn bench_build(c: &mut Criterion) {
    let store = clustered_store(10_000, 128, 0xBE_7C);
    let mut group = c.benchmark_group("ivf_build_10k");
    group.sample_size(10);
    group.bench_function("default", |b| {
        b.iter(|| black_box(IvfIndex::build(Arc::clone(&store), IvfConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build);
criterion_main!(benches);
