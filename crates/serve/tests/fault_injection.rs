//! Fault injection against the hardened TCP server: hostile, slow, and
//! bursty clients must degrade into structured errors or timely
//! disconnects — never a hang, a panic, a leaked thread, or unbounded
//! memory.
//!
//! Each test builds a private server on an ephemeral port with limits
//! tightened so misbehavior trips quickly, then checks both the wire
//! behavior and the telemetry (`rejected` / `timeouts` / `overloads`).

use ehna_serve::{
    query_lines, query_lines_timeout, BruteForceIndex, EmbeddingStore, EngineConfig, Json,
    QueryEngine, Server, ServerConfig, ServerHandle,
};
use ehna_tgraph::NodeEmbeddings;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small anonymous store: nodes are addressed by decimal id.
fn engine(nodes: usize) -> Arc<QueryEngine> {
    let dim = 4;
    let data: Vec<f32> = (0..nodes * dim).map(|i| (i % 17) as f32 * 0.25).collect();
    let store = Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(dim, data), None).unwrap());
    let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
}

fn spawn(engine: &Arc<QueryEngine>, config: ServerConfig) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", Arc::clone(engine), config).unwrap().spawn().unwrap()
}

/// Poll `cond` until it holds or `deadline` elapses.
fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn slow_loris_client_is_cut_off() {
    let e = engine(16);
    let handle = spawn(
        &e,
        ServerConfig { read_timeout: Duration::from_millis(150), ..ServerConfig::default() },
    );

    // Trickle a request prefix, then stall past the read timeout.
    let mut attacker = TcpStream::connect(handle.addr()).unwrap();
    attacker.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    attacker.write_all(b"{\"op\":").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _ = attacker.write_all(b"\"pi"); // still no newline
    std::thread::sleep(Duration::from_millis(400)); // > read_timeout

    // The server must have dropped us: the read half sees EOF or a
    // reset, never a 3-second block on a connection it gave up on.
    let mut buf = [0u8; 64];
    match attacker.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server answered a half-request with {n} bytes"),
    }
    assert!(
        eventually(Duration::from_secs(2), || e.stats().timeouts >= 1),
        "slow-loris drop was not counted: {:?}",
        e.stats()
    );

    // A well-behaved client is still served.
    let resp = query_lines(handle.addr(), &[r#"{"op":"ping"}"#.to_string()]).unwrap();
    assert_eq!(Json::parse(&resp[0]).unwrap().get("ok"), Some(&Json::Bool(true)));
    handle.shutdown();
}

#[test]
fn ten_megabyte_line_is_rejected_without_buffering_it() {
    let e = engine(16);
    // Default cap is 1 MiB; the attacker sends 10 MiB with no newline.
    let handle = spawn(&e, ServerConfig::default());

    let mut attacker = TcpStream::connect(handle.addr()).unwrap();
    attacker.set_write_timeout(Some(Duration::from_secs(1))).unwrap();
    attacker.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent < 10 * 1024 * 1024 {
        // Once the server trips the cap it stops reading and closes, so
        // later writes legitimately fail; the attack just keeps pushing.
        match attacker.write(&chunk) {
            Ok(n) => sent += n,
            Err(_) => break,
        }
    }

    // Either the structured over-length error arrives, or the socket is
    // already torn down — both are a bounded-memory refusal.
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match attacker.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
        }
    }
    if !response.is_empty() {
        let line = String::from_utf8_lossy(&response);
        let resp = Json::parse(line.trim_end()).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("exceeds"));
    }
    assert!(
        eventually(Duration::from_secs(2), || e.stats().rejected >= 1),
        "oversized line was not counted as rejected: {:?}",
        e.stats()
    );

    let resp =
        query_lines(handle.addr(), &[r#"{"op":"knn","node":"3","k":2}"#.to_string()]).unwrap();
    assert_eq!(Json::parse(&resp[0]).unwrap().get("ok"), Some(&Json::Bool(true)));
    handle.shutdown();
}

#[test]
fn connection_flood_is_shed_with_structured_overload() {
    let e = engine(16);
    let handle = spawn(
        &e,
        ServerConfig {
            conn_workers: 2,
            max_connections: 4,
            read_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    );

    // 32 idle connections: the first 4 are admitted (and held), every
    // later arrival must be shed with the overload response.
    let flood: Vec<TcpStream> =
        (0..32).map(|_| TcpStream::connect(handle.addr()).unwrap()).collect();
    // Let the accept loop classify all of them.
    assert!(
        eventually(Duration::from_secs(3), || e.stats().overloads >= 28),
        "flood not shed: {:?}",
        e.stats()
    );

    let mut overloaded = 0usize;
    let mut silent = 0usize;
    for conn in &flood {
        conn.set_read_timeout(Some(Duration::from_millis(250))).unwrap();
        let mut line = String::new();
        let mut reader = std::io::BufReader::new(conn);
        match std::io::BufRead::read_line(&mut reader, &mut line) {
            Ok(n) if n > 0 => {
                let resp = Json::parse(line.trim_end()).unwrap();
                assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
                assert_eq!(resp.get("error").and_then(Json::as_str), Some("overloaded"));
                overloaded += 1;
            }
            // Admitted-and-held connections see our read timeout; shed
            // ones may also surface as a bare close.
            _ => silent += 1,
        }
    }
    assert_eq!(overloaded, 28, "expected exactly the beyond-cap arrivals shed ({silent} silent)");
    assert_eq!(e.stats().overloads, 28);

    // Releasing the flood frees capacity; a fresh client gets served.
    drop(flood);
    assert!(
        eventually(Duration::from_secs(3), || {
            query_lines_timeout(
                handle.addr(),
                &[r#"{"op":"ping"}"#.to_string()],
                Duration::from_millis(500),
            )
            .is_ok()
        }),
        "server did not recover after the flood drained"
    );
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_is_harmless() {
    let e = engine(16);
    let handle = spawn(&e, ServerConfig::default());

    for _ in 0..5 {
        let mut quitter = TcpStream::connect(handle.addr()).unwrap();
        quitter.write_all(b"{\"op\":\"knn\",\"node\":").unwrap(); // no newline
        drop(quitter); // vanish mid-request
    }

    // Partial trailing lines are discarded, not parsed: nothing is
    // rejected, and the server keeps answering.
    let resp = query_lines(
        handle.addr(),
        &[r#"{"op":"ping"}"#.to_string(), r#"{"op":"knn","node":"0","k":3}"#.to_string()],
    )
    .unwrap();
    assert_eq!(Json::parse(&resp[1]).unwrap().get("ok"), Some(&Json::Bool(true)));
    assert_eq!(e.stats().rejected, 0);
    handle.shutdown();
}

#[test]
fn shutdown_under_load_respects_drain_deadline() {
    let e = engine(32);
    let handle = spawn(
        &e,
        ServerConfig {
            conn_workers: 4,
            drain_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let req = format!(r#"{{"op":"knn","node":"{}","k":3}}"#, i % 32);
                while !stop.load(Ordering::Relaxed) {
                    // During shutdown these fail with overload/EOF/timeout;
                    // the load generator only cares that it never blocks.
                    let _ = query_lines_timeout(
                        addr,
                        std::slice::from_ref(&req),
                        Duration::from_millis(500),
                    );
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(200)); // let traffic build
    let started = Instant::now();
    handle.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "shutdown under load took {elapsed:?}, past the 500ms drain deadline plus slack"
    );

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    assert!(e.stats().requests > 0, "load generator never got through");
}

#[test]
fn sixteen_clients_hammer_and_stats_reconcile() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 25;
    let e = engine(64);
    let handle =
        spawn(&e, ServerConfig { conn_workers: 8, max_connections: 64, ..ServerConfig::default() });
    let addr = handle.addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let requests: Vec<String> = (0..PER_CLIENT)
                    .map(|i| {
                        if i % 5 == 0 {
                            // Deliberately invalid: k=0 must be rejected.
                            format!(r#"{{"op":"knn","node":"{}","k":0}}"#, (t + i) % 64)
                        } else {
                            format!(
                                r#"{{"op":"knn","node":"{}","k":{}}}"#,
                                (t * 7 + i) % 64,
                                1 + i % 5
                            )
                        }
                    })
                    .collect();
                let responses = query_lines(addr, &requests).unwrap();
                assert_eq!(responses.len(), PER_CLIENT);
                let mut oks = 0usize;
                for (req, line) in requests.iter().zip(&responses) {
                    let resp = Json::parse(line)
                        .unwrap_or_else(|err| panic!("unparseable response to {req}: {err}"));
                    match resp.get("ok") {
                        Some(&Json::Bool(true)) => oks += 1,
                        Some(&Json::Bool(false)) => {
                            assert!(resp.get("error").is_some(), "failure without error: {line}");
                        }
                        other => panic!("response missing 'ok': {other:?}"),
                    }
                }
                oks
            })
        })
        .collect();
    let served: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();

    let invalid = CLIENTS * PER_CLIENT.div_ceil(5);
    assert_eq!(served, CLIENTS * PER_CLIENT - invalid, "an in-limit request failed");
    let snap = e.stats();
    assert_eq!(snap.requests, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.rejected, invalid as u64);
    assert_eq!(
        snap.requests,
        snap.cache_hits + snap.cache_misses + snap.rejected,
        "stats do not reconcile: {snap:?}"
    );
    assert_eq!(snap.timeouts, 0);
    assert_eq!(snap.overloads, 0);

    // The wire-level stats op reports the same reconciled counters.
    let resp = query_lines(addr, &[r#"{"op":"stats"}"#.to_string()]).unwrap();
    let stats = Json::parse(&resp[0]).unwrap();
    let field = |name: &str| stats.get(name).and_then(Json::as_usize).unwrap();
    assert_eq!(field("requests"), field("cache_hits") + field("cache_misses") + field("rejected"));
    handle.shutdown();
}

#[test]
fn reload_under_query_load_never_breaks_a_response() {
    // 16 clients hammer knn/score/stats while the snapshot is hot-swapped
    // three times. Every response must be well-formed line JSON with an
    // "ok" field — never a hang, a connection reset mid-request, or a
    // panic — and the swap telemetry must land exactly.
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 30;
    const SWAPS: u64 = 3;

    fn make_store(gen: u64) -> Arc<EmbeddingStore> {
        let (nodes, dim) = (64, 4);
        let data: Vec<f32> =
            (0..nodes * dim).map(|i| ((i as u64 * 31 + gen * 7) % 23) as f32 * 0.125).collect();
        Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(dim, data), None).unwrap())
    }
    let store = make_store(0);
    let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    let e = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));

    let gen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let reloader: ehna_serve::Reloader = Arc::new({
        let gen = Arc::clone(&gen);
        move || {
            let g = gen.fetch_add(1, Ordering::SeqCst) + 1;
            let store = make_store(g);
            let index: Box<dyn ehna_serve::KnnIndex> =
                Box::new(BruteForceIndex::new(Arc::clone(&store)));
            Ok((store, index))
        }
    });
    let handle = Server::bind_with("127.0.0.1:0", Arc::clone(&e), ServerConfig::default())
        .unwrap()
        .with_reloader(reloader)
        .spawn()
        .unwrap();
    let addr = handle.addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let node = (c * PER_CLIENT + i) % 64;
                    let lines = [
                        format!(r#"{{"op":"knn","node":"{node}","k":3}}"#),
                        format!(r#"{{"op":"score","pairs":[["{node}","{}"]]}}"#, (node + 1) % 64),
                        r#"{"op":"stats"}"#.to_string(),
                    ];
                    let resps = query_lines(addr, &lines).expect("query round failed");
                    assert_eq!(resps.len(), lines.len());
                    for (req, resp) in lines.iter().zip(&resps) {
                        let json = Json::parse(resp)
                            .unwrap_or_else(|err| panic!("malformed response to {req}: {err}"));
                        assert_eq!(
                            json.get("ok"),
                            Some(&Json::Bool(true)),
                            "request {req} failed: {resp}"
                        );
                    }
                }
            })
        })
        .collect();

    // Interleave the hot swaps with the query storm.
    let swapper = std::thread::spawn(move || {
        for swap in 0..SWAPS {
            std::thread::sleep(Duration::from_millis(40));
            let resp = query_lines(addr, &[r#"{"op":"reload"}"#.to_string()]).unwrap();
            let json = Json::parse(&resp[0]).unwrap();
            assert_eq!(json.get("ok"), Some(&Json::Bool(true)), "reload {swap} failed: {resp:?}");
            assert_eq!(
                json.get("version").and_then(Json::as_usize),
                Some(swap as usize + 2),
                "versions must advance monotonically"
            );
        }
    });
    for c in clients {
        c.join().unwrap();
    }
    swapper.join().unwrap();

    let snap = e.stats();
    assert_eq!(snap.reloads, SWAPS);
    assert_eq!(snap.snapshot_version, SWAPS + 1);
    assert!(snap.last_reload_unix > 0);
    assert_eq!(snap.timeouts, 0);
    assert_eq!(snap.rejected, 0);

    // The wire-level stats op surfaces the swap telemetry too.
    let resp = query_lines(addr, &[r#"{"op":"stats"}"#.to_string()]).unwrap();
    let stats = Json::parse(&resp[0]).unwrap();
    assert_eq!(stats.get("snapshot_version").and_then(Json::as_usize), Some(SWAPS as usize + 1));
    assert_eq!(stats.get("reloads").and_then(Json::as_usize), Some(SWAPS as usize));

    // An unconfigured server answers reload with a structured error.
    let bare = spawn(&engine(8), ServerConfig::default());
    let resp = query_lines(bare.addr(), &[r#"{"op":"reload"}"#.to_string()]).unwrap();
    let json = Json::parse(&resp[0]).unwrap();
    assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
    bare.shutdown();
    handle.shutdown();
}
