//! Serving-quality gates for quantized (EHNQ) snapshots: recall against
//! the f32 brute-force oracle, compression floors, tie-exact ordering
//! across index kinds (the pinned f64 distance-accumulation contract),
//! heap/mmap answer identity under concurrent snapshot churn, and
//! engine-level canonical key resolution.
//!
//! CI runs this suite as the quant serving gate (scripts/ci.sh).

use ehna_serve::{
    handle_line, BruteForceIndex, EmbeddingStore, EngineConfig, IvfConfig, IvfIndex, Json,
    KnnIndex, QueryEngine, RequestLimits,
};
use ehna_tgraph::{NodeEmbeddings, NodeId, QuantFormat, QuantSpec, QuantizedEmbeddings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const LOSSY: [QuantFormat; 3] = [QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq];

/// Clustered blobs: `centers` well-separated centers with small jitter —
/// realistic enough that recall is a meaningful gate rather than a
/// coin-flip over uniform noise.
fn blobs(n: usize, dim: usize, centers: usize, seed: u64) -> NodeEmbeddings {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % centers;
        // Two-hot centers at a fixed magnitude: distinct (a, b) dim
        // pairs give `centers` well-separated blobs while keeping every
        // dimension's value range tight, so int8's per-dimension grid
        // stays fine-grained (range scales the grid step).
        let a = c % dim;
        let b = (a + c / dim + 1) % dim;
        for d in 0..dim {
            let center = if d == a || d == b { 8.0 } else { 0.0 };
            // Jitter on a 5-level grid rather than a continuum: the
            // within-blob geometry then has finite support a 256-entry
            // PQ codebook can actually represent, so the recall gate
            // measures format fidelity, not irreducible codebook noise
            // on data with no structure below the noise floor.
            let jitter = (rng.gen_range(0u32..5) as f32 - 2.0) * 0.2;
            data.push(center + jitter);
        }
    }
    NodeEmbeddings::from_vec(dim, data)
}

fn brute_store(store: Arc<EmbeddingStore>) -> Arc<QueryEngine> {
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

#[test]
fn recall_at_10_stays_above_095_for_every_format() {
    // The ISSUE acceptance gate: every quantized format must reach
    // recall@10 >= 0.95 against the exact f32 oracle on clustered data,
    // and the byte formats must actually compress (int8 and pq at least
    // 4x fewer code bytes per node than dense f32).
    const N: usize = 2000;
    const DIM: usize = 16;
    const K: usize = 10;
    // 100 centers -> ~20 points per blob: a query's true top-10 sits
    // inside its own blob with real distance gaps, so recall measures
    // quantization error rather than coin-flips between dense ties.
    let emb = blobs(N, DIM, 100, 0x51AB);
    let dense = brute_store(Arc::new(EmbeddingStore::new(emb.clone(), None).unwrap()));
    let probes: Vec<NodeId> = (0..50).map(|q| NodeId((q * 37 % N) as u32)).collect();
    let truth: Vec<Vec<NodeId>> = probes
        .iter()
        .map(|&p| dense.knn_node(p, K, false).unwrap().neighbors.iter().map(|n| n.id).collect())
        .collect();

    for format in LOSSY {
        let mut spec = QuantSpec::new(format);
        spec.pq_m = 8;
        let q = QuantizedEmbeddings::encode(&emb, &spec).unwrap();
        let code_bpn = q.code_bytes_per_node();
        if matches!(format, QuantFormat::Int8 | QuantFormat::Pq) {
            assert!(
                DIM * 4 >= 4 * code_bpn,
                "{format:?}: {code_bpn} code bytes/node misses the 4x floor vs {}",
                DIM * 4
            );
        }
        let engine = brute_store(Arc::new(EmbeddingStore::from_quant(q, None).unwrap()));
        let mut hit = 0usize;
        for (p, want) in probes.iter().zip(&truth) {
            let got = engine.knn_node(*p, K, false).unwrap();
            hit += got.neighbors.iter().filter(|n| want.contains(&n.id)).count();
        }
        let recall = hit as f64 / (probes.len() * K) as f64;
        assert!(recall >= 0.95, "{format:?}: recall@{K} = {recall:.3} < 0.95");
    }
}

#[test]
fn tie_heavy_ordering_is_identical_across_brute_and_full_probe_ivf() {
    // The pinned distance contract (plain f64 accumulation in ascending
    // dimension order — no FMA, no reassociation) means brute force and
    // an IVF index probing *every* cluster must produce bit-identical
    // (dist, id) rankings for any format, even when dozens of rows are
    // exactly equidistant. A contract drift in either path shows up here
    // as a tie broken differently.
    const N: usize = 120;
    const DIM: usize = 8;
    const K: usize = 25;
    let data: Vec<f32> = (0..N * DIM).map(|i| ((i * 7) % 5) as f32).collect();
    let emb = NodeEmbeddings::from_vec(DIM, data);

    for format in [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq] {
        let q = QuantizedEmbeddings::encode(&emb, &spec8(format)).unwrap();
        let store = Arc::new(EmbeddingStore::from_quant(q, None).unwrap());
        let brute = brute_store(Arc::clone(&store));
        let ivf_index = IvfIndex::build(
            Arc::clone(&store),
            IvfConfig { num_clusters: Some(6), nprobe: 6, ..Default::default() },
        );
        assert_eq!(ivf_index.nprobe(), 6, "full probe required for exactness");
        let ivf = Arc::new(QueryEngine::new(
            Arc::clone(&store),
            Box::new(ivf_index),
            EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
        ));
        for probe in 0..N as u32 {
            let a = brute.knn_node(NodeId(probe), K, false).unwrap().neighbors;
            let b = ivf.knn_node(NodeId(probe), K, false).unwrap().neighbors;
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    (x.id, x.dist.to_bits()),
                    (y.id, y.dist.to_bits()),
                    "{format:?}: node {probe} tie broken differently"
                );
            }
        }
    }

    // And the f32 EHNQ path is bit-identical to the legacy dense path:
    // same rows, same contract, same ranking.
    let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::F32)).unwrap();
    let dense = brute_store(Arc::new(EmbeddingStore::new(emb, None).unwrap()));
    let quant = brute_store(Arc::new(EmbeddingStore::from_quant(q, None).unwrap()));
    for probe in 0..N as u32 {
        let a = dense.knn_node(NodeId(probe), K, false).unwrap().neighbors;
        let b = quant.knn_node(NodeId(probe), K, false).unwrap().neighbors;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.dist.to_bits()), (y.id, y.dist.to_bits()));
        }
    }
}

fn spec8(format: QuantFormat) -> QuantSpec {
    let mut spec = QuantSpec::new(format);
    spec.pq_m = 8;
    spec
}

#[test]
fn mmap_answers_match_heap_under_concurrent_reload_churn() {
    // Hot-swap churn on a live mmap-backed engine: a writer thread keeps
    // re-opening and swapping the same artifact (the no-memory-doubling
    // reload path) while the reader compares every answer against a
    // quiescent heap-backed engine. Any generation must answer exactly
    // like the heap store at any interleaving.
    let dir = std::env::temp_dir().join("ehna_quant_serving_churn");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = blobs(300, 8, 8, 0xC0DE);
    let q = QuantizedEmbeddings::encode(&emb, &spec8(QuantFormat::Int8)).unwrap();
    let path = dir.join("emb.int8.ehnq");
    q.save_path(&path).unwrap();

    let open = |mmap: bool| {
        Arc::new(EmbeddingStore::open_with(path.to_str().unwrap(), None, mmap).unwrap())
    };
    let heap = brute_store(open(false));
    let mapped_store = open(true);
    assert_eq!(mapped_store.is_mmap(), cfg!(unix));
    let mapped = brute_store(mapped_store);

    let battery: Vec<String> = (0..30)
        .map(|i| format!(r#"{{"op":"knn","node":"{}","k":7}}"#, i * 11 % 300))
        .chain((0..5).map(|i| format!(r#"{{"op":"score","pairs":[["{i}","{}"]]}}"#, 299 - i)))
        .collect();
    let limits = RequestLimits::default();
    let expected: Vec<String> =
        battery.iter().map(|line| handle_line(&heap, &limits, line).to_string()).collect();

    let churn_engine = Arc::clone(&mapped);
    let path_for_churn = path.clone();
    let churn = std::thread::spawn(move || {
        for _ in 0..25 {
            let store = Arc::new(
                EmbeddingStore::open_with(path_for_churn.to_str().unwrap(), None, true).unwrap(),
            );
            let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
            churn_engine.swap_snapshot(store, index);
            std::thread::yield_now();
        }
    });
    for round in 0..40 {
        for (line, want) in battery.iter().zip(&expected) {
            let got = handle_line(&mapped, &limits, line).to_string();
            assert_eq!(&got, want, "round {round}, request {line}");
        }
    }
    churn.join().unwrap();
    // The churned engine ends many generations in, still mmap-backed.
    assert!(mapped.snapshot_version().0 > 1);
    assert_eq!(mapped.store().is_mmap(), cfg!(unix));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_rejects_non_canonical_node_keys() {
    // Satellite regression: `resolve` once fell back to a bare
    // `parse::<u32>`, so "007", "+3", or " 3" aliased real rows (and
    // split the answer cache between spellings). The engine must treat
    // every non-canonical spelling as an unknown node — on quantized
    // stores exactly like dense ones.
    let emb = blobs(20, 4, 4, 7);
    let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::F16)).unwrap();
    let engines = [
        brute_store(Arc::new(EmbeddingStore::new(emb, None).unwrap())),
        brute_store(Arc::new(EmbeddingStore::from_quant(q, None).unwrap())),
    ];
    let limits = RequestLimits::default();
    for engine in &engines {
        for bad in ["007", "+3", " 3", "3 ", "0x3", "4294967296", ""] {
            let resp =
                handle_line(engine, &limits, &format!(r#"{{"op":"knn","node":"{bad}","k":2}}"#));
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "key '{bad}' accepted: {resp}");
            assert!(
                resp.get("error").and_then(Json::as_str).unwrap().contains("unknown node"),
                "key '{bad}': {resp}"
            );
        }
        for good in ["0", "3", "19"] {
            let resp =
                handle_line(engine, &limits, &format!(r#"{{"op":"knn","node":"{good}","k":2}}"#));
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "key '{good}' rejected: {resp}");
        }
    }
}
