//! Property tests for the hot-node LRU cache: under arbitrary op
//! sequences it must never exceed its capacity, and eviction must always
//! pick the least-recently-touched key — checked against a naive
//! recency-list reference model.

use ehna_serve::cache::LruCache;
use proptest::prelude::*;

/// Reference model: a vector ordered most- to least-recently used.
#[derive(Default)]
struct Model {
    order: Vec<(u32, i64)>,
    capacity: usize,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model { order: Vec::new(), capacity }
    }

    fn get(&mut self, key: u32) -> Option<i64> {
        let pos = self.order.iter().position(|&(k, _)| k == key)?;
        let entry = self.order.remove(pos);
        self.order.insert(0, entry);
        Some(entry.1)
    }

    fn insert(&mut self, key: u32, value: i64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.order.iter().position(|&(k, _)| k == key) {
            self.order.remove(pos);
        } else if self.order.len() >= self.capacity {
            self.order.pop(); // least recently used
        }
        self.order.insert(0, (key, value));
    }
}

proptest! {
    #[test]
    fn lru_matches_reference_model(
        capacity in 0usize..6,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u32..8, 0i64..1000), 0..300),
    ) {
        let mut cache: LruCache<u32, i64> = LruCache::new(capacity);
        let mut model = Model::new(capacity);
        for (is_insert, key, value) in ops {
            if is_insert {
                cache.insert(key, value);
                model.insert(key, value);
            } else {
                // Hits must agree and both refresh recency identically,
                // so later evictions stay in lockstep.
                prop_assert_eq!(cache.get(&key).copied(), model.get(key));
            }
            prop_assert!(
                cache.len() <= capacity,
                "cache grew past capacity: {} > {}", cache.len(), capacity
            );
            prop_assert_eq!(cache.len(), model.order.len());
        }
        // Final sweep: exactly the model's keys survive, with its values.
        for key in 0u32..8 {
            let expected = model.order.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
            prop_assert_eq!(cache.get(&key).copied(), expected, "key {} diverged", key);
            // Mirror the recency refresh the get above performed.
            model.get(key);
        }
    }

    #[test]
    fn lru_never_exceeds_capacity_under_heavy_reinsertion(
        capacity in 1usize..5,
        keys in proptest::collection::vec(0u32..4, 1..200),
    ) {
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        for (i, key) in keys.into_iter().enumerate() {
            cache.insert(key, i as u32);
            prop_assert!(cache.len() <= capacity);
        }
    }
}
