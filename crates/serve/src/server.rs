//! Line-delimited JSON over TCP, std-only.
//!
//! One request per line, one response per line. Ops:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"knn","node":"alice","k":10}
//! {"op":"knn","vector":[0.1,0.2,...],"k":5,"explain":true}
//! {"op":"score","pairs":[["alice","bob"],["3","7"]]}
//! {"op":"stats"}
//! ```
//!
//! Every response carries `"ok"`; failures add `"error"`. Scores and
//! distances are squared Euclidean (Eq. 5) — lower = stronger link.

use crate::engine::QueryEngine;
use crate::json::Json;
use crate::ServeError;
use ehna_tgraph::NodeId;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, e.g.
    /// `127.0.0.1:0`).
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: Arc<QueryEngine>) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)?, engine })
    }

    /// The bound address (reports the real port after binding port 0).
    ///
    /// # Errors
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the process exits: accept loop with one thread per
    /// connection.
    ///
    /// # Errors
    /// Fatal accept errors.
    pub fn run(self) -> io::Result<()> {
        self.run_until(&AtomicBool::new(false))
    }

    fn run_until(self, stop: &AtomicBool) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let engine = Arc::clone(&self.engine);
                    std::thread::spawn(move || handle_connection(stream, &engine));
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread; the handle can stop it.
    ///
    /// # Errors
    /// Socket errors while reading the bound address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let _ = self.run_until(&stop2);
        });
        Ok(ServerHandle { addr, stop, join: Some(join) })
    }
}

/// Handle to a background server; stops the accept loop on shutdown or
/// drop (open connections finish on their own threads).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accept_loop();
    }
}

fn handle_connection(stream: TcpStream, engine: &QueryEngine) {
    let Ok(peer_reader) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(peer_reader);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(engine, &line);
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

/// Process one request line into one response document. Pure with respect
/// to IO — exercised directly by unit tests, and by the TCP loop above.
pub fn handle_line(engine: &QueryEngine, line: &str) -> Json {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("bad json: {e}")),
    };
    match dispatch(engine, &request) {
        Ok(resp) => resp,
        Err(e) => error_response(&e.to_string()),
    }
}

fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

fn dispatch(engine: &QueryEngine, request: &Json) -> Result<Json, ServeError> {
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing 'op'".into()))?;
    match op {
        "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])),
        "knn" => knn_op(engine, request),
        "score" => score_op(engine, request),
        "stats" => Ok(stats_op(engine)),
        other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
    }
}

fn knn_op(engine: &QueryEngine, request: &Json) -> Result<Json, ServeError> {
    let k = match request.get("k") {
        Some(v) => v.as_usize().ok_or_else(|| ServeError::BadRequest("bad 'k'".into()))?,
        None => 10,
    };
    let explain = request.get("explain").and_then(Json::as_bool).unwrap_or(false);
    let result = match (request.get("node"), request.get("vector")) {
        (Some(node), None) => {
            let key = node
                .as_str()
                .map(str::to_string)
                .or_else(|| node.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad 'node'".into()))?;
            let id = engine.store().resolve(&key)?;
            engine.knn_node(id, k, explain)?
        }
        (None, Some(vector)) => {
            let items = vector
                .as_arr()
                .ok_or_else(|| ServeError::BadRequest("'vector' must be an array".into()))?;
            let q: Vec<f32> = items
                .iter()
                .map(|v| v.as_f64().map(|x| x as f32))
                .collect::<Option<_>>()
                .ok_or_else(|| ServeError::BadRequest("non-numeric vector entry".into()))?;
            engine.knn_vector(q, k, explain)?
        }
        _ => return Err(ServeError::BadRequest("need exactly one of 'node' or 'vector'".into())),
    };
    let neighbors = result
        .neighbors
        .iter()
        .map(|nb| {
            Json::obj([
                ("node", Json::Str(engine.store().label(nb.id))),
                ("id", Json::Num(nb.id.index() as f64)),
                ("dist", Json::Num(nb.dist)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("k".to_string(), Json::Num(k as f64)),
        ("neighbors".to_string(), Json::Arr(neighbors)),
        ("cached".to_string(), Json::Bool(result.cached)),
    ];
    if let Some(info) = result.info {
        fields.push((
            "explain".to_string(),
            Json::obj([
                (
                    "probed_centroids",
                    Json::Arr(info.probed.iter().map(|&c| Json::Num(c as f64)).collect()),
                ),
                ("scanned", Json::Num(info.scanned as f64)),
                ("rank_agreement", Json::Num(result.agreement.unwrap_or(1.0))),
            ]),
        ));
    }
    Ok(Json::Obj(fields))
}

fn score_op(engine: &QueryEngine, request: &Json) -> Result<Json, ServeError> {
    let pairs_json = request
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest("'pairs' must be an array".into()))?;
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs_json.len());
    for p in pairs_json {
        let items = p
            .as_arr()
            .filter(|items| items.len() == 2)
            .ok_or_else(|| ServeError::BadRequest("each pair must be [src, dst]".into()))?;
        let key = |v: &Json| -> Result<String, ServeError> {
            v.as_str()
                .map(str::to_string)
                .or_else(|| v.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad pair endpoint".into()))
        };
        let a = engine.store().resolve(&key(&items[0])?)?;
        let b = engine.store().resolve(&key(&items[1])?)?;
        pairs.push((a, b));
    }
    let scores = engine.score_pairs(pairs)?;
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("scores", Json::Arr(scores.into_iter().map(Json::Num).collect())),
    ]))
}

fn stats_op(engine: &QueryEngine) -> Json {
    let snap = engine.stats();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("index", Json::Str(engine.index_kind().to_string())),
        ("nodes", Json::Num(engine.store().num_nodes() as f64)),
        ("dim", Json::Num(engine.store().dim() as f64)),
        ("requests", Json::Num(snap.requests as f64)),
        ("cache_hits", Json::Num(snap.cache_hits as f64)),
        ("cache_misses", Json::Num(snap.cache_misses as f64)),
        ("batches", Json::Num(snap.batches as f64)),
        ("mean_us", Json::Num(snap.mean_us)),
        ("p50_us", Json::Num(snap.p50_us as f64)),
        ("p95_us", Json::Num(snap.p95_us as f64)),
        ("p99_us", Json::Num(snap.p99_us as f64)),
    ])
}

/// One-shot client: connect, send each request line, return one response
/// line per request. Used by `ehna query` and the integration tests.
///
/// # Errors
/// Socket errors, or a server that hangs up early.
pub fn query_lines<A: ToSocketAddrs>(addr: A, requests: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    for req in requests {
        writeln!(writer, "{req}")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        responses.push(line.trim_end().to_string());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::index::BruteForceIndex;
    use crate::store::EmbeddingStore;
    use ehna_tgraph::{NameMap, NodeEmbeddings};

    fn engine() -> Arc<QueryEngine> {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let mut names = NameMap::new();
        for n in ["a", "b", "c", "far"] {
            names.intern(n);
        }
        let store = Arc::new(EmbeddingStore::new(emb, Some(names)).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    #[test]
    fn knn_by_name_over_protocol() {
        let e = engine();
        let resp = handle_line(&e, r#"{"op":"knn","node":"a","k":2}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors.len(), 2);
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("b"));
        assert_eq!(neighbors[0].get("dist").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn knn_by_vector_with_explain() {
        let e = engine();
        let resp = handle_line(&e, r#"{"op":"knn","vector":[5,5],"k":1,"explain":true}"#);
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("far"));
        let explain = resp.get("explain").unwrap();
        assert_eq!(explain.get("rank_agreement").and_then(Json::as_f64), Some(1.0));
        assert!(explain.get("scanned").and_then(Json::as_usize).unwrap() > 0);
    }

    #[test]
    fn score_op_resolves_names_and_ids() {
        let e = engine();
        let resp = handle_line(&e, r#"{"op":"score","pairs":[["a","b"],["0","far"]]}"#);
        let scores = resp.get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores[0].as_f64(), Some(1.0));
        assert_eq!(scores[1].as_f64(), Some(50.0));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let e = engine();
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"knn"}"#,
            r#"{"op":"knn","node":"nobody"}"#,
            r#"{"op":"knn","node":"a","vector":[1,2]}"#,
            r#"{"op":"score","pairs":[["a"]]}"#,
        ] {
            let resp = handle_line(&e, bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "no error for {bad}");
            assert!(resp.get("error").is_some());
        }
        // The engine still works after every error.
        let resp = handle_line(&e, r#"{"op":"ping"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_op_reports_counters() {
        let e = engine();
        handle_line(&e, r#"{"op":"knn","node":"a","k":1}"#);
        handle_line(&e, r#"{"op":"knn","node":"a","k":1}"#);
        let resp = handle_line(&e, r#"{"op":"stats"}"#);
        assert_eq!(resp.get("index").and_then(Json::as_str), Some("brute"));
        assert_eq!(resp.get("nodes").and_then(Json::as_usize), Some(4));
        assert_eq!(resp.get("requests").and_then(Json::as_usize), Some(2));
        assert_eq!(resp.get("cache_hits").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn tcp_roundtrip_and_shutdown() {
        let e = engine();
        let server = Server::bind("127.0.0.1:0", Arc::clone(&e)).unwrap();
        let handle = server.spawn().unwrap();
        let responses = query_lines(
            handle.addr(),
            &[r#"{"op":"ping"}"#.to_string(), r#"{"op":"knn","node":"b","k":2}"#.to_string()],
        )
        .unwrap();
        assert_eq!(responses.len(), 2);
        let pong = Json::parse(&responses[0]).unwrap();
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        let knn = Json::parse(&responses[1]).unwrap();
        assert_eq!(knn.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown(); // must not hang
    }
}
