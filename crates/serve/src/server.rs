//! Line-delimited JSON over TCP, std-only, hardened for hostile clients.
//!
//! One request per line, one response per line. Ops:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"knn","node":"alice","k":10}
//! {"op":"knn","vector":[0.1,0.2,...],"k":5,"explain":true}
//! {"op":"score","pairs":[["alice","bob"],["3","7"]]}
//! {"op":"stats"}
//! {"op":"reload"}
//! ```
//!
//! Every response carries `"ok"`; failures add `"error"`. Scores and
//! distances are squared Euclidean (Eq. 5) — lower = stronger link.
//!
//! # Architecture: bounded worker pool
//!
//! Connections are NOT handled one-thread-per-socket. A non-blocking
//! accept loop admits sockets into a bounded queue drained by a fixed
//! pool of `ServerConfig::conn_workers` handler threads. Admission is
//! gated on `ServerConfig::max_connections` (queued + in-flight): a
//! client arriving past the cap receives a one-line
//! `{"ok":false,"error":"overloaded"}` response and is disconnected,
//! so a connection flood degrades into fast load-shedding instead of
//! unbounded thread spawn.
//!
//! Per-connection defenses:
//!
//! * read/write socket timeouts (`read_timeout` / `write_timeout`) cut
//!   off slow-loris clients that trickle or never complete a request;
//! * a length-capped line reader bounds request-line memory at
//!   `max_line_bytes` — an endless line gets a structured error and a
//!   disconnect, never an OOM;
//! * per-request limits (`RequestLimits::max_k` / `max_pairs`) bound
//!   the work and allocation a single request can demand.
//!
//! Shedding, timeouts, and malformed/over-limit requests are all
//! counted in [`EngineStats`](crate::EngineStats) and exposed through
//! the `stats` op.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] is deterministic: the accept loop runs
//! non-blocking and polls the stop flag (no self-connect hack), queued
//! but unserved sockets are dropped, idle connections have their read
//! half shut down so blocked reads wake immediately, and in-flight
//! requests get up to `drain_deadline` to finish writing their
//! responses before remaining sockets are force-closed and the workers
//! joined.

use crate::engine::QueryEngine;
use crate::index::KnnIndex;
use crate::json::Json;
use crate::store::EmbeddingStore;
use crate::ServeError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ehna_tgraph::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the non-blocking accept loop and idle workers poll the
/// stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// How often the shutdown drain re-checks the active-connection count.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Per-request protocol limits, enforced before any work is queued.
#[derive(Debug, Clone)]
pub struct RequestLimits {
    /// Largest `k` a `knn` request may ask for.
    pub max_k: usize,
    /// Largest number of pairs a `score` request may submit.
    pub max_pairs: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits { max_k: 1024, max_pairs: 4096 }
    }
}

/// Socket-layer tuning and protection knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler threads (the bounded pool).
    pub conn_workers: usize,
    /// Cap on concurrently admitted connections (queued + being
    /// served); arrivals beyond it are shed with an `overloaded` error.
    pub max_connections: usize,
    /// Socket read timeout: a connection that sends nothing for this
    /// long is dropped (counts in `timeouts`).
    pub read_timeout: Duration,
    /// Socket write timeout: a client that will not drain its response
    /// for this long is dropped (counts in `timeouts`).
    pub write_timeout: Duration,
    /// Longest accepted request line, in bytes; longer lines get a
    /// structured error and a disconnect.
    pub max_line_bytes: usize,
    /// Per-request protocol limits.
    pub limits: RequestLimits,
    /// How long `shutdown` waits for in-flight requests to finish
    /// before force-closing their sockets.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            conn_workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
            limits: RequestLimits::default(),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Builds a fresh `(store, index)` pair for the `reload` op — typically
/// by re-reading a snapshot file that `ehna stream` rewrote. Runs on a
/// connection-worker thread; queries keep flowing against the old
/// snapshot while it loads, and the swap itself is atomic.
pub type Reloader =
    Arc<dyn Fn() -> Result<(Arc<EmbeddingStore>, Box<dyn KnnIndex>), ServeError> + Send + Sync>;

/// State shared between the accept loop, the worker pool, and the
/// shutdown path.
struct ServerShared {
    engine: Arc<QueryEngine>,
    reloader: Option<Reloader>,
    config: ServerConfig,
    stop: AtomicBool,
    /// Admitted connections not yet closed (queued + being served).
    active: AtomicUsize,
    /// Clones of in-service sockets, so shutdown can unblock their
    /// reads without waiting out the read timeout.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    reloader: Option<Reloader>,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.engine)
            .field("reload", &self.reloader.is_some())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, e.g.
    /// `127.0.0.1:0`) with default [`ServerConfig`].
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: Arc<QueryEngine>) -> io::Result<Server> {
        Server::bind_with(addr, engine, ServerConfig::default())
    }

    /// Bind `addr` with explicit socket limits and timeouts.
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<QueryEngine>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)?, engine, reloader: None, config })
    }

    /// Enable the `reload` op: each request runs `reloader` and hot-swaps
    /// the returned snapshot into the engine. Without this, `reload`
    /// requests get a structured `"reload not configured"` error.
    #[must_use]
    pub fn with_reloader(mut self, reloader: Reloader) -> Self {
        self.reloader = Some(reloader);
        self
    }

    /// The bound address (reports the real port after binding port 0).
    ///
    /// # Errors
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the process exits (or a fatal accept error).
    ///
    /// # Errors
    /// Fatal accept errors.
    pub fn run(self) -> io::Result<()> {
        let mut handle = self.spawn()?;
        let result = match handle.accept.take() {
            Some(join) => {
                join.join().unwrap_or_else(|_| Err(io::Error::other("accept loop panicked")))
            }
            None => Ok(()),
        };
        handle.shutdown_impl();
        result
    }

    /// Start the accept loop and the connection worker pool on
    /// background threads; the returned handle stops them.
    ///
    /// # Errors
    /// Socket errors while reading the bound address or switching the
    /// listener to non-blocking mode.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            engine: self.engine,
            reloader: self.reloader,
            config: self.config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let (tx, rx) = bounded::<TcpStream>(shared.config.max_connections.max(1));
        let workers = (0..shared.config.conn_workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || conn_worker(&shared, &rx))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &shared, &tx))
        };
        Ok(ServerHandle { addr, shared, rx, accept: Some(accept), workers: Some(workers) })
    }
}

/// Handle to a running server; stops it deterministically on
/// [`shutdown`](ServerHandle::shutdown) or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    rx: Receiver<TcpStream>,
    accept: Option<JoinHandle<io::Result<()>>>,
    workers: Option<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests (bounded by
    /// `drain_deadline`), force-close stragglers, and join every
    /// thread. Returns once the server is fully torn down.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop is non-blocking and polls the stop flag, so
        // it exits within one poll interval — no self-connect needed.
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
        // Connections admitted but never picked up by a worker are
        // dropped unserved.
        while let Ok(stream) = self.rx.try_recv() {
            drop(stream);
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
        }
        // Wake workers blocked reading from idle connections; the
        // write half stays open so in-flight responses still go out.
        for conn in self.shared.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(DRAIN_POLL);
        }
        // Past the deadline: cut remaining sockets entirely.
        for conn in self.shared.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(workers) = self.workers.take() {
            for w in workers {
                let _ = w.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.workers.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Non-blocking accept loop: poll for sockets, shed past the cap, and
/// exit within one poll interval of the stop flag being set.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    tx: &Sender<TcpStream>,
) -> io::Result<()> {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, tx, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Admission control: configure socket timeouts, then either enqueue
/// the connection for the worker pool or shed it with an `overloaded`
/// response.
fn admit(shared: &ServerShared, tx: &Sender<TcpStream>, stream: TcpStream) {
    // Accepted sockets must be blocking regardless of what the
    // non-blocking listener hands us (platform-dependent inheritance).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
        shed(shared, &stream);
        return;
    }
    shared.active.fetch_add(1, Ordering::SeqCst);
    match tx.try_send(stream) {
        Ok(()) => {}
        Err(TrySendError::Full(stream) | TrySendError::Disconnected(stream)) => {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shed(shared, &stream);
        }
    }
}

/// Tell an un-admittable client it is being load-shed, then drop it.
fn shed(shared: &ServerShared, stream: &TcpStream) {
    shared.engine.stats_raw().overloads.fetch_add(1, Ordering::Relaxed);
    let resp = error_response("overloaded");
    let mut writer = BufWriter::new(stream);
    let _ = writeln!(writer, "{resp}").and_then(|()| writer.flush());
    let _ = stream.shutdown(Shutdown::Both);
}

/// One worker of the bounded pool: serve connections from the queue
/// until shutdown.
fn conn_worker(shared: &Arc<ServerShared>, rx: &Receiver<TcpStream>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(stream) => handle_connection(shared, &stream),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Serve one admitted connection to completion, keeping the shutdown
/// registry and the active-connection count consistent.
fn handle_connection(shared: &ServerShared, stream: &TcpStream) {
    if !shared.stop.load(Ordering::SeqCst) {
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let registered = match stream.try_clone() {
            Ok(clone) => {
                shared.conns.lock().insert(conn_id, clone);
                true
            }
            Err(_) => false,
        };
        serve_connection(shared, stream);
        if registered {
            shared.conns.lock().remove(&conn_id);
        }
    }
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Outcome of one capped line read.
enum LineRead {
    /// A complete newline-terminated line (terminator stripped).
    Line(String),
    /// Clean end of stream (a trailing partial line is discarded).
    Eof,
    /// The line exceeded the byte cap before a newline arrived.
    TooLong,
}

/// Read one `\n`-terminated line of at most `max_bytes` bytes. Unlike
/// `BufRead::read_line`, an endless line cannot grow the buffer past
/// the cap — the caller is expected to error out and disconnect.
fn read_line_capped<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Ok(LineRead::Eof);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos > max_bytes {
                        (pos + 1, Some(LineRead::TooLong))
                    } else {
                        buf.extend_from_slice(&chunk[..pos]);
                        (pos + 1, Some(LineRead::Line(String::new())))
                    }
                }
                None => {
                    if buf.len() + chunk.len() > max_bytes {
                        (chunk.len(), Some(LineRead::TooLong))
                    } else {
                        buf.extend_from_slice(chunk);
                        (chunk.len(), None)
                    }
                }
            }
        };
        reader.consume(consumed);
        match done {
            Some(LineRead::Line(_)) => {
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            Some(other) => return Ok(other),
            None => {}
        }
    }
}

/// Whether an IO error is the socket timeout firing (platforms report
/// it as either `WouldBlock` or `TimedOut`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// The per-connection request/response loop.
fn serve_connection(shared: &ServerShared, stream: &TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let stats = shared.engine.stats_raw();
    loop {
        match read_line_capped(&mut reader, shared.config.max_line_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                let resp = error_response(&format!(
                    "request line exceeds {} bytes",
                    shared.config.max_line_bytes
                ));
                let _ = writeln!(writer, "{resp}").and_then(|()| writer.flush());
                break;
            }
            Ok(LineRead::Line(line)) => {
                if shared.stop.load(Ordering::SeqCst) && line.trim().is_empty() {
                    break;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_line_with(
                    &shared.engine,
                    &shared.config.limits,
                    shared.reloader.as_ref(),
                    &line,
                );
                if let Err(e) = writeln!(writer, "{response}").and_then(|()| writer.flush()) {
                    if is_timeout(&e) {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                // Draining: the in-flight request got its response;
                // close instead of waiting for another.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) => {
                if is_timeout(&e) {
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }
}

/// Process one request line into one response document. Pure with respect
/// to IO — exercised directly by unit tests, and by the worker pool above.
/// Malformed or over-limit requests are answered with `"ok":false` and
/// counted in the engine's `rejected` stat.
pub fn handle_line(engine: &QueryEngine, limits: &RequestLimits, line: &str) -> Json {
    handle_line_with(engine, limits, None, line)
}

/// [`handle_line`] with an optional [`Reloader`] backing the `reload` op.
pub fn handle_line_with(
    engine: &QueryEngine,
    limits: &RequestLimits,
    reloader: Option<&Reloader>,
    line: &str,
) -> Json {
    let reject = |msg: &str| {
        engine.stats_raw().rejected.fetch_add(1, Ordering::Relaxed);
        error_response(msg)
    };
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return reject(&format!("bad json: {e}")),
    };
    match dispatch(engine, limits, reloader, &request) {
        Ok(resp) => resp,
        Err(e) => reject(&e.to_string()),
    }
}

fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

fn dispatch(
    engine: &QueryEngine,
    limits: &RequestLimits,
    reloader: Option<&Reloader>,
    request: &Json,
) -> Result<Json, ServeError> {
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing 'op'".into()))?;
    match op {
        "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])),
        "knn" => knn_op(engine, limits, request),
        "score" => score_op(engine, limits, request),
        "stats" => Ok(stats_op(engine)),
        "reload" => reload_op(engine, reloader),
        other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
    }
}

/// Run the configured [`Reloader`] and hot-swap its snapshot into the
/// engine. Queries on other connections keep being answered (by the old
/// snapshot) for the whole duration — only the final pointer swap is
/// synchronized.
fn reload_op(engine: &QueryEngine, reloader: Option<&Reloader>) -> Result<Json, ServeError> {
    let reloader =
        reloader.ok_or_else(|| ServeError::BadRequest("reload not configured".into()))?;
    let (store, index) = reloader()?;
    let nodes = store.num_nodes();
    let dim = store.dim();
    let version = engine.swap_snapshot(store, index);
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("version", Json::Num(version.0 as f64)),
        ("nodes", Json::Num(nodes as f64)),
        ("dim", Json::Num(dim as f64)),
    ]))
}

fn knn_op(
    engine: &QueryEngine,
    limits: &RequestLimits,
    request: &Json,
) -> Result<Json, ServeError> {
    let num_nodes = engine.store().num_nodes();
    let k = match request.get("k") {
        Some(v) => {
            let k = v.as_usize().ok_or_else(|| ServeError::BadRequest("bad 'k'".into()))?;
            if k == 0 || k > num_nodes {
                return Err(ServeError::BadRequest(format!(
                    "'k' must be between 1 and {num_nodes} (got {k})"
                )));
            }
            if k > limits.max_k {
                return Err(ServeError::BadRequest(format!(
                    "'k' exceeds the server limit of {} (got {k})",
                    limits.max_k
                )));
            }
            k
        }
        None => 10.min(limits.max_k).min(num_nodes).max(1),
    };
    let explain = request.get("explain").and_then(Json::as_bool).unwrap_or(false);
    let result = match (request.get("node"), request.get("vector")) {
        (Some(node), None) => {
            let key = node
                .as_str()
                .map(str::to_string)
                .or_else(|| node.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad 'node'".into()))?;
            let id = engine.store().resolve(&key)?;
            engine.knn_node(id, k, explain)?
        }
        (None, Some(vector)) => {
            let items = vector
                .as_arr()
                .ok_or_else(|| ServeError::BadRequest("'vector' must be an array".into()))?;
            let q: Vec<f32> = items
                .iter()
                .map(|v| v.as_f64().map(|x| x as f32))
                .collect::<Option<_>>()
                .ok_or_else(|| ServeError::BadRequest("non-numeric vector entry".into()))?;
            engine.knn_vector(q, k, explain)?
        }
        _ => return Err(ServeError::BadRequest("need exactly one of 'node' or 'vector'".into())),
    };
    let neighbors = result
        .neighbors
        .iter()
        .map(|nb| {
            Json::obj([
                ("node", Json::Str(engine.store().label(nb.id))),
                ("id", Json::Num(nb.id.index() as f64)),
                ("dist", Json::Num(nb.dist)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("k".to_string(), Json::Num(k as f64)),
        ("neighbors".to_string(), Json::Arr(neighbors)),
        ("cached".to_string(), Json::Bool(result.cached)),
    ];
    if let Some(info) = result.info {
        // `rank_agreement` is only meaningful when the brute-force
        // comparison actually ran; `null` otherwise (never a fabricated
        // 1.0).
        let agreement = result.agreement.map_or(Json::Null, Json::Num);
        fields.push((
            "explain".to_string(),
            Json::obj([
                (
                    "probed_centroids",
                    Json::Arr(info.probed.iter().map(|&c| Json::Num(c as f64)).collect()),
                ),
                ("scanned", Json::Num(info.scanned as f64)),
                ("rank_agreement", agreement),
            ]),
        ));
    }
    Ok(Json::Obj(fields))
}

fn score_op(
    engine: &QueryEngine,
    limits: &RequestLimits,
    request: &Json,
) -> Result<Json, ServeError> {
    let pairs_json = request
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest("'pairs' must be an array".into()))?;
    if pairs_json.len() > limits.max_pairs {
        return Err(ServeError::BadRequest(format!(
            "'pairs' exceeds the server limit of {} (got {})",
            limits.max_pairs,
            pairs_json.len()
        )));
    }
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs_json.len());
    for p in pairs_json {
        let items = p
            .as_arr()
            .filter(|items| items.len() == 2)
            .ok_or_else(|| ServeError::BadRequest("each pair must be [src, dst]".into()))?;
        let key = |v: &Json| -> Result<String, ServeError> {
            v.as_str()
                .map(str::to_string)
                .or_else(|| v.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad pair endpoint".into()))
        };
        let a = engine.store().resolve(&key(&items[0])?)?;
        let b = engine.store().resolve(&key(&items[1])?)?;
        pairs.push((a, b));
    }
    let scores = engine.score_pairs(pairs)?;
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("scores", Json::Arr(scores.into_iter().map(Json::Num).collect())),
    ]))
}

fn stats_op(engine: &QueryEngine) -> Json {
    let snap = engine.stats();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("index", Json::Str(engine.index_kind().to_string())),
        ("nodes", Json::Num(engine.store().num_nodes() as f64)),
        ("dim", Json::Num(engine.store().dim() as f64)),
        ("requests", Json::Num(snap.requests as f64)),
        ("cache_hits", Json::Num(snap.cache_hits as f64)),
        ("cache_misses", Json::Num(snap.cache_misses as f64)),
        ("rejected", Json::Num(snap.rejected as f64)),
        ("timeouts", Json::Num(snap.timeouts as f64)),
        ("overloads", Json::Num(snap.overloads as f64)),
        ("batches", Json::Num(snap.batches as f64)),
        ("snapshot_version", Json::Num(snap.snapshot_version as f64)),
        ("reloads", Json::Num(snap.reloads as f64)),
        ("last_reload_unix", Json::Num(snap.last_reload_unix as f64)),
        ("mean_us", Json::Num(snap.mean_us)),
        ("p50_us", Json::Num(snap.p50_us as f64)),
        ("p95_us", Json::Num(snap.p95_us as f64)),
        ("p99_us", Json::Num(snap.p99_us as f64)),
    ])
}

/// One-shot client: connect, send each request line, return one response
/// line per request. Used by `ehna query` and the integration tests.
/// Connect, read, and write are all bounded by a 10 s default timeout;
/// use [`query_lines_timeout`] to pick your own.
///
/// # Errors
/// Socket errors, timeouts, or a server that hangs up early.
pub fn query_lines<A: ToSocketAddrs>(addr: A, requests: &[String]) -> io::Result<Vec<String>> {
    query_lines_timeout(addr, requests, Duration::from_secs(10))
}

/// [`query_lines`] with an explicit per-operation timeout, so a stuck or
/// wedged server produces a clear error instead of blocking forever.
///
/// # Errors
/// Socket errors, a server that hangs up early, or `TimedOut` when the
/// server does not connect/respond within `timeout`.
pub fn query_lines_timeout<A: ToSocketAddrs>(
    addr: A,
    requests: &[String],
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let timeout = timeout.max(Duration::from_millis(1));
    let mut last_err: Option<io::Error> = None;
    let mut stream: Option<TcpStream> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let stream = stream.ok_or_else(|| {
        last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to no candidates")
        })
    })?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    let timed_out = |what: &str| {
        io::Error::new(
            io::ErrorKind::TimedOut,
            format!("server did not {what} within {timeout:?} — is it stuck or overloaded?"),
        )
    };
    for req in requests {
        writeln!(writer, "{req}").and_then(|()| writer.flush()).map_err(|e| {
            if is_timeout(&e) {
                timed_out("accept the request")
            } else {
                e
            }
        })?;
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| {
            if is_timeout(&e) {
                timed_out("respond")
            } else {
                e
            }
        })?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        responses.push(line.trim_end().to_string());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::index::BruteForceIndex;
    use crate::store::EmbeddingStore;
    use ehna_tgraph::{NameMap, NodeEmbeddings};

    fn engine() -> Arc<QueryEngine> {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let mut names = NameMap::new();
        for n in ["a", "b", "c", "far"] {
            names.intern(n);
        }
        let store = Arc::new(EmbeddingStore::new(emb, Some(names)).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    fn limits() -> RequestLimits {
        RequestLimits::default()
    }

    #[test]
    fn knn_by_name_over_protocol() {
        let e = engine();
        let resp = handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":2}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors.len(), 2);
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("b"));
        assert_eq!(neighbors[0].get("dist").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn knn_by_vector_with_explain() {
        let e = engine();
        let resp =
            handle_line(&e, &limits(), r#"{"op":"knn","vector":[5,5],"k":1,"explain":true}"#);
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("far"));
        let explain = resp.get("explain").unwrap();
        assert_eq!(explain.get("rank_agreement").and_then(Json::as_f64), Some(1.0));
        assert!(explain.get("scanned").and_then(Json::as_usize).unwrap() > 0);
    }

    #[test]
    fn knn_validates_k_bounds() {
        let e = engine();
        // k = 0 and k > num_nodes are rejected, not silently served.
        for bad in [
            r#"{"op":"knn","node":"a","k":0}"#,
            r#"{"op":"knn","node":"a","k":5}"#, // store has 4 nodes
        ] {
            let resp = handle_line(&e, &limits(), bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "accepted {bad}");
            let msg = resp.get("error").and_then(Json::as_str).unwrap();
            assert!(msg.contains("'k'"), "unhelpful error: {msg}");
        }
        // A tight max_k limit rejects an otherwise-valid k.
        let tight = RequestLimits { max_k: 1, max_pairs: 4096 };
        let resp = handle_line(&e, &tight, r#"{"op":"knn","node":"a","k":2}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        // The default k clamps to the store size instead of erroring.
        let resp = handle_line(&e, &limits(), r#"{"op":"knn","node":"a"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn score_respects_max_pairs() {
        let e = engine();
        let tight = RequestLimits { max_k: 1024, max_pairs: 1 };
        let resp = handle_line(&e, &tight, r#"{"op":"score","pairs":[["a","b"],["a","c"]]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        let resp = handle_line(&e, &tight, r#"{"op":"score","pairs":[["a","b"]]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn score_op_resolves_names_and_ids() {
        let e = engine();
        let resp = handle_line(&e, &limits(), r#"{"op":"score","pairs":[["a","b"],["0","far"]]}"#);
        let scores = resp.get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores[0].as_f64(), Some(1.0));
        assert_eq!(scores[1].as_f64(), Some(50.0));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let e = engine();
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"knn"}"#,
            r#"{"op":"knn","node":"nobody"}"#,
            r#"{"op":"knn","node":"a","vector":[1,2]}"#,
            r#"{"op":"score","pairs":[["a"]]}"#,
        ] {
            let resp = handle_line(&e, &limits(), bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "no error for {bad}");
            assert!(resp.get("error").is_some());
        }
        // Every rejected request is counted, and the engine still works.
        assert_eq!(e.stats().rejected, 6);
        let resp = handle_line(&e, &limits(), r#"{"op":"ping"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_op_reports_counters() {
        let e = engine();
        handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":1}"#);
        handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":1}"#);
        let resp = handle_line(&e, &limits(), r#"{"op":"stats"}"#);
        assert_eq!(resp.get("index").and_then(Json::as_str), Some("brute"));
        assert_eq!(resp.get("nodes").and_then(Json::as_usize), Some(4));
        assert_eq!(resp.get("requests").and_then(Json::as_usize), Some(2));
        assert_eq!(resp.get("cache_hits").and_then(Json::as_usize), Some(1));
        assert_eq!(resp.get("rejected").and_then(Json::as_usize), Some(0));
        assert_eq!(resp.get("overloads").and_then(Json::as_usize), Some(0));
        assert_eq!(resp.get("timeouts").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn capped_line_reader_bounds_memory() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"short\n".to_vec());
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        // Over-long line trips the cap even when the newline never comes.
        let mut r = Cursor::new(vec![b'x'; 64]);
        assert!(matches!(read_line_capped(&mut r, 16).unwrap(), LineRead::TooLong));
        // A partial trailing line is EOF, not a request.
        let mut r = Cursor::new(b"partial".to_vec());
        assert!(matches!(read_line_capped(&mut r, 1024).unwrap(), LineRead::Eof));
        // Exactly at the cap is fine.
        let mut r = Cursor::new(b"abcd\n".to_vec());
        assert!(matches!(read_line_capped(&mut r, 4).unwrap(), LineRead::Line(_)));
    }

    #[test]
    fn tcp_roundtrip_and_shutdown() {
        let e = engine();
        let server = Server::bind("127.0.0.1:0", Arc::clone(&e)).unwrap();
        let handle = server.spawn().unwrap();
        let responses = query_lines(
            handle.addr(),
            &[r#"{"op":"ping"}"#.to_string(), r#"{"op":"knn","node":"b","k":2}"#.to_string()],
        )
        .unwrap();
        assert_eq!(responses.len(), 2);
        let pong = Json::parse(&responses[0]).unwrap();
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        let knn = Json::parse(&responses[1]).unwrap();
        assert_eq!(knn.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown(); // must not hang
    }

    #[test]
    fn query_lines_times_out_on_unresponsive_server() {
        // A raw listener that accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let _conn = listener.accept();
            std::thread::sleep(Duration::from_millis(400));
        });
        let err = query_lines_timeout(
            addr,
            &[r#"{"op":"ping"}"#.to_string()],
            Duration::from_millis(100),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("respond"), "unclear error: {err}");
        sink.join().unwrap();
    }
}
