//! Line-delimited JSON over TCP, std-only, hardened for hostile clients.
//!
//! One request per line, one response per line. Ops:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"knn","node":"alice","k":10}
//! {"op":"knn","vector":[0.1,0.2,...],"k":5,"explain":true}
//! {"op":"score","pairs":[["alice","bob"],["3","7"]]}
//! {"op":"stats"}
//! {"op":"reload"}
//! ```
//!
//! Every response carries `"ok"`; failures add `"error"`. Scores and
//! distances are squared Euclidean (Eq. 5) — lower = stronger link.
//!
//! # Architecture: bounded worker pool
//!
//! Connections are NOT handled one-thread-per-socket. A non-blocking
//! accept loop admits sockets into a bounded queue drained by a fixed
//! pool of `ServerConfig::conn_workers` handler threads. Admission is
//! gated on `ServerConfig::max_connections` (queued + in-flight): a
//! client arriving past the cap receives a one-line
//! `{"ok":false,"error":"overloaded"}` response and is disconnected,
//! so a connection flood degrades into fast load-shedding instead of
//! unbounded thread spawn.
//!
//! Per-connection defenses:
//!
//! * read/write socket timeouts (`read_timeout` / `write_timeout`) cut
//!   off slow-loris clients that trickle or never complete a request;
//! * a length-capped line reader bounds request-line memory at
//!   `max_line_bytes` — an endless line gets a structured error and a
//!   disconnect, never an OOM;
//! * per-request limits (`RequestLimits::max_k` / `max_pairs`) bound
//!   the work and allocation a single request can demand.
//!
//! Shedding, timeouts, and malformed/over-limit requests are all
//! counted in [`EngineStats`](crate::EngineStats) and exposed through
//! the `stats` op.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] is deterministic: the accept loop runs
//! non-blocking and polls the stop flag (no self-connect hack), queued
//! but unserved sockets are dropped, idle connections have their read
//! half shut down so blocked reads wake immediately, and in-flight
//! requests get up to `drain_deadline` to finish writing their
//! responses before remaining sockets are force-closed and the workers
//! joined.

use crate::engine::QueryEngine;
use crate::index::KnnIndex;
use crate::json::Json;
use crate::stats::EngineStats;
use crate::store::EmbeddingStore;
use crate::ServeError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ehna_tgraph::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the non-blocking accept loop and idle workers poll the
/// stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// How often the shutdown drain re-checks the active-connection count.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Per-request protocol limits, enforced before any work is queued.
#[derive(Debug, Clone)]
pub struct RequestLimits {
    /// Largest `k` a `knn` request may ask for.
    pub max_k: usize,
    /// Largest number of pairs a `score` request may submit.
    pub max_pairs: usize,
    /// Largest number of sub-requests a `batch` envelope may carry.
    pub max_batch: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits { max_k: 1024, max_pairs: 4096, max_batch: 256 }
    }
}

/// Socket-layer tuning and protection knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler threads (the bounded pool).
    pub conn_workers: usize,
    /// Cap on concurrently admitted connections (queued + being
    /// served); arrivals beyond it are shed with an `overloaded` error.
    pub max_connections: usize,
    /// Socket read timeout: a connection that sends nothing for this
    /// long is dropped (counts in `timeouts`).
    pub read_timeout: Duration,
    /// Socket write timeout: a client that will not drain its response
    /// for this long is dropped (counts in `timeouts`).
    pub write_timeout: Duration,
    /// Longest accepted request line, in bytes; longer lines get a
    /// structured error and a disconnect.
    pub max_line_bytes: usize,
    /// Per-request protocol limits.
    pub limits: RequestLimits,
    /// How long `shutdown` waits for in-flight requests to finish
    /// before force-closing their sockets.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            conn_workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
            limits: RequestLimits::default(),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Builds a fresh `(store, index)` pair for the `reload` op — typically
/// by re-reading a snapshot file that `ehna stream` rewrote. Runs on a
/// connection-worker thread; queries keep flowing against the old
/// snapshot while it loads, and the swap itself is atomic.
pub type Reloader =
    Arc<dyn Fn() -> Result<(Arc<EmbeddingStore>, Box<dyn KnnIndex>), ServeError> + Send + Sync>;

/// A protocol backend: turns one request line into one response document.
///
/// [`Server`] owns everything about sockets — admission control, the
/// bounded worker pool, read/write timeouts, line caps, and deterministic
/// shutdown — while the handler decides what the lines *mean*. The
/// standard engine-backed server ([`EngineHandler`]) and the cluster
/// router are both `LineHandler`s, so the router inherits the whole
/// hardened front end for free.
pub trait LineHandler: Send + Sync {
    /// Answer one request line with one response document. Must not
    /// panic on malformed input — answer with `"ok":false` instead.
    fn handle_line(&self, line: &str) -> Json;

    /// The counters the socket layer records shed connections, socket
    /// timeouts, and oversized lines against.
    fn stats(&self) -> &EngineStats;
}

/// The standard [`LineHandler`]: requests answered by a [`QueryEngine`],
/// with an optional [`Reloader`] behind the `reload` op.
pub struct EngineHandler {
    engine: Arc<QueryEngine>,
    limits: RequestLimits,
    reloader: Option<Reloader>,
}

impl EngineHandler {
    /// Handler over `engine`, enforcing `limits` per request.
    pub fn new(
        engine: Arc<QueryEngine>,
        limits: RequestLimits,
        reloader: Option<Reloader>,
    ) -> Self {
        EngineHandler { engine, limits, reloader }
    }
}

impl LineHandler for EngineHandler {
    fn handle_line(&self, line: &str) -> Json {
        handle_line_with(&self.engine, &self.limits, self.reloader.as_ref(), line)
    }

    fn stats(&self) -> &EngineStats {
        self.engine.stats_raw()
    }
}

impl std::fmt::Debug for EngineHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandler")
            .field("engine", &self.engine)
            .field("reload", &self.reloader.is_some())
            .finish_non_exhaustive()
    }
}

/// What answers requests: either a [`QueryEngine`] wrapped at spawn time,
/// or an arbitrary [`LineHandler`] (the cluster router).
enum Backend {
    Engine { engine: Arc<QueryEngine>, reloader: Option<Reloader> },
    Handler(Arc<dyn LineHandler>),
}

/// State shared between the accept loop, the worker pool, and the
/// shutdown path.
struct ServerShared {
    handler: Arc<dyn LineHandler>,
    config: ServerConfig,
    stop: AtomicBool,
    /// Admitted connections not yet closed (queued + being served).
    active: AtomicUsize,
    /// Clones of in-service sockets, so shutdown can unblock their
    /// reads without waiting out the read timeout.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    backend: Backend,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            Backend::Engine { .. } => "engine",
            Backend::Handler(_) => "handler",
        };
        f.debug_struct("Server").field("backend", &backend).finish_non_exhaustive()
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, e.g.
    /// `127.0.0.1:0`) with default [`ServerConfig`].
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: Arc<QueryEngine>) -> io::Result<Server> {
        Server::bind_with(addr, engine, ServerConfig::default())
    }

    /// Bind `addr` with explicit socket limits and timeouts.
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<QueryEngine>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            backend: Backend::Engine { engine, reloader: None },
            config,
        })
    }

    /// Bind `addr` with an arbitrary [`LineHandler`] backend (the cluster
    /// router uses this to sit behind the same hardened socket layer as
    /// an engine-backed server).
    ///
    /// # Errors
    /// Socket errors.
    pub fn bind_handler<A: ToSocketAddrs>(
        addr: A,
        handler: Arc<dyn LineHandler>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            backend: Backend::Handler(handler),
            config,
        })
    }

    /// Enable the `reload` op: each request runs `reloader` and hot-swaps
    /// the returned snapshot into the engine. Without this, `reload`
    /// requests get a structured `"reload not configured"` error.
    ///
    /// # Panics
    /// Panics on a [`bind_handler`](Server::bind_handler) server — a
    /// custom handler owns its own reload semantics.
    #[must_use]
    pub fn with_reloader(mut self, reloader: Reloader) -> Self {
        match &mut self.backend {
            Backend::Engine { reloader: slot, .. } => *slot = Some(reloader),
            Backend::Handler(_) => panic!("with_reloader requires an engine-backed server"),
        }
        self
    }

    /// The bound address (reports the real port after binding port 0).
    ///
    /// # Errors
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until the process exits (or a fatal accept error).
    ///
    /// # Errors
    /// Fatal accept errors.
    pub fn run(self) -> io::Result<()> {
        let mut handle = self.spawn()?;
        let result = match handle.accept.take() {
            Some(join) => {
                join.join().unwrap_or_else(|_| Err(io::Error::other("accept loop panicked")))
            }
            None => Ok(()),
        };
        handle.shutdown_impl();
        result
    }

    /// Start the accept loop and the connection worker pool on
    /// background threads; the returned handle stops them.
    ///
    /// # Errors
    /// Socket errors while reading the bound address or switching the
    /// listener to non-blocking mode.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let handler: Arc<dyn LineHandler> = match self.backend {
            Backend::Engine { engine, reloader } => {
                Arc::new(EngineHandler::new(engine, self.config.limits.clone(), reloader))
            }
            Backend::Handler(handler) => handler,
        };
        let shared = Arc::new(ServerShared {
            handler,
            config: self.config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let (tx, rx) = bounded::<TcpStream>(shared.config.max_connections.max(1));
        let workers = (0..shared.config.conn_workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || conn_worker(&shared, &rx))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &shared, &tx))
        };
        Ok(ServerHandle { addr, shared, rx, accept: Some(accept), workers: Some(workers) })
    }
}

/// Handle to a running server; stops it deterministically on
/// [`shutdown`](ServerHandle::shutdown) or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    rx: Receiver<TcpStream>,
    accept: Option<JoinHandle<io::Result<()>>>,
    workers: Option<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests (bounded by
    /// `drain_deadline`), force-close stragglers, and join every
    /// thread. Returns once the server is fully torn down.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop is non-blocking and polls the stop flag, so
        // it exits within one poll interval — no self-connect needed.
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
        // Connections admitted but never picked up by a worker are
        // dropped unserved.
        while let Ok(stream) = self.rx.try_recv() {
            drop(stream);
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
        }
        // Wake workers blocked reading from idle connections; the
        // write half stays open so in-flight responses still go out.
        for conn in self.shared.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(DRAIN_POLL);
        }
        // Past the deadline: cut remaining sockets entirely.
        for conn in self.shared.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(workers) = self.workers.take() {
            for w in workers {
                let _ = w.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.workers.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Non-blocking accept loop: poll for sockets, shed past the cap, and
/// exit within one poll interval of the stop flag being set.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    tx: &Sender<TcpStream>,
) -> io::Result<()> {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, tx, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Admission control: configure socket timeouts, then either enqueue
/// the connection for the worker pool or shed it with an `overloaded`
/// response.
fn admit(shared: &ServerShared, tx: &Sender<TcpStream>, stream: TcpStream) {
    // Accepted sockets must be blocking regardless of what the
    // non-blocking listener hands us (platform-dependent inheritance).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
        shed(shared, &stream);
        return;
    }
    shared.active.fetch_add(1, Ordering::SeqCst);
    match tx.try_send(stream) {
        Ok(()) => {}
        Err(TrySendError::Full(stream) | TrySendError::Disconnected(stream)) => {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shed(shared, &stream);
        }
    }
}

/// Tell an un-admittable client it is being load-shed, then drop it.
fn shed(shared: &ServerShared, stream: &TcpStream) {
    shared.handler.stats().overloads.fetch_add(1, Ordering::Relaxed);
    let resp = error_response("overloaded");
    let mut writer = BufWriter::new(stream);
    let _ = writeln!(writer, "{resp}").and_then(|()| writer.flush());
    let _ = stream.shutdown(Shutdown::Both);
}

/// One worker of the bounded pool: serve connections from the queue
/// until shutdown.
fn conn_worker(shared: &Arc<ServerShared>, rx: &Receiver<TcpStream>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(stream) => handle_connection(shared, &stream),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Serve one admitted connection to completion, keeping the shutdown
/// registry and the active-connection count consistent.
fn handle_connection(shared: &ServerShared, stream: &TcpStream) {
    if !shared.stop.load(Ordering::SeqCst) {
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let registered = match stream.try_clone() {
            Ok(clone) => {
                shared.conns.lock().insert(conn_id, clone);
                true
            }
            Err(_) => false,
        };
        serve_connection(shared, stream);
        if registered {
            shared.conns.lock().remove(&conn_id);
        }
    }
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Outcome of one capped line read.
enum LineRead {
    /// A complete newline-terminated line (terminator stripped).
    Line(String),
    /// Clean end of stream (a trailing partial line is discarded).
    Eof,
    /// The line exceeded the byte cap before a newline arrived.
    TooLong,
}

/// Read one `\n`-terminated line of at most `max_bytes` bytes. Unlike
/// `BufRead::read_line`, an endless line cannot grow the buffer past
/// the cap — the caller is expected to error out and disconnect.
fn read_line_capped<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Ok(LineRead::Eof);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos > max_bytes {
                        (pos + 1, Some(LineRead::TooLong))
                    } else {
                        buf.extend_from_slice(&chunk[..pos]);
                        (pos + 1, Some(LineRead::Line(String::new())))
                    }
                }
                None => {
                    if buf.len() + chunk.len() > max_bytes {
                        (chunk.len(), Some(LineRead::TooLong))
                    } else {
                        buf.extend_from_slice(chunk);
                        (chunk.len(), None)
                    }
                }
            }
        };
        reader.consume(consumed);
        match done {
            Some(LineRead::Line(_)) => {
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            Some(other) => return Ok(other),
            None => {}
        }
    }
}

/// Whether an IO error is the socket timeout firing (platforms report
/// it as either `WouldBlock` or `TimedOut`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// The per-connection request/response loop.
fn serve_connection(shared: &ServerShared, stream: &TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let stats = shared.handler.stats();
    loop {
        match read_line_capped(&mut reader, shared.config.max_line_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                let resp = error_response(&format!(
                    "request line exceeds {} bytes",
                    shared.config.max_line_bytes
                ));
                let _ = writeln!(writer, "{resp}").and_then(|()| writer.flush());
                break;
            }
            Ok(LineRead::Line(line)) => {
                if shared.stop.load(Ordering::SeqCst) && line.trim().is_empty() {
                    break;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let response = shared.handler.handle_line(&line);
                if let Err(e) = writeln!(writer, "{response}").and_then(|()| writer.flush()) {
                    if is_timeout(&e) {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                // Draining: the in-flight request got its response;
                // close instead of waiting for another.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) => {
                if is_timeout(&e) {
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }
}

/// Process one request line into one response document. Pure with respect
/// to IO — exercised directly by unit tests, and by the worker pool above.
/// Malformed or over-limit requests are answered with `"ok":false` and
/// counted in the engine's `rejected` stat.
pub fn handle_line(engine: &QueryEngine, limits: &RequestLimits, line: &str) -> Json {
    handle_line_with(engine, limits, None, line)
}

/// [`handle_line`] with an optional [`Reloader`] backing the `reload` op.
pub fn handle_line_with(
    engine: &QueryEngine,
    limits: &RequestLimits,
    reloader: Option<&Reloader>,
    line: &str,
) -> Json {
    let reject = |msg: &str| {
        engine.stats_raw().rejected.fetch_add(1, Ordering::Relaxed);
        error_response(msg)
    };
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return reject(&format!("bad json: {e}")),
    };
    match dispatch(engine, limits, reloader, &request) {
        Ok(resp) => resp,
        Err(e) => reject(&e.to_string()),
    }
}

fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

fn dispatch(
    engine: &QueryEngine,
    limits: &RequestLimits,
    reloader: Option<&Reloader>,
    request: &Json,
) -> Result<Json, ServeError> {
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing 'op'".into()))?;
    // Dispatched == counted (success or not), so per-op totals reconcile
    // with `requests` across a cluster; unknown ops never reach a handler
    // and are only counted in `rejected`.
    engine.stats_raw().ops.record(op);
    match op {
        "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])),
        "knn" => knn_op(engine, limits, request),
        "score" => score_op(engine, limits, request),
        "stats" => Ok(stats_op(engine)),
        "reload" => reload_op(engine, reloader),
        "batch" => batch_op(engine, limits, request),
        other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
    }
}

/// Run a bounded list of sub-requests in order and return their responses
/// in one envelope. Sub-request failures are reported in place (and
/// counted in `rejected`) without failing the envelope; `reload` and
/// nested `batch` are refused — a batch is a read-path convenience, not a
/// control plane.
fn batch_op(
    engine: &QueryEngine,
    limits: &RequestLimits,
    request: &Json,
) -> Result<Json, ServeError> {
    let requests = request
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest("'requests' must be an array".into()))?;
    if requests.len() > limits.max_batch {
        return Err(ServeError::BadRequest(format!(
            "'requests' exceeds the server limit of {} (got {})",
            limits.max_batch,
            requests.len()
        )));
    }
    let mut responses = Vec::with_capacity(requests.len());
    for sub in requests {
        let sub_reject = |msg: &str| {
            engine.stats_raw().rejected.fetch_add(1, Ordering::Relaxed);
            error_response(msg)
        };
        let resp = match sub.get("op").and_then(Json::as_str) {
            Some("batch") | Some("reload") => sub_reject("op not allowed inside a batch"),
            _ => match dispatch(engine, limits, None, sub) {
                Ok(resp) => resp,
                Err(e) => sub_reject(&e.to_string()),
            },
        };
        responses.push(resp);
    }
    Ok(Json::obj([("ok", Json::Bool(true)), ("responses", Json::Arr(responses))]))
}

/// Run the configured [`Reloader`] and hot-swap its snapshot into the
/// engine. Queries on other connections keep being answered (by the old
/// snapshot) for the whole duration — only the final pointer swap is
/// synchronized.
fn reload_op(engine: &QueryEngine, reloader: Option<&Reloader>) -> Result<Json, ServeError> {
    let reloader =
        reloader.ok_or_else(|| ServeError::BadRequest("reload not configured".into()))?;
    let (store, index) = reloader()?;
    let nodes = store.num_nodes();
    let dim = store.dim();
    let version = engine.swap_snapshot(store, index);
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("version", Json::Num(version.0 as f64)),
        ("nodes", Json::Num(nodes as f64)),
        ("dim", Json::Num(dim as f64)),
    ]))
}

fn knn_op(
    engine: &QueryEngine,
    limits: &RequestLimits,
    request: &Json,
) -> Result<Json, ServeError> {
    let num_nodes = engine.store().num_nodes();
    // Reject before k parsing: no k is valid against zero rows, and the
    // default-k path must not manufacture one (the router mirrors this
    // check word-for-word — the byte-equivalence gate covers n = 0).
    if num_nodes == 0 {
        return Err(ServeError::BadRequest("knn on an empty table".into()));
    }
    let k = match request.get("k") {
        Some(v) => {
            let k = v.as_usize().ok_or_else(|| ServeError::BadRequest("bad 'k'".into()))?;
            if k == 0 || k > num_nodes {
                return Err(ServeError::BadRequest(format!(
                    "'k' must be between 1 and {num_nodes} (got {k})"
                )));
            }
            if k > limits.max_k {
                return Err(ServeError::BadRequest(format!(
                    "'k' exceeds the server limit of {} (got {k})",
                    limits.max_k
                )));
            }
            k
        }
        None => 10.min(limits.max_k).min(num_nodes),
    };
    let explain = request.get("explain").and_then(Json::as_bool).unwrap_or(false);
    let result = match (request.get("node"), request.get("vector")) {
        (Some(node), None) => {
            let key = node
                .as_str()
                .map(str::to_string)
                .or_else(|| node.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad 'node'".into()))?;
            let id = engine.store().resolve(&key)?;
            engine.knn_node(id, k, explain)?
        }
        (None, Some(vector)) => {
            let items = vector
                .as_arr()
                .ok_or_else(|| ServeError::BadRequest("'vector' must be an array".into()))?;
            let q: Vec<f32> = items
                .iter()
                .map(|v| v.as_f64().map(|x| x as f32))
                .collect::<Option<_>>()
                .ok_or_else(|| ServeError::BadRequest("non-numeric vector entry".into()))?;
            engine.knn_vector(q, k, explain)?
        }
        _ => return Err(ServeError::BadRequest("need exactly one of 'node' or 'vector'".into())),
    };
    let neighbors = result
        .neighbors
        .iter()
        .map(|nb| {
            Json::obj([
                ("node", Json::Str(engine.store().label(nb.id))),
                ("id", Json::Num(nb.id.index() as f64)),
                ("dist", Json::Num(nb.dist)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("k".to_string(), Json::Num(k as f64)),
        ("neighbors".to_string(), Json::Arr(neighbors)),
        ("cached".to_string(), Json::Bool(result.cached)),
    ];
    if let Some(info) = result.info {
        // `rank_agreement` is only meaningful when the brute-force
        // comparison actually ran; `null` otherwise (never a fabricated
        // 1.0).
        let agreement = result.agreement.map_or(Json::Null, Json::Num);
        fields.push((
            "explain".to_string(),
            Json::obj([
                (
                    "probed_centroids",
                    Json::Arr(info.probed.iter().map(|&c| Json::Num(c as f64)).collect()),
                ),
                ("scanned", Json::Num(info.scanned as f64)),
                ("rank_agreement", agreement),
            ]),
        ));
    }
    Ok(Json::Obj(fields))
}

fn score_op(
    engine: &QueryEngine,
    limits: &RequestLimits,
    request: &Json,
) -> Result<Json, ServeError> {
    let pairs_json = request
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest("'pairs' must be an array".into()))?;
    if pairs_json.len() > limits.max_pairs {
        return Err(ServeError::BadRequest(format!(
            "'pairs' exceeds the server limit of {} (got {})",
            limits.max_pairs,
            pairs_json.len()
        )));
    }
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs_json.len());
    for p in pairs_json {
        let items = p
            .as_arr()
            .filter(|items| items.len() == 2)
            .ok_or_else(|| ServeError::BadRequest("each pair must be [src, dst]".into()))?;
        let key = |v: &Json| -> Result<String, ServeError> {
            v.as_str()
                .map(str::to_string)
                .or_else(|| v.as_usize().map(|i| i.to_string()))
                .ok_or_else(|| ServeError::BadRequest("bad pair endpoint".into()))
        };
        let a = engine.store().resolve(&key(&items[0])?)?;
        let b = engine.store().resolve(&key(&items[1])?)?;
        pairs.push((a, b));
    }
    let scores = engine.score_pairs(pairs)?;
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("scores", Json::Arr(scores.into_iter().map(Json::Num).collect())),
    ]))
}

fn stats_op(engine: &QueryEngine) -> Json {
    let snap = engine.stats();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("role", Json::Str(snap.role.as_str().to_string())),
        ("shard_id", snap.shard_id.map_or(Json::Null, |s| Json::Num(s as f64))),
        ("index", Json::Str(engine.index_kind().to_string())),
        ("nprobe", engine.index_nprobe().map_or(Json::Null, |n| Json::Num(n as f64))),
        ("nodes", Json::Num(engine.store().num_nodes() as f64)),
        ("dim", Json::Num(engine.store().dim() as f64)),
        ("requests", Json::Num(snap.requests as f64)),
        ("cache_hits", Json::Num(snap.cache_hits as f64)),
        ("cache_misses", Json::Num(snap.cache_misses as f64)),
        ("rejected", Json::Num(snap.rejected as f64)),
        ("timeouts", Json::Num(snap.timeouts as f64)),
        ("overloads", Json::Num(snap.overloads as f64)),
        ("batches", Json::Num(snap.batches as f64)),
        ("snapshot_version", Json::Num(snap.snapshot_version as f64)),
        ("reloads", Json::Num(snap.reloads as f64)),
        ("last_reload_unix", Json::Num(snap.last_reload_unix as f64)),
        ("mean_us", Json::Num(snap.mean_us)),
        ("p50_us", Json::Num(snap.p50_us as f64)),
        ("p95_us", Json::Num(snap.p95_us as f64)),
        ("p99_us", Json::Num(snap.p99_us as f64)),
        ("ops", op_counts_json(&snap.ops)),
    ])
}

/// Per-op counters as a JSON object (shared by the engine's `stats` op
/// and the cluster router's).
pub fn op_counts_json(ops: &crate::stats::OpCounts) -> Json {
    Json::obj([
        ("ping", Json::Num(ops.ping as f64)),
        ("knn", Json::Num(ops.knn as f64)),
        ("score", Json::Num(ops.score as f64)),
        ("stats", Json::Num(ops.stats as f64)),
        ("reload", Json::Num(ops.reload as f64)),
        ("batch", Json::Num(ops.batch as f64)),
        ("resolve", Json::Num(ops.resolve as f64)),
    ])
}

/// One-shot client: connect, send each request line, return one response
/// line per request. Used by `ehna query` and the integration tests.
/// Connect, read, and write are all bounded by a 10 s default timeout;
/// use [`query_lines_timeout`] to pick your own.
///
/// # Errors
/// Socket errors, timeouts, or a server that hangs up early.
pub fn query_lines<A: ToSocketAddrs>(addr: A, requests: &[String]) -> io::Result<Vec<String>> {
    query_lines_timeout(addr, requests, Duration::from_secs(10))
}

/// [`query_lines`] with an explicit per-operation timeout, so a stuck or
/// wedged server produces a clear error instead of blocking forever.
///
/// # Errors
/// Socket errors, a server that hangs up early, or `TimedOut` when the
/// server does not connect/respond within `timeout`.
pub fn query_lines_timeout<A: ToSocketAddrs>(
    addr: A,
    requests: &[String],
    timeout: Duration,
) -> io::Result<Vec<String>> {
    query_lines_detailed(addr, requests, timeout).map_err(io::Error::from)
}

/// How a [`query_lines_detailed`] call failed — and, crucially, *when*.
///
/// A replica that refuses the TCP handshake is **dead** (restart it, or
/// route around it permanently); one that accepts the connection and then
/// stalls is **slow** (maybe transiently overloaded — back off, retry
/// later). The cluster router's failover and circuit-breaking logic keys
/// off exactly this distinction, and `ehna query` reports it to humans.
#[derive(Debug)]
pub enum QueryError {
    /// The TCP connection could not be established at all: the server is
    /// unreachable (down, wrong address, refused).
    Connect(io::Error),
    /// The server accepted the connection but a request could not be
    /// written or answered within the timeout: the server is up but slow
    /// or wedged. `during` says which side stalled (`"accept the
    /// request"` for writes, `"respond"` for reads).
    Timeout {
        /// What the server failed to do in time.
        during: &'static str,
        /// The per-operation deadline that expired.
        timeout: Duration,
    },
    /// The server closed the connection before answering every request.
    Closed,
    /// Any other mid-stream IO failure (reset, broken pipe, ...).
    Io(io::Error),
}

impl QueryError {
    /// Whether the failure happened before the connection existed —
    /// i.e. the server looks dead rather than slow.
    pub fn is_connect(&self) -> bool {
        matches!(self, QueryError::Connect(_))
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Connect(e) => write!(f, "could not connect: {e}"),
            QueryError::Timeout { during, timeout } => {
                write!(f, "server did not {during} within {timeout:?} — is it stuck or overloaded?")
            }
            QueryError::Closed => write!(f, "server closed the connection"),
            QueryError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryError> for io::Error {
    /// Collapse back to the untyped `io::Error` surface (kinds and
    /// messages unchanged from the pre-typed API, so existing callers
    /// and tests see identical behavior).
    fn from(e: QueryError) -> io::Error {
        match e {
            QueryError::Connect(inner) | QueryError::Io(inner) => inner,
            QueryError::Timeout { .. } => io::Error::new(io::ErrorKind::TimedOut, e.to_string()),
            QueryError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
        }
    }
}

/// [`query_lines_timeout`] with a typed error that distinguishes a dead
/// server (connect failure) from a slow one (mid-stream timeout) — the
/// signal the router's failover needs, conflated by `io::Error` alone.
///
/// # Errors
/// See [`QueryError`].
pub fn query_lines_detailed<A: ToSocketAddrs>(
    addr: A,
    requests: &[String],
    timeout: Duration,
) -> Result<Vec<String>, QueryError> {
    let timeout = timeout.max(Duration::from_millis(1));
    let mut last_err: Option<io::Error> = None;
    let mut stream: Option<TcpStream> = None;
    for candidate in addr.to_socket_addrs().map_err(QueryError::Connect)? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let stream = stream.ok_or_else(|| {
        QueryError::Connect(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to no candidates")
        }))
    })?;
    stream.set_read_timeout(Some(timeout)).map_err(QueryError::Io)?;
    stream.set_write_timeout(Some(timeout)).map_err(QueryError::Io)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(QueryError::Io)?);
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    for req in requests {
        writeln!(writer, "{req}").and_then(|()| writer.flush()).map_err(|e| {
            if is_timeout(&e) {
                QueryError::Timeout { during: "accept the request", timeout }
            } else {
                QueryError::Io(e)
            }
        })?;
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| {
            if is_timeout(&e) {
                QueryError::Timeout { during: "respond", timeout }
            } else {
                QueryError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(QueryError::Closed);
        }
        responses.push(line.trim_end().to_string());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::index::BruteForceIndex;
    use crate::store::EmbeddingStore;
    use ehna_tgraph::{NameMap, NodeEmbeddings};

    fn engine() -> Arc<QueryEngine> {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let mut names = NameMap::new();
        for n in ["a", "b", "c", "far"] {
            names.intern(n);
        }
        let store = Arc::new(EmbeddingStore::new(emb, Some(names)).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    fn limits() -> RequestLimits {
        RequestLimits::default()
    }

    #[test]
    fn knn_by_name_over_protocol() {
        let e = engine();
        let resp = handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":2}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors.len(), 2);
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("b"));
        assert_eq!(neighbors[0].get("dist").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn knn_by_vector_with_explain() {
        let e = engine();
        let resp =
            handle_line(&e, &limits(), r#"{"op":"knn","vector":[5,5],"k":1,"explain":true}"#);
        let neighbors = resp.get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("far"));
        let explain = resp.get("explain").unwrap();
        assert_eq!(explain.get("rank_agreement").and_then(Json::as_f64), Some(1.0));
        assert!(explain.get("scanned").and_then(Json::as_usize).unwrap() > 0);
    }

    #[test]
    fn knn_validates_k_bounds() {
        let e = engine();
        // k = 0 and k > num_nodes are rejected, not silently served.
        for bad in [
            r#"{"op":"knn","node":"a","k":0}"#,
            r#"{"op":"knn","node":"a","k":5}"#, // store has 4 nodes
        ] {
            let resp = handle_line(&e, &limits(), bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "accepted {bad}");
            let msg = resp.get("error").and_then(Json::as_str).unwrap();
            assert!(msg.contains("'k'"), "unhelpful error: {msg}");
        }
        // A tight max_k limit rejects an otherwise-valid k.
        let tight = RequestLimits { max_k: 1, ..RequestLimits::default() };
        let resp = handle_line(&e, &tight, r#"{"op":"knn","node":"a","k":2}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        // The default k clamps to the store size instead of erroring.
        let resp = handle_line(&e, &limits(), r#"{"op":"knn","node":"a"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn score_respects_max_pairs() {
        let e = engine();
        let tight = RequestLimits { max_pairs: 1, ..RequestLimits::default() };
        let resp = handle_line(&e, &tight, r#"{"op":"score","pairs":[["a","b"],["a","c"]]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        let resp = handle_line(&e, &tight, r#"{"op":"score","pairs":[["a","b"]]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn score_op_resolves_names_and_ids() {
        let e = engine();
        let resp = handle_line(&e, &limits(), r#"{"op":"score","pairs":[["a","b"],["0","far"]]}"#);
        let scores = resp.get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores[0].as_f64(), Some(1.0));
        assert_eq!(scores[1].as_f64(), Some(50.0));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let e = engine();
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"knn"}"#,
            r#"{"op":"knn","node":"nobody"}"#,
            r#"{"op":"knn","node":"a","vector":[1,2]}"#,
            r#"{"op":"score","pairs":[["a"]]}"#,
        ] {
            let resp = handle_line(&e, &limits(), bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "no error for {bad}");
            assert!(resp.get("error").is_some());
        }
        // Every rejected request is counted, and the engine still works.
        assert_eq!(e.stats().rejected, 6);
        let resp = handle_line(&e, &limits(), r#"{"op":"ping"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_op_reports_counters() {
        let e = engine();
        handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":1}"#);
        handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":1}"#);
        let resp = handle_line(&e, &limits(), r#"{"op":"stats"}"#);
        assert_eq!(resp.get("index").and_then(Json::as_str), Some("brute"));
        assert_eq!(resp.get("nprobe"), Some(&Json::Null), "brute probes nothing");
        assert_eq!(resp.get("nodes").and_then(Json::as_usize), Some(4));
        assert_eq!(resp.get("requests").and_then(Json::as_usize), Some(2));
        assert_eq!(resp.get("cache_hits").and_then(Json::as_usize), Some(1));
        assert_eq!(resp.get("rejected").and_then(Json::as_usize), Some(0));
        assert_eq!(resp.get("overloads").and_then(Json::as_usize), Some(0));
        assert_eq!(resp.get("timeouts").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn stats_op_reports_role_and_per_op_counts() {
        let e = engine();
        handle_line(&e, &limits(), r#"{"op":"ping"}"#);
        handle_line(&e, &limits(), r#"{"op":"knn","node":"a","k":1}"#);
        let resp = handle_line(&e, &limits(), r#"{"op":"stats"}"#);
        // Identity defaults: a plain engine is a standalone node.
        assert_eq!(resp.get("role").and_then(Json::as_str), Some("standalone"));
        assert_eq!(resp.get("shard_id"), Some(&Json::Null));
        let ops = resp.get("ops").expect("stats carries per-op counters");
        assert_eq!(ops.get("ping").and_then(Json::as_usize), Some(1));
        assert_eq!(ops.get("knn").and_then(Json::as_usize), Some(1));
        assert_eq!(ops.get("stats").and_then(Json::as_usize), Some(1));
        assert_eq!(ops.get("score").and_then(Json::as_usize), Some(0));
        // Declared identity shows up on the wire.
        e.stats_raw().set_identity(crate::stats::Role::Shard, Some(1));
        let resp = handle_line(&e, &limits(), r#"{"op":"stats"}"#);
        assert_eq!(resp.get("role").and_then(Json::as_str), Some("shard"));
        assert_eq!(resp.get("shard_id").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn batch_op_runs_sub_requests_in_order() {
        let e = engine();
        let resp = handle_line(
            &e,
            &limits(),
            r#"{"op":"batch","requests":[{"op":"ping"},{"op":"knn","node":"a","k":2},{"op":"score","pairs":[["a","b"]]}]}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let subs = resp.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].get("pong"), Some(&Json::Bool(true)));
        let neighbors = subs[1].get("neighbors").and_then(Json::as_arr).unwrap();
        assert_eq!(neighbors[0].get("node").and_then(Json::as_str), Some("b"));
        let scores = subs[2].get("scores").and_then(Json::as_arr).unwrap();
        assert_eq!(scores[0].as_f64(), Some(1.0));
    }

    #[test]
    fn batch_op_reports_sub_failures_in_place() {
        let e = engine();
        let resp = handle_line(
            &e,
            &limits(),
            r#"{"op":"batch","requests":[{"op":"knn","node":"nobody"},{"op":"ping"},{"op":"reload"},{"op":"batch","requests":[]}]}"#,
        );
        // The envelope succeeds; the bad sub-requests fail individually.
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let subs = resp.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(subs[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(subs[1].get("ok"), Some(&Json::Bool(true)));
        for nested in [&subs[2], &subs[3]] {
            assert_eq!(nested.get("ok"), Some(&Json::Bool(false)));
            let msg = nested.get("error").and_then(Json::as_str).unwrap();
            assert!(msg.contains("batch"), "unhelpful error: {msg}");
        }
        // Over-limit envelopes are refused outright.
        let tight = RequestLimits { max_batch: 1, ..RequestLimits::default() };
        let resp =
            handle_line(&e, &tight, r#"{"op":"batch","requests":[{"op":"ping"},{"op":"ping"}]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("limit"));
    }

    #[test]
    fn capped_line_reader_bounds_memory() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"short\n".to_vec());
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        // Over-long line trips the cap even when the newline never comes.
        let mut r = Cursor::new(vec![b'x'; 64]);
        assert!(matches!(read_line_capped(&mut r, 16).unwrap(), LineRead::TooLong));
        // A partial trailing line is EOF, not a request.
        let mut r = Cursor::new(b"partial".to_vec());
        assert!(matches!(read_line_capped(&mut r, 1024).unwrap(), LineRead::Eof));
        // Exactly at the cap is fine.
        let mut r = Cursor::new(b"abcd\n".to_vec());
        assert!(matches!(read_line_capped(&mut r, 4).unwrap(), LineRead::Line(_)));
    }

    #[test]
    fn tcp_roundtrip_and_shutdown() {
        let e = engine();
        let server = Server::bind("127.0.0.1:0", Arc::clone(&e)).unwrap();
        let handle = server.spawn().unwrap();
        let responses = query_lines(
            handle.addr(),
            &[r#"{"op":"ping"}"#.to_string(), r#"{"op":"knn","node":"b","k":2}"#.to_string()],
        )
        .unwrap();
        assert_eq!(responses.len(), 2);
        let pong = Json::parse(&responses[0]).unwrap();
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        let knn = Json::parse(&responses[1]).unwrap();
        assert_eq!(knn.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown(); // must not hang
    }

    #[test]
    fn query_lines_times_out_on_unresponsive_server() {
        // A raw listener that accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let _conn = listener.accept();
            std::thread::sleep(Duration::from_millis(400));
        });
        let err = query_lines_timeout(
            addr,
            &[r#"{"op":"ping"}"#.to_string()],
            Duration::from_millis(100),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("respond"), "unclear error: {err}");
        sink.join().unwrap();
    }

    #[test]
    fn detailed_client_errors_distinguish_dead_from_slow() {
        // Dead server: nothing is listening, so the failure is Connect.
        let unused = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = unused.local_addr().unwrap();
        drop(unused);
        let err = query_lines_detailed(
            dead_addr,
            &[r#"{"op":"ping"}"#.to_string()],
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert!(err.is_connect(), "expected Connect, got {err:?}");
        assert!(err.to_string().contains("connect"), "unclear error: {err}");

        // Slow server: accepts, never answers — a mid-stream Timeout.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let _conn = listener.accept();
            std::thread::sleep(Duration::from_millis(400));
        });
        let err = query_lines_detailed(
            addr,
            &[r#"{"op":"ping"}"#.to_string()],
            Duration::from_millis(100),
        )
        .unwrap_err();
        assert!(
            matches!(err, QueryError::Timeout { during: "respond", .. }),
            "expected a respond timeout, got {err:?}"
        );
        assert!(!err.is_connect());
        sink.join().unwrap();
    }

    #[test]
    fn handler_backed_server_serves_and_counts() {
        struct Echo {
            stats: EngineStats,
        }
        impl LineHandler for Echo {
            fn handle_line(&self, line: &str) -> Json {
                Json::obj([("ok", Json::Bool(true)), ("echo", Json::Str(line.to_string()))])
            }
            fn stats(&self) -> &EngineStats {
                &self.stats
            }
        }
        let handler = Arc::new(Echo { stats: EngineStats::default() });
        let server =
            Server::bind_handler("127.0.0.1:0", Arc::clone(&handler) as _, ServerConfig::default())
                .unwrap();
        let handle = server.spawn().unwrap();
        let responses = query_lines(handle.addr(), &["hello".to_string()]).unwrap();
        let resp = Json::parse(&responses[0]).unwrap();
        assert_eq!(resp.get("echo").and_then(Json::as_str), Some("hello"));
        handle.shutdown();
    }
}
