//! # ehna-serve — embedding serving for EHNA
//!
//! Turns a trained [`NodeEmbeddings`](ehna_tgraph::NodeEmbeddings)
//! snapshot into a queryable service:
//!
//! * [`EmbeddingStore`] — the immutable snapshot (rows + optional name
//!   interner), shared across threads behind an `Arc`.
//! * [`BruteForceIndex`] / [`IvfIndex`] — exact and cluster-pruned k-NN
//!   over the rows; the brute-force scan doubles as the correctness
//!   oracle for the approximate index.
//! * [`QueryEngine`] — a batched multi-threaded query layer with a
//!   hot-node LRU cache and latency counters.
//! * [`Server`] — line-delimited JSON over TCP (std-only) behind a
//!   bounded connection-worker pool with admission control, socket
//!   timeouts, and capped request lines ([`ServerConfig`]), plus the
//!   [`query_lines`] / [`query_lines_timeout`] one-shot clients.
//!
//! All similarity is squared Euclidean distance — the model's native
//! metric (paper Eq. 5) — so served rankings agree with `ehna-eval`.
//! Lower scores mean stronger predicted links.
//!
//! ```
//! use ehna_serve::{BruteForceIndex, EmbeddingStore, EngineConfig, QueryEngine};
//! use ehna_tgraph::{NodeEmbeddings, NodeId};
//! use std::sync::Arc;
//!
//! let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 1.0, 0.0, 9.0, 9.0]);
//! let store = Arc::new(EmbeddingStore::new(emb, None).unwrap());
//! let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
//! let engine = QueryEngine::new(store, index, EngineConfig::default());
//! let hits = engine.knn_node(NodeId(0), 1, false).unwrap();
//! assert_eq!(hits.neighbors[0].id, NodeId(1));
//! ```

pub mod cache;
pub mod engine;
pub mod index;
pub mod json;
pub mod server;
pub mod stats;
pub mod store;

pub use engine::{EngineConfig, KnnResult, QueryEngine, SnapshotVersion};
pub use index::{BruteForceIndex, IvfConfig, IvfIndex, KnnIndex, Neighbor, SearchInfo};
pub use json::Json;
pub use server::Reloader;
pub use server::{
    handle_line, op_counts_json, query_lines, query_lines_detailed, query_lines_timeout,
    EngineHandler, LineHandler, QueryError, RequestLimits, Server, ServerConfig, ServerHandle,
};
pub use stats::{EngineStats, LatencyHistogram, OpCounters, OpCounts, Role, StatsSnapshot};
pub use store::{canonical_node_id, EmbeddingStore, RowDistance, RowSource, MAX_NAME_LEN};

use std::fmt;
use std::io;

/// Everything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying socket or file IO failed.
    Io(io::Error),
    /// A snapshot or names file was malformed or inconsistent.
    Snapshot(String),
    /// A query referenced a node that is not in the snapshot.
    UnknownNode(String),
    /// A query vector's length differs from the snapshot dimension.
    Dimension {
        /// Snapshot dimensionality.
        expected: usize,
        /// Query vector length.
        got: usize,
    },
    /// A protocol request was malformed.
    BadRequest(String),
    /// The engine's workers have shut down.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Snapshot(msg) => write!(f, "bad snapshot: {msg}"),
            ServeError::UnknownNode(key) => write!(f, "unknown node '{key}'"),
            ServeError::Dimension { expected, got } => {
                write!(f, "query dimension {got} does not match snapshot dimension {expected}")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Closed => f.write_str("query engine is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
