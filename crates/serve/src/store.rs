//! The immutable serving snapshot: a trained embedding matrix plus the
//! optional name interner, loadable once and shared across every worker
//! and connection behind an `Arc`.

use crate::ServeError;
use ehna_tgraph::{NameMap, NodeEmbeddings, NodeId};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// An immutable, shareable store over a trained embedding snapshot.
///
/// Scoring follows the model's native metric (squared Euclidean distance,
/// paper Eq. 5): **lower scores mean stronger predicted links**, matching
/// the ranking `ehna-eval` produces, so serve-time answers agree with the
/// offline evaluation.
#[derive(Debug)]
pub struct EmbeddingStore {
    emb: NodeEmbeddings,
    names: Option<NameMap>,
}

impl EmbeddingStore {
    /// Wrap an embedding matrix, optionally with the name interner the
    /// graph was built with.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] if the name count differs from the row
    /// count.
    pub fn new(emb: NodeEmbeddings, names: Option<NameMap>) -> Result<Self, ServeError> {
        if let Some(ref map) = names {
            if map.len() != emb.num_nodes() {
                return Err(ServeError::Snapshot(format!(
                    "name map has {} names but snapshot has {} nodes",
                    map.len(),
                    emb.num_nodes()
                )));
            }
        }
        Ok(EmbeddingStore { emb, names })
    }

    /// Load a snapshot file (and optional names file) from disk.
    ///
    /// # Errors
    /// IO failures or malformed files.
    pub fn open<P: AsRef<Path>>(snapshot: P, names: Option<P>) -> Result<Self, ServeError> {
        let emb =
            NodeEmbeddings::load_path(snapshot).map_err(|e| ServeError::Snapshot(e.to_string()))?;
        let names = match names {
            Some(path) => Some(NameMap::load(BufReader::new(File::open(path)?))?),
            None => None,
        };
        EmbeddingStore::new(emb, names)
    }

    /// The embedding matrix.
    pub fn embeddings(&self) -> &NodeEmbeddings {
        &self.emb
    }

    /// Number of serveable nodes.
    pub fn num_nodes(&self) -> usize {
        self.emb.num_nodes()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.emb.dim()
    }

    /// Resolve a query key to a node: an interned name when a name map is
    /// loaded, else (or as fallback) a decimal dense id.
    pub fn resolve(&self, key: &str) -> Result<NodeId, ServeError> {
        if let Some(ref names) = self.names {
            if let Some(id) = names.get(key) {
                return Ok(id);
            }
        }
        if let Ok(raw) = key.parse::<u32>() {
            if (raw as usize) < self.num_nodes() {
                return Ok(NodeId(raw));
            }
        }
        Err(ServeError::UnknownNode(key.to_string()))
    }

    /// Resolve a key through the name map only — no decimal-id fallback.
    ///
    /// Shard stores need this: their rows are locally indexed, so a
    /// *global* decimal key must never be misread as a local row number.
    /// The shard planner writes every shard a names file of global
    /// labels, and the router resolves numeric keys by ownership
    /// arithmetic instead.
    pub fn resolve_name(&self, key: &str) -> Option<NodeId> {
        self.names.as_ref().and_then(|names| names.get(key))
    }

    /// Display label for a node: its interned name when known, else the
    /// decimal id.
    pub fn label(&self, id: NodeId) -> String {
        match self.names.as_ref().and_then(|m| m.name(id)) {
            Some(name) => name.to_string(),
            None => id.index().to_string(),
        }
    }

    /// The row of `id`.
    ///
    /// # Errors
    /// [`ServeError::UnknownNode`] when out of range.
    pub fn row(&self, id: NodeId) -> Result<&[f32], ServeError> {
        if id.index() >= self.num_nodes() {
            return Err(ServeError::UnknownNode(id.index().to_string()));
        }
        Ok(self.emb.get(id))
    }

    /// Link score of a node pair: squared Euclidean distance (Eq. 5).
    /// Lower = stronger predicted link.
    ///
    /// # Errors
    /// [`ServeError::UnknownNode`] when either endpoint is out of range.
    pub fn link_score(&self, a: NodeId, b: NodeId) -> Result<f64, ServeError> {
        self.row(a)?;
        self.row(b)?;
        Ok(self.emb.sq_dist(a, b))
    }

    /// Squared Euclidean distance between a free query vector and a row.
    pub(crate) fn sq_dist_to(&self, query: &[f32], id: NodeId) -> f64 {
        sq_dist(query, self.emb.get(id))
    }
}

/// Squared Euclidean distance between two equal-length vectors.
pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named_store() -> EmbeddingStore {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0]);
        let mut names = NameMap::new();
        for n in ["alice", "bob", "carol"] {
            names.intern(n);
        }
        EmbeddingStore::new(emb, Some(names)).unwrap()
    }

    #[test]
    fn resolves_names_and_ids() {
        let s = named_store();
        assert_eq!(s.resolve("bob").unwrap(), NodeId(1));
        assert_eq!(s.resolve("2").unwrap(), NodeId(2));
        assert!(s.resolve("dave").is_err());
        assert!(s.resolve("99").is_err());
        assert_eq!(s.label(NodeId(0)), "alice");
    }

    #[test]
    fn anonymous_store_resolves_ids_only() {
        let emb = NodeEmbeddings::zeros(4, 2);
        let s = EmbeddingStore::new(emb, None).unwrap();
        assert_eq!(s.resolve("3").unwrap(), NodeId(3));
        assert!(s.resolve("4").is_err());
        assert_eq!(s.label(NodeId(3)), "3");
    }

    #[test]
    fn link_score_is_squared_euclidean() {
        let s = named_store();
        assert_eq!(s.link_score(NodeId(0), NodeId(1)).unwrap(), 25.0);
        assert_eq!(s.link_score(NodeId(2), NodeId(2)).unwrap(), 0.0);
        assert!(s.link_score(NodeId(0), NodeId(9)).is_err());
    }

    #[test]
    fn name_count_mismatch_rejected() {
        let emb = NodeEmbeddings::zeros(2, 2);
        let mut names = NameMap::new();
        names.intern("only-one");
        assert!(EmbeddingStore::new(emb, Some(names)).is_err());
    }

    #[test]
    fn open_roundtrips_files() {
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_serve_store_test.bin");
        let names_path = dir.join("ehna_serve_store_test.names");
        let emb = NodeEmbeddings::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        emb.save_path(&snap).unwrap();
        let mut names = NameMap::new();
        names.intern("x");
        names.intern("y");
        let mut buf = Vec::new();
        names.save(&mut buf).unwrap();
        std::fs::write(&names_path, buf).unwrap();

        let s = EmbeddingStore::open(&snap, Some(&names_path)).unwrap();
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.resolve("y").unwrap(), NodeId(1));
        let _ = std::fs::remove_file(snap);
        let _ = std::fs::remove_file(names_path);
    }
}
