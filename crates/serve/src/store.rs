//! The immutable serving snapshot: an embedding row source (dense f32 or
//! quantized EHNQ, heap- or mmap-backed) plus the optional name interner,
//! loadable once and shared across every worker and connection behind an
//! `Arc`.

use crate::ServeError;
use ehna_tgraph::quant::{sq_dist_f64, QuantScorer, QuantizedEmbeddings};
use ehna_tgraph::{NameMap, NodeEmbeddings, NodeId};
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Longest accepted line in a names file, in bytes. Real node labels are
/// whitespace-split tokens; anything longer is a corrupt or hostile file
/// and fails before it is buffered whole.
pub const MAX_NAME_LEN: usize = 4096;

/// Canonical decimal form of a dense node id: non-empty, ASCII digits
/// only, no leading zeros (except `"0"` itself), within `u32` range.
///
/// This is the *only* string-to-id fallback the serving tier accepts.
/// Rust's `str::parse::<u32>` also accepts `"+3"` and `"007"`, which
/// would let distinct request keys alias one node and seed duplicate
/// entries in the version-keyed knn and router resolve caches — so the
/// parser is pinned here and shared by the standalone store and the
/// cluster router.
pub fn canonical_node_id(key: &str) -> Option<u32> {
    // u32::MAX is 10 digits; longer strings cannot be canonical.
    if key.is_empty() || key.len() > 10 {
        return None;
    }
    if !key.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if key.len() > 1 && key.starts_with('0') {
        return None;
    }
    key.parse::<u32>().ok()
}

/// A read-only table of f32-decodable embedding rows — the storage
/// abstraction behind [`EmbeddingStore`]. Implemented by the dense
/// in-memory [`NodeEmbeddings`] and by [`QuantizedEmbeddings`] in any
/// format, heap- or mmap-backed.
pub trait RowSource: Send + Sync + std::fmt::Debug {
    /// Number of rows.
    fn num_nodes(&self) -> usize;
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Storage format label for stats/logs (`"dense"`, `"f32"`, `"f16"`,
    /// `"int8"`, `"pq"`).
    fn format_label(&self) -> &'static str;
    /// Bytes of per-row payload (excluding amortized codebooks/scales).
    fn code_bytes_per_node(&self) -> usize;
    /// Whether the backing bytes are a memory mapping.
    fn is_mmap(&self) -> bool {
        false
    }
    /// The dense matrix behind this source, when it is one (lets callers
    /// that need contiguous f32 rows skip per-row decoding).
    fn as_dense(&self) -> Option<&NodeEmbeddings> {
        None
    }
    /// Row `idx` decoded to f32. Borrowed (zero-copy) where the storage
    /// allows, owned where decoding is required.
    fn row(&self, idx: usize) -> Cow<'_, [f32]>;
    /// A per-query distance evaluator over the rows. Build one per query:
    /// quantized sources may do per-query precomputation (the PQ scorer
    /// builds its asymmetric-distance table here).
    fn scorer(&self, query: &[f32]) -> Box<dyn RowDistance + '_>;
}

/// Squared-euclidean distance from one fixed query to any row, following
/// the pinned accumulation contract of
/// [`sq_dist_f64`](ehna_tgraph::quant::sq_dist_f64).
pub trait RowDistance: Send + Sync {
    /// Distance from the query to row `idx`.
    fn dist(&self, idx: usize) -> f64;
}

struct DenseScorer<'a> {
    emb: &'a NodeEmbeddings,
    query: Vec<f32>,
}

impl RowDistance for DenseScorer<'_> {
    #[inline]
    fn dist(&self, idx: usize) -> f64 {
        sq_dist_f64(&self.query, self.emb.get(NodeId(idx as u32)))
    }
}

impl RowSource for NodeEmbeddings {
    fn num_nodes(&self) -> usize {
        NodeEmbeddings::num_nodes(self)
    }

    fn dim(&self) -> usize {
        NodeEmbeddings::dim(self)
    }

    fn format_label(&self) -> &'static str {
        "dense"
    }

    fn code_bytes_per_node(&self) -> usize {
        NodeEmbeddings::dim(self) * 4
    }

    fn as_dense(&self) -> Option<&NodeEmbeddings> {
        Some(self)
    }

    fn row(&self, idx: usize) -> Cow<'_, [f32]> {
        Cow::Borrowed(self.get(NodeId(idx as u32)))
    }

    fn scorer(&self, query: &[f32]) -> Box<dyn RowDistance + '_> {
        Box::new(DenseScorer { emb: self, query: query.to_vec() })
    }
}

impl RowDistance for QuantScorer<'_> {
    #[inline]
    fn dist(&self, idx: usize) -> f64 {
        QuantScorer::dist(self, idx)
    }
}

impl RowSource for QuantizedEmbeddings {
    fn num_nodes(&self) -> usize {
        QuantizedEmbeddings::num_nodes(self)
    }

    fn dim(&self) -> usize {
        QuantizedEmbeddings::dim(self)
    }

    fn format_label(&self) -> &'static str {
        self.format().label()
    }

    fn code_bytes_per_node(&self) -> usize {
        QuantizedEmbeddings::code_bytes_per_node(self)
    }

    fn is_mmap(&self) -> bool {
        QuantizedEmbeddings::is_mmap(self)
    }

    fn row(&self, idx: usize) -> Cow<'_, [f32]> {
        QuantizedEmbeddings::row(self, idx)
    }

    fn scorer(&self, query: &[f32]) -> Box<dyn RowDistance + '_> {
        Box::new(QuantizedEmbeddings::scorer(self, query))
    }
}

/// An immutable, shareable store over a trained embedding snapshot.
///
/// Scoring follows the model's native metric (squared Euclidean distance,
/// paper Eq. 5): **lower scores mean stronger predicted links**, matching
/// the ranking `ehna-eval` produces, so serve-time answers agree with the
/// offline evaluation.
#[derive(Debug)]
pub struct EmbeddingStore {
    rows: Box<dyn RowSource>,
    names: Option<NameMap>,
}

impl EmbeddingStore {
    /// Wrap a dense embedding matrix, optionally with the name interner
    /// the graph was built with.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] if the name count differs from the row
    /// count.
    pub fn new(emb: NodeEmbeddings, names: Option<NameMap>) -> Result<Self, ServeError> {
        Self::from_source(Box::new(emb), names)
    }

    /// Wrap a quantized table, optionally with names.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] on a name/row count mismatch.
    pub fn from_quant(q: QuantizedEmbeddings, names: Option<NameMap>) -> Result<Self, ServeError> {
        Self::from_source(Box::new(q), names)
    }

    /// Wrap any row source, optionally with names.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] on a name/row count mismatch.
    pub fn from_source(
        rows: Box<dyn RowSource>,
        names: Option<NameMap>,
    ) -> Result<Self, ServeError> {
        if let Some(ref map) = names {
            if map.len() != rows.num_nodes() {
                return Err(ServeError::Snapshot(format!(
                    "name map has {} names but snapshot has {} nodes",
                    map.len(),
                    rows.num_nodes()
                )));
            }
        }
        Ok(EmbeddingStore { rows, names })
    }

    /// Load a snapshot file (and optional names file) from disk into
    /// heap memory. Equivalent to [`EmbeddingStore::open_with`] with
    /// `mmap = false`.
    ///
    /// # Errors
    /// IO failures or malformed files.
    pub fn open<P: AsRef<Path>>(snapshot: P, names: Option<P>) -> Result<Self, ServeError> {
        Self::open_with(snapshot, names, false)
    }

    /// Load a snapshot, auto-detecting the format from its magic bytes:
    /// `EHNQ` opens as a quantized table (zero-copy mmap when `mmap` is
    /// set, which keeps open time O(1) in table size); the legacy
    /// big-endian `EHNA` format always deserializes onto the heap
    /// (`mmap` is ignored — run `ehna quantize` to produce an mmap-able
    /// artifact).
    ///
    /// The snapshot header is validated *first*, so the names file is
    /// read with hard caps derived from the declared row count: a
    /// malformed or oversized names file fails early with a typed error
    /// on both heap and mmap paths, before any row-count-sized
    /// allocation happens on its behalf.
    ///
    /// # Errors
    /// IO failures or malformed files.
    pub fn open_with<P: AsRef<Path>>(
        snapshot: P,
        names: Option<P>,
        mmap: bool,
    ) -> Result<Self, ServeError> {
        let rows = open_rows(snapshot.as_ref(), mmap)?;
        let names = match names {
            Some(path) => Some(open_names(path.as_ref(), rows.num_nodes())?),
            None => None,
        };
        Self::from_source(rows, names)
    }

    /// The dense embedding matrix, when this store is dense-backed
    /// (`None` for quantized sources — decode rows individually instead).
    pub fn dense(&self) -> Option<&NodeEmbeddings> {
        self.rows.as_dense()
    }

    /// The underlying row source.
    pub fn rows(&self) -> &dyn RowSource {
        self.rows.as_ref()
    }

    /// Number of serveable nodes.
    pub fn num_nodes(&self) -> usize {
        self.rows.num_nodes()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.rows.dim()
    }

    /// Storage format label for stats/logs.
    pub fn format_label(&self) -> &'static str {
        self.rows.format_label()
    }

    /// Whether rows are served from a memory-mapped file.
    pub fn is_mmap(&self) -> bool {
        self.rows.is_mmap()
    }

    /// Resolve a query key to a node: an interned name when a name map is
    /// loaded, else (or as fallback) a canonical decimal dense id — see
    /// [`canonical_node_id`] for what "canonical" rejects.
    pub fn resolve(&self, key: &str) -> Result<NodeId, ServeError> {
        if let Some(ref names) = self.names {
            if let Some(id) = names.get(key) {
                return Ok(id);
            }
        }
        if let Some(raw) = canonical_node_id(key) {
            if (raw as usize) < self.num_nodes() {
                return Ok(NodeId(raw));
            }
        }
        Err(ServeError::UnknownNode(key.to_string()))
    }

    /// Resolve a key through the name map only — no decimal-id fallback.
    ///
    /// Shard stores need this: their rows are locally indexed, so a
    /// *global* decimal key must never be misread as a local row number.
    /// The shard planner writes every shard a names file of global
    /// labels, and the router resolves numeric keys by ownership
    /// arithmetic instead.
    pub fn resolve_name(&self, key: &str) -> Option<NodeId> {
        self.names.as_ref().and_then(|names| names.get(key))
    }

    /// Display label for a node: its interned name when known, else the
    /// decimal id.
    pub fn label(&self, id: NodeId) -> String {
        match self.names.as_ref().and_then(|m| m.name(id)) {
            Some(name) => name.to_string(),
            None => id.index().to_string(),
        }
    }

    /// The row of `id`, decoded to f32 (borrowed when storage allows).
    ///
    /// # Errors
    /// [`ServeError::UnknownNode`] when out of range.
    pub fn row(&self, id: NodeId) -> Result<Cow<'_, [f32]>, ServeError> {
        if id.index() >= self.num_nodes() {
            return Err(ServeError::UnknownNode(id.index().to_string()));
        }
        Ok(self.rows.row(id.index()))
    }

    /// Link score of a node pair: squared Euclidean distance (Eq. 5)
    /// between the decoded rows. Lower = stronger predicted link.
    ///
    /// # Errors
    /// [`ServeError::UnknownNode`] when either endpoint is out of range.
    pub fn link_score(&self, a: NodeId, b: NodeId) -> Result<f64, ServeError> {
        let ra = self.row(a)?;
        let rb = self.row(b)?;
        Ok(sq_dist_f64(&ra, &rb))
    }

    /// A per-query distance evaluator (see [`RowSource::scorer`]).
    pub fn scorer(&self, query: &[f32]) -> Box<dyn RowDistance + '_> {
        self.rows.scorer(query)
    }
}

/// Squared Euclidean distance between two equal-length vectors — the
/// pinned serve-path accumulation (re-exported from `ehna_tgraph`).
pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    sq_dist_f64(a, b)
}

fn open_rows(snapshot: &Path, mmap: bool) -> Result<Box<dyn RowSource>, ServeError> {
    let mut magic = [0u8; 4];
    let mut file = File::open(snapshot)?;
    let got = file.read(&mut magic)?;
    drop(file);
    if got == 4 && magic == *b"EHNQ" {
        let q = QuantizedEmbeddings::open_path(snapshot, mmap)
            .map_err(|e| ServeError::Snapshot(e.to_string()))?;
        return Ok(Box::new(q));
    }
    let emb =
        NodeEmbeddings::load_path(snapshot).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    Ok(Box::new(emb))
}

fn open_names(path: &Path, num_nodes: usize) -> Result<NameMap, ServeError> {
    let map = NameMap::load_capped(BufReader::new(File::open(path)?), num_nodes, MAX_NAME_LEN)
        .map_err(|e| ServeError::Snapshot(format!("bad names file: {e}")))?;
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::quant::{QuantFormat, QuantSpec};

    fn named_store() -> EmbeddingStore {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0]);
        let mut names = NameMap::new();
        for n in ["alice", "bob", "carol"] {
            names.intern(n);
        }
        EmbeddingStore::new(emb, Some(names)).unwrap()
    }

    #[test]
    fn resolves_names_and_ids() {
        let s = named_store();
        assert_eq!(s.resolve("bob").unwrap(), NodeId(1));
        assert_eq!(s.resolve("2").unwrap(), NodeId(2));
        assert!(s.resolve("dave").is_err());
        assert!(s.resolve("99").is_err());
        assert_eq!(s.label(NodeId(0)), "alice");
    }

    #[test]
    fn anonymous_store_resolves_ids_only() {
        let emb = NodeEmbeddings::zeros(4, 2);
        let s = EmbeddingStore::new(emb, None).unwrap();
        assert_eq!(s.resolve("3").unwrap(), NodeId(3));
        assert!(s.resolve("4").is_err());
        assert_eq!(s.label(NodeId(3)), "3");
    }

    #[test]
    fn resolve_requires_canonical_decimal() {
        let s = EmbeddingStore::new(NodeEmbeddings::zeros(10, 2), None).unwrap();
        assert_eq!(s.resolve("0").unwrap(), NodeId(0));
        assert_eq!(s.resolve("7").unwrap(), NodeId(7));
        // Non-canonical spellings of valid ids must NOT alias them: each
        // distinct accepted key seeds its own version-keyed cache entry.
        for bad in ["+3", "007", "03", " 3", "3 ", "3.0", "0x3", "", "-1", "00"] {
            assert!(s.resolve(bad).is_err(), "{bad:?} must be rejected");
        }
        // A name map may still intern such tokens explicitly.
        let mut names = NameMap::new();
        names.intern("007");
        names.intern("bob");
        let s = EmbeddingStore::new(NodeEmbeddings::zeros(2, 2), Some(names)).unwrap();
        assert_eq!(s.resolve("007").unwrap(), NodeId(0), "interned name wins");
    }

    #[test]
    fn canonical_node_id_rules() {
        assert_eq!(canonical_node_id("0"), Some(0));
        assert_eq!(canonical_node_id("42"), Some(42));
        assert_eq!(canonical_node_id("4294967295"), Some(u32::MAX));
        for bad in ["", "+1", "-1", "01", "00", "4294967296", "99999999999", "1e3", "٣"] {
            assert_eq!(canonical_node_id(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn link_score_is_squared_euclidean() {
        let s = named_store();
        assert_eq!(s.link_score(NodeId(0), NodeId(1)).unwrap(), 25.0);
        assert_eq!(s.link_score(NodeId(2), NodeId(2)).unwrap(), 0.0);
        assert!(s.link_score(NodeId(0), NodeId(9)).is_err());
    }

    #[test]
    fn name_count_mismatch_rejected() {
        let emb = NodeEmbeddings::zeros(2, 2);
        let mut names = NameMap::new();
        names.intern("only-one");
        assert!(EmbeddingStore::new(emb, Some(names)).is_err());
    }

    #[test]
    fn dense_accessor_roundtrips() {
        let s = named_store();
        assert_eq!(s.format_label(), "dense");
        assert!(!s.is_mmap());
        let emb = s.dense().expect("dense-backed");
        assert_eq!(emb.num_nodes(), 3);
        assert_eq!(emb.get(NodeId(1)), &[3.0, 4.0]);
        assert_eq!(&*s.row(NodeId(1)).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn quant_store_serves_rows_and_scores() {
        let emb = NodeEmbeddings::from_vec(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0]);
        let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::F32)).unwrap();
        let s = EmbeddingStore::from_quant(q, None).unwrap();
        assert_eq!(s.format_label(), "f32");
        assert!(s.dense().is_none(), "quant stores are not dense-backed");
        assert_eq!(s.link_score(NodeId(0), NodeId(1)).unwrap(), 25.0);
        assert_eq!(&*s.row(NodeId(2)).unwrap(), &[1.0, 1.0]);
        let scorer = s.scorer(&[0.0, 0.0]);
        assert_eq!(scorer.dist(1), 25.0);
    }

    #[test]
    fn open_roundtrips_files() {
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_serve_store_test.bin");
        let names_path = dir.join("ehna_serve_store_test.names");
        let emb = NodeEmbeddings::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        emb.save_path(&snap).unwrap();
        let mut names = NameMap::new();
        names.intern("x");
        names.intern("y");
        let mut buf = Vec::new();
        names.save(&mut buf).unwrap();
        std::fs::write(&names_path, buf).unwrap();

        let s = EmbeddingStore::open(&snap, Some(&names_path)).unwrap();
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.resolve("y").unwrap(), NodeId(1));
        let _ = std::fs::remove_file(snap);
        let _ = std::fs::remove_file(names_path);
    }

    #[test]
    fn open_detects_ehnq_and_honors_mmap() {
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_serve_store_quant.ehnq");
        let emb = NodeEmbeddings::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::F16)).unwrap();
        q.save_path(&snap).unwrap();
        let heap = EmbeddingStore::open_with(&snap, None, false).unwrap();
        assert_eq!(heap.format_label(), "f16");
        assert!(!heap.is_mmap());
        let mapped = EmbeddingStore::open_with(&snap, None, true).unwrap();
        assert_eq!(mapped.format_label(), "f16");
        if cfg!(unix) {
            assert!(mapped.is_mmap());
        }
        assert_eq!(&*heap.row(NodeId(1)).unwrap(), &*mapped.row(NodeId(1)).unwrap());
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn oversized_names_file_fails_early() {
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_serve_store_names_cap.bin");
        let names_path = dir.join("ehna_serve_store_names_cap.names");
        NodeEmbeddings::zeros(2, 2).save_path(&snap).unwrap();
        // Three names for a two-row snapshot: must fail from the cap (a
        // typed Snapshot error), not from the post-load length check.
        std::fs::write(&names_path, "a\nb\nc\n").unwrap();
        match EmbeddingStore::open(&snap, Some(&names_path)) {
            Err(ServeError::Snapshot(msg)) => assert!(msg.contains("more than 2"), "{msg}"),
            other => panic!("expected early cap failure, got {other:?}"),
        }
        // One absurdly long line also fails early.
        std::fs::write(&names_path, format!("{}\n", "x".repeat(MAX_NAME_LEN + 10))).unwrap();
        match EmbeddingStore::open(&snap, Some(&names_path)) {
            Err(ServeError::Snapshot(msg)) => assert!(msg.contains("longer than"), "{msg}"),
            other => panic!("expected length cap failure, got {other:?}"),
        }
        let _ = std::fs::remove_file(snap);
        let _ = std::fs::remove_file(names_path);
    }
}
