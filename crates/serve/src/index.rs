//! Nearest-neighbor indexes over the embedding rows.
//!
//! Two implementations with one interface:
//!
//! * [`BruteForceIndex`] — exact linear scan. Doubles as the correctness
//!   oracle for recall tests and as the sane default for small snapshots.
//! * [`IvfIndex`] — a cluster-pruned inverted-file index: k-means over
//!   the rows at build time; at query time only the `nprobe` closest
//!   clusters are scanned and candidates are reranked exactly. Classic
//!   IVF-flat, in pure Rust.
//!
//! Distances are squared Euclidean (paper Eq. 5): lower = closer.

use crate::store::{sq_dist, EmbeddingStore};
use ehna_tgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One search hit: a node and its squared Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The matched node.
    pub id: NodeId,
    /// Squared Euclidean distance (lower = closer).
    pub dist: f64,
}

/// How a search arrived at its answer (the `--explain` payload).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchInfo {
    /// Cluster ids probed, closest centroid first (empty for brute force).
    pub probed: Vec<usize>,
    /// Number of candidate rows scored exactly.
    pub scanned: usize,
}

/// A k-nearest-neighbor index over the store's rows.
pub trait KnnIndex: Send + Sync {
    /// The `k` nearest rows to `query`, ascending by distance (ties by
    /// node id). Returns fewer than `k` when the store is small.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_explained(query, k).0
    }

    /// [`KnnIndex::search`] plus diagnostics.
    fn search_explained(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, SearchInfo);

    /// Short label for logs and the stats endpoint.
    fn kind(&self) -> &'static str;

    /// Clusters probed per query for approximate indexes; `None` for
    /// exact ones (brute force probes nothing). Surfaced in stats and
    /// per-shard `explain` so operators can see each shard's recall
    /// knob without shelling into the shard host.
    fn nprobe(&self) -> Option<usize> {
        None
    }
}

/// Keep the `k` smallest (dist, id) pairs seen so far.
struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

struct HeapEntry {
    dist: f64,
    id: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on (dist, id): the worst retained candidate on top.
        self.dist.total_cmp(&other.dist).then_with(|| self.id.0.cmp(&other.id.0))
    }
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    #[inline]
    fn push(&mut self, id: NodeId, dist: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { dist, id });
        } else if let Some(worst) = self.heap.peek() {
            if (HeapEntry { dist, id }).cmp(worst) == Ordering::Less {
                self.heap.pop();
                self.heap.push(HeapEntry { dist, id });
            }
        }
    }

    /// Worst retained distance, if already holding `k` candidates.
    #[inline]
    fn bound(&self) -> Option<f64> {
        (self.heap.len() == self.k).then(|| self.heap.peek().expect("non-empty").dist)
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> =
            self.heap.into_iter().map(|e| Neighbor { id: e.id, dist: e.dist }).collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then_with(|| a.id.0.cmp(&b.id.0)));
        out
    }
}

/// Exact linear-scan index — the correctness oracle.
#[derive(Debug)]
pub struct BruteForceIndex {
    store: Arc<EmbeddingStore>,
}

impl BruteForceIndex {
    /// Index every row of `store`.
    pub fn new(store: Arc<EmbeddingStore>) -> Self {
        BruteForceIndex { store }
    }
}

impl KnnIndex for BruteForceIndex {
    fn search_explained(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, SearchInfo) {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        let n = self.store.num_nodes();
        let scorer = self.store.scorer(query);
        let mut top = TopK::new(k);
        for v in 0..n {
            top.push(NodeId(v as u32), scorer.dist(v));
        }
        (top.into_sorted(), SearchInfo { probed: Vec::new(), scanned: n })
    }

    fn kind(&self) -> &'static str {
        "brute"
    }
}

/// Build-time settings of the [`IvfIndex`].
#[derive(Debug, Clone)]
pub struct IvfConfig {
    /// Number of k-means clusters; `None` picks `sqrt(n)` (clamped to
    /// `[1, n]`).
    pub num_clusters: Option<usize>,
    /// Clusters probed per query (clamped to the cluster count).
    pub nprobe: usize,
    /// Lloyd iterations at build time.
    pub kmeans_iters: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { num_clusters: None, nprobe: 8, kmeans_iters: 10, seed: 0x1DF }
    }
}

/// Cluster-pruned inverted-file index with exact reranking.
#[derive(Debug)]
pub struct IvfIndex {
    store: Arc<EmbeddingStore>,
    /// `num_clusters x dim`, row-major.
    centroids: Vec<f32>,
    /// Row ids per cluster.
    lists: Vec<Vec<u32>>,
    nprobe: usize,
}

impl IvfIndex {
    /// Run k-means over the store's rows and build the inverted lists.
    pub fn build(store: Arc<EmbeddingStore>, config: IvfConfig) -> Self {
        let n = store.num_nodes();
        let dim = store.dim();
        let c = config
            .num_clusters
            .unwrap_or_else(|| (n as f64).sqrt().round() as usize)
            .clamp(usize::from(n > 0), n.max(1));
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Initialize centroids from c distinct rows (partial Fisher-Yates).
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..c.min(n) {
            let j = rng.gen_range(i..n);
            order.swap(i, j);
        }
        let mut centroids = vec![0.0f32; c * dim];
        for (slot, &row) in order.iter().take(c).enumerate() {
            centroids[slot * dim..(slot + 1) * dim].copy_from_slice(&store.rows().row(row));
        }

        let mut assign = vec![0usize; n];
        for _ in 0..config.kmeans_iters.max(1) {
            // Assignment step.
            for (v, a) in assign.iter_mut().enumerate() {
                let row = store.rows().row(v);
                *a = nearest_centroid(&centroids, dim, &row).0;
            }
            // Update step.
            let mut sums = vec![0.0f64; c * dim];
            let mut counts = vec![0usize; c];
            for (v, &a) in assign.iter().enumerate() {
                counts[a] += 1;
                let row = store.rows().row(v);
                for (s, &x) in sums[a * dim..(a + 1) * dim].iter_mut().zip(row.iter()) {
                    *s += x as f64;
                }
            }
            for (cl, &count) in counts.iter().enumerate() {
                if count == 0 {
                    // Reseed an empty cluster to a random row so every
                    // centroid stays meaningful.
                    if n > 0 {
                        let row = rng.gen_range(0..n);
                        centroids[cl * dim..(cl + 1) * dim].copy_from_slice(&store.rows().row(row));
                    }
                    continue;
                }
                for (cen, &s) in
                    centroids[cl * dim..(cl + 1) * dim].iter_mut().zip(&sums[cl * dim..])
                {
                    *cen = (s / count as f64) as f32;
                }
            }
        }

        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); c];
        for (v, &a) in assign.iter().enumerate() {
            lists[a].push(v as u32);
        }
        IvfIndex { store, centroids, lists, nprobe: config.nprobe.max(1) }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.lists.len()
    }

    /// Clusters probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }
}

/// Index of the closest centroid and its distance.
fn nearest_centroid(centroids: &[f32], dim: usize, row: &[f32]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (cl, cen) in centroids.chunks_exact(dim).enumerate() {
        let d = sq_dist(row, cen);
        if d < best.1 {
            best = (cl, d);
        }
    }
    best
}

impl KnnIndex for IvfIndex {
    fn search_explained(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, SearchInfo) {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        let dim = self.store.dim();
        let c = self.lists.len();
        if c == 0 {
            return (Vec::new(), SearchInfo { probed: Vec::new(), scanned: 0 });
        }
        // Rank centroids by distance, keep the nprobe closest.
        let mut ranked: Vec<(f64, usize)> = self
            .centroids
            .chunks_exact(dim)
            .enumerate()
            .map(|(cl, cen)| (sq_dist(query, cen), cl))
            .collect();
        let nprobe = self.nprobe.min(c);
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        ranked.truncate(nprobe);

        let scorer = self.store.scorer(query);
        let mut top = TopK::new(k);
        let mut scanned = 0usize;
        for &(_, cl) in &ranked {
            for &v in &self.lists[cl] {
                let id = NodeId(v);
                let d = scorer.dist(v as usize);
                scanned += 1;
                // `<=`, not `<`: at d == bound the heap's (dist, id)
                // tie-break must decide, or a tying candidate with a
                // smaller id gets dropped here and full-probe IVF stops
                // agreeing with brute force on tie-heavy tables.
                if top.bound().map_or(true, |b| d <= b) {
                    top.push(id, d);
                }
            }
        }
        let probed = ranked.into_iter().map(|(_, cl)| cl).collect();
        (top.into_sorted(), SearchInfo { probed, scanned })
    }

    fn kind(&self) -> &'static str {
        "ivf"
    }

    fn nprobe(&self) -> Option<usize> {
        Some(self.nprobe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::NodeEmbeddings;

    /// `n` points in `clusters` well-separated Gaussian-ish blobs.
    fn blobs(n: usize, clusters: usize, dim: usize, seed: u64) -> Arc<EmbeddingStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        for v in 0..n {
            let blob = v % clusters;
            for d in 0..dim {
                let center = if d % clusters == blob { 10.0 * (blob + 1) as f32 } else { 0.0 };
                data.push(center + rng.gen_range(-0.5..0.5));
            }
        }
        Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(dim, data), None).unwrap())
    }

    fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
        if exact.is_empty() {
            return 1.0;
        }
        let hits = approx.iter().filter(|a| exact.iter().any(|e| e.id == a.id)).count();
        hits as f64 / exact.len() as f64
    }

    #[test]
    fn brute_force_finds_exact_neighbors() {
        let store = blobs(50, 5, 4, 1);
        let idx = BruteForceIndex::new(Arc::clone(&store));
        let query = store.row(NodeId(7)).unwrap().to_vec();
        let hits = idx.search(&query, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, NodeId(7), "self is nearest to itself");
        assert_eq!(hits[0].dist, 0.0);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let store = blobs(4, 2, 3, 2);
        let idx = BruteForceIndex::new(store);
        assert_eq!(idx.search(&[0.0, 0.0, 0.0], 10).len(), 4);
    }

    #[test]
    fn ivf_matches_brute_on_high_nprobe() {
        // Probing every cluster makes IVF exhaustive: results must equal
        // the oracle exactly.
        let store = blobs(300, 6, 8, 3);
        let brute = BruteForceIndex::new(Arc::clone(&store));
        let cfg = IvfConfig { num_clusters: Some(10), nprobe: 10, ..Default::default() };
        let ivf = IvfIndex::build(Arc::clone(&store), cfg);
        for probe in [0usize, 13, 250] {
            let q = store.row(NodeId(probe as u32)).unwrap().to_vec();
            let e = brute.search(&q, 5);
            let a = ivf.search(&q, 5);
            assert_eq!(e.len(), a.len());
            for (x, y) in e.iter().zip(&a) {
                assert_eq!(x.id, y.id);
                assert!((x.dist - y.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ivf_recall_is_high_on_clustered_data() {
        let store = blobs(2000, 8, 16, 4);
        let brute = BruteForceIndex::new(Arc::clone(&store));
        let cfg = IvfConfig { num_clusters: Some(32), nprobe: 8, ..Default::default() };
        let ivf = IvfIndex::build(Arc::clone(&store), cfg);
        let mut total = 0.0;
        let probes = 50;
        for i in 0..probes {
            let q = store.row(NodeId((i * 37) as u32)).unwrap().to_vec();
            total += recall(&brute.search(&q, 10), &ivf.search(&q, 10));
        }
        let avg = total / probes as f64;
        assert!(avg >= 0.95, "avg recall {avg:.3} < 0.95");
    }

    #[test]
    fn ivf_scans_fewer_rows_than_brute() {
        let store = blobs(2000, 8, 16, 5);
        let cfg = IvfConfig { num_clusters: Some(40), nprobe: 4, ..Default::default() };
        let ivf = IvfIndex::build(Arc::clone(&store), cfg);
        let q = store.row(NodeId(11)).unwrap().to_vec();
        let (hits, info) = ivf.search_explained(&q, 10);
        assert!(!hits.is_empty());
        assert_eq!(info.probed.len(), 4);
        assert!(
            info.scanned < store.num_nodes() / 2,
            "pruning ineffective: scanned {} of {}",
            info.scanned,
            store.num_nodes()
        );
    }

    #[test]
    fn empty_store_searches_cleanly() {
        let store = Arc::new(EmbeddingStore::new(NodeEmbeddings::zeros(0, 3), None).unwrap());
        let brute = BruteForceIndex::new(Arc::clone(&store));
        assert!(brute.search(&[0.0; 3], 5).is_empty());
        let ivf = IvfIndex::build(store, IvfConfig::default());
        assert!(ivf.search(&[0.0; 3], 5).is_empty());
    }

    #[test]
    fn topk_breaks_distance_ties_by_id() {
        let store = Arc::new(
            EmbeddingStore::new(NodeEmbeddings::from_vec(1, vec![1.0, 1.0, 1.0, 1.0]), None)
                .unwrap(),
        );
        let idx = BruteForceIndex::new(store);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits.iter().map(|h| h.id.0).collect::<Vec<_>>(), vec![0, 1]);
    }
}
