//! Lock-free serving telemetry: request counters plus a log-bucketed
//! latency histogram answering p50/p95/p99 queries.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets span ~1 µs to ~18 min.
const BUCKETS: usize = 40;

/// A histogram of request latencies with power-of-two microsecond
/// buckets. Recording is a single relaxed atomic increment; quantiles are
/// approximate (upper bound of the containing bucket).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate `q`-quantile (e.g. 0.5, 0.95, 0.99) in microseconds:
    /// the upper edge of the first bucket whose cumulative count reaches
    /// `q * total`. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Add 1 to a counter without ever wrapping: cluster dashboards diff
/// these values, and a silent wrap to 0 would read as a huge negative
/// rate. Saturation at `u64::MAX` is the honest failure mode.
pub fn saturating_inc(counter: &AtomicU64) {
    // `fetch_update` with Relaxed/Relaxed never fails spuriously; the
    // loop only retries on genuine contention.
    let _ =
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(1)));
}

/// What a serving process is, from the cluster's point of view. Surfaced
/// through the `stats` op so dashboards can tell nodes apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// A single-process server over the whole table (the pre-cluster
    /// deployment shape).
    #[default]
    Standalone,
    /// One partition of a sharded table, serving EHNP shard traffic.
    Shard,
    /// The scatter-gather front door of a sharded cluster.
    Router,
}

impl Role {
    /// Wire label of the role (`"standalone"` / `"shard"` / `"router"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Shard => "shard",
            Role::Router => "router",
        }
    }

    fn from_u8(raw: u8) -> Role {
        match raw {
            1 => Role::Shard,
            2 => Role::Router,
            _ => Role::Standalone,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Role::Standalone => 0,
            Role::Shard => 1,
            Role::Router => 2,
        }
    }
}

/// Sentinel for "no shard id assigned" in the atomic identity fields.
const NO_SHARD: u64 = u64::MAX;

/// Per-op request counters (saturating, never wrapping). An op is
/// counted when it is dispatched, whether or not it succeeds, so the
/// totals reconcile with `requests` per node and across a cluster.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// `ping` requests.
    pub ping: AtomicU64,
    /// `knn` requests (by node or by vector).
    pub knn: AtomicU64,
    /// `score` requests.
    pub score: AtomicU64,
    /// `stats` requests.
    pub stats: AtomicU64,
    /// `reload` requests.
    pub reload: AtomicU64,
    /// `batch` envelopes (sub-requests count toward their own ops too).
    pub batch: AtomicU64,
    /// EHNP `resolve` / row-fetch requests (shards only).
    pub resolve: AtomicU64,
}

impl OpCounters {
    /// Count one dispatched request of op `name` (unknown ops are not
    /// counted — they never reach a handler).
    pub fn record(&self, name: &str) {
        let counter = match name {
            "ping" => &self.ping,
            "knn" => &self.knn,
            "score" => &self.score,
            "stats" => &self.stats,
            "reload" => &self.reload,
            "batch" => &self.batch,
            "resolve" => &self.resolve,
            _ => return,
        };
        saturating_inc(counter);
    }

    fn snapshot(&self) -> OpCounts {
        OpCounts {
            ping: self.ping.load(Ordering::Relaxed),
            knn: self.knn.load(Ordering::Relaxed),
            score: self.score.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            reload: self.reload.load(Ordering::Relaxed),
            batch: self.batch.load(Ordering::Relaxed),
            resolve: self.resolve.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`OpCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// `ping` requests.
    pub ping: u64,
    /// `knn` requests.
    pub knn: u64,
    /// `score` requests.
    pub score: u64,
    /// `stats` requests.
    pub stats: u64,
    /// `reload` requests.
    pub reload: u64,
    /// `batch` envelopes.
    pub batch: u64,
    /// `resolve` requests.
    pub resolve: u64,
}

/// Counters for the query engine and the serving layer above it, all
/// relaxed atomics.
#[derive(Debug)]
pub struct EngineStats {
    /// Per-request latency (submit → reply).
    pub latency: LatencyHistogram,
    /// Requests answered from the hot-node cache.
    pub cache_hits: AtomicU64,
    /// Requests computed against the index.
    pub cache_misses: AtomicU64,
    /// Worker batches drained (≥1 request each).
    pub batches: AtomicU64,
    /// Requests refused as malformed or over the configured limits
    /// (bad JSON, invalid `k`, too many pairs, oversized request line).
    pub rejected: AtomicU64,
    /// Connections dropped because a socket read or write timed out
    /// (slow-loris or stalled clients).
    pub timeouts: AtomicU64,
    /// Connections shed at the admission gate with an `overloaded`
    /// response because the server was at `max_connections`.
    pub overloads: AtomicU64,
    /// Hot swaps performed (`reload` requests that installed a snapshot).
    pub reloads: AtomicU64,
    /// Version of the snapshot currently served (starts at 1; equals
    /// `reloads + 1` when all swaps came through one engine).
    pub snapshot_version: AtomicU64,
    /// Unix timestamp (seconds) of the last completed hot swap; 0 when
    /// the engine has never swapped.
    pub last_reload_unix: AtomicU64,
    /// Per-op request counters (saturating).
    pub ops: OpCounters,
    /// Cluster role of this process (see [`Role`]), stored as its wire
    /// discriminant so it can be set after the engine is shared.
    role: AtomicU8,
    /// Shard id when `role == Shard`; [`NO_SHARD`] otherwise.
    shard_id: AtomicU64,
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            latency: LatencyHistogram::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            snapshot_version: AtomicU64::new(0),
            last_reload_unix: AtomicU64::new(0),
            ops: OpCounters::default(),
            role: AtomicU8::new(Role::Standalone.as_u8()),
            shard_id: AtomicU64::new(NO_SHARD),
        }
    }
}

/// A point-in-time copy of [`EngineStats`], safe to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Total requests recorded: engine-served (`knn` / `score`) plus
    /// refused (`rejected`). Every `knn` request is either a cache hit
    /// or a miss, so for knn-only traffic
    /// `requests == cache_hits + cache_misses + rejected` holds exactly;
    /// `score` requests count here without touching the cache counters.
    pub requests: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Requests refused as malformed or over the configured limits.
    pub rejected: u64,
    /// Connections dropped on a socket read/write timeout.
    pub timeouts: u64,
    /// Connections shed at the admission gate (`overloaded` response).
    pub overloads: u64,
    /// Worker batches drained.
    pub batches: u64,
    /// Hot swaps performed.
    pub reloads: u64,
    /// Version of the snapshot currently served.
    pub snapshot_version: u64,
    /// Unix timestamp (seconds) of the last hot swap; 0 = never.
    pub last_reload_unix: u64,
    /// Cluster role of this process.
    pub role: Role,
    /// Shard id (only `Some` for shard processes).
    pub shard_id: Option<u32>,
    /// Per-op request counts.
    pub ops: OpCounts,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Approximate latency quantiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
}

impl EngineStats {
    /// Declare what this process is: a role, plus the shard id for shard
    /// processes. Called once at startup, after the engine is built.
    pub fn set_identity(&self, role: Role, shard_id: Option<u32>) {
        self.role.store(role.as_u8(), Ordering::Relaxed);
        let raw = shard_id.map(|s| s as u64).unwrap_or(NO_SHARD);
        self.shard_id.store(raw, Ordering::Relaxed);
    }

    /// Cluster role of this process.
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Relaxed))
    }

    /// Shard id, when this process serves one shard of a cluster.
    pub fn shard_id(&self) -> Option<u32> {
        match self.shard_id.load(Ordering::Relaxed) {
            NO_SHARD => None,
            raw => Some(raw as u32),
        }
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let rejected = self.rejected.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: self.latency.count() + rejected,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected,
            timeouts: self.timeouts.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            snapshot_version: self.snapshot_version.load(Ordering::Relaxed),
            last_reload_unix: self.last_reload_unix.load(Ordering::Relaxed),
            mean_us: self.latency.mean_us(),
            p50_us: self.latency.quantile_us(0.50),
            p95_us: self.latency.quantile_us(0.95),
            p99_us: self.latency.quantile_us(0.99),
            role: self.role(),
            shard_id: self.shard_id(),
            ops: self.ops.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        // 99 fast samples (~8 µs) and one slow (~8 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(8));
        }
        h.record(Duration::from_millis(8));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5);
        assert!((8..=16).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p99);
        let p100 = h.quantile_us(1.0);
        assert!(p100 >= 8_000, "p100 {p100} misses the slow sample");
        assert!(h.mean_us() > 8.0 && h.mean_us() < 8_000.0);
    }

    #[test]
    fn subzero_and_huge_samples_clamp() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) > 0);
    }

    #[test]
    fn snapshot_copies_counters() {
        let s = EngineStats::default();
        s.latency.record(Duration::from_micros(5));
        s.cache_hits.fetch_add(2, Ordering::Relaxed);
        s.batches.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.batches, 1);
        assert!(snap.p50_us > 0);
    }

    #[test]
    fn saturating_inc_never_wraps() {
        let c = AtomicU64::new(u64::MAX - 1);
        saturating_inc(&c);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
        saturating_inc(&c);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn op_counters_record_known_ops_only() {
        let ops = OpCounters::default();
        for op in ["ping", "knn", "knn", "score", "stats", "reload", "batch", "resolve"] {
            ops.record(op);
        }
        ops.record("no-such-op");
        let snap = ops.snapshot();
        assert_eq!(snap.ping, 1);
        assert_eq!(snap.knn, 2);
        assert_eq!(snap.score, 1);
        assert_eq!(snap.stats, 1);
        assert_eq!(snap.reload, 1);
        assert_eq!(snap.batch, 1);
        assert_eq!(snap.resolve, 1);
    }

    #[test]
    fn identity_defaults_and_round_trips() {
        let s = EngineStats::default();
        assert_eq!(s.role(), Role::Standalone);
        assert_eq!(s.shard_id(), None);
        s.set_identity(Role::Shard, Some(3));
        let snap = s.snapshot();
        assert_eq!(snap.role, Role::Shard);
        assert_eq!(snap.shard_id, Some(3));
        s.set_identity(Role::Router, None);
        assert_eq!(s.role(), Role::Router);
        assert_eq!(s.shard_id(), None);
        assert_eq!(Role::Router.as_str(), "router");
    }

    #[test]
    fn rejected_requests_count_toward_requests() {
        let s = EngineStats::default();
        s.latency.record(Duration::from_micros(5));
        s.cache_misses.fetch_add(1, Ordering::Relaxed);
        s.rejected.fetch_add(3, Ordering::Relaxed);
        s.timeouts.fetch_add(2, Ordering::Relaxed);
        s.overloads.fetch_add(4, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4, "requests = engine-served + rejected");
        assert_eq!(snap.requests, snap.cache_hits + snap.cache_misses + snap.rejected);
        assert_eq!(snap.timeouts, 2);
        assert_eq!(snap.overloads, 4);
    }
}
