//! The batched query engine: a pool of worker threads draining a shared
//! request channel, a hot-node LRU cache, and latency accounting.
//!
//! Callers block on a per-request reply channel, so the public API stays
//! synchronous while the workers batch under load: each worker drains up
//! to `batch_max` queued requests after its blocking receive, amortizing
//! wakeups when the queue runs deep.

use crate::cache::LruCache;
use crate::index::{BruteForceIndex, KnnIndex, Neighbor, SearchInfo};
use crate::stats::{EngineStats, StatsSnapshot};
use crate::store::EmbeddingStore;
use crate::ServeError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ehna_tgraph::NodeId;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Maximum requests one worker drains per wakeup.
    pub batch_max: usize,
    /// Hot-node cache entries (`(node, k)` keys); 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 2, batch_max: 32, cache_capacity: 1024 }
    }
}

/// A k-NN answer plus serving metadata.
#[derive(Debug, Clone)]
pub struct KnnResult {
    /// Nearest neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Whether the answer came from the hot-node cache.
    pub cached: bool,
    /// Probe diagnostics (explain requests only).
    pub info: Option<SearchInfo>,
    /// Fraction of positions where the approximate ranking matches the
    /// exact oracle ranking (explain requests only).
    pub agreement: Option<f64>,
}

enum Request {
    KnnNode { id: NodeId, k: usize, explain: bool },
    KnnVector { vector: Vec<f32>, k: usize, explain: bool },
    Score { pairs: Vec<(NodeId, NodeId)> },
}

enum Response {
    Knn(KnnResult),
    Scores(Vec<f64>),
}

struct Job {
    req: Request,
    started: Instant,
    reply: Sender<Result<Response, ServeError>>,
}

/// Cached k-NN answers, keyed by `(snapshot version, node id, k)` — the
/// version component makes entries computed against a replaced snapshot
/// unreachable even if a slow worker inserts one after the swap's cache
/// clear.
type KnnCache = LruCache<(u64, u32, usize), Arc<Vec<Neighbor>>>;

/// Monotone identifier of the snapshot an engine is serving; starts at 1
/// and increments on every [`QueryEngine::swap_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotVersion(pub u64);

/// One immutable generation of serving state. Workers grab an `Arc` to it
/// per request, so a hot swap never invalidates data mid-search —
/// in-flight requests finish on the snapshot they started on.
struct Snapshot {
    version: u64,
    store: Arc<EmbeddingStore>,
    index: Box<dyn KnnIndex>,
    oracle: BruteForceIndex,
}

struct Shared {
    snap: RwLock<Arc<Snapshot>>,
    cache: Mutex<KnnCache>,
    stats: EngineStats,
}

impl Shared {
    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snap.read())
    }
}

/// The multi-threaded query engine over one immutable snapshot.
pub struct QueryEngine {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl QueryEngine {
    /// Spawn the worker pool over `store`, answering k-NN queries with
    /// `index` (the exact oracle used by explain requests is always a
    /// brute-force scan over the same store).
    pub fn new(store: Arc<EmbeddingStore>, index: Box<dyn KnnIndex>, config: EngineConfig) -> Self {
        let snap =
            Snapshot { version: 1, oracle: BruteForceIndex::new(Arc::clone(&store)), store, index };
        let shared = Arc::new(Shared {
            snap: RwLock::new(Arc::new(snap)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stats: EngineStats::default(),
        });
        shared.stats.snapshot_version.store(1, Ordering::Relaxed);
        let (tx, rx) = unbounded::<Job>();
        let batch_max = config.batch_max.max(1);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx: Receiver<Job> = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared, batch_max))
            })
            .collect();
        QueryEngine { tx: Some(tx), workers, shared }
    }

    /// The store of the snapshot currently being served. An owning handle:
    /// after a concurrent [`swap_snapshot`](Self::swap_snapshot) it keeps
    /// pointing at the generation it was taken from.
    pub fn store(&self) -> Arc<EmbeddingStore> {
        Arc::clone(&self.shared.snapshot().store)
    }

    /// Version of the snapshot currently being served.
    pub fn snapshot_version(&self) -> SnapshotVersion {
        SnapshotVersion(self.shared.snapshot().version)
    }

    /// Atomically replace the serving snapshot: queries submitted after
    /// this call see the new store and index; requests already in flight
    /// finish against the old generation. The hot-node cache restarts
    /// cold (entries are version-keyed, so leftovers from the old
    /// generation can never answer a new-generation query).
    ///
    /// Returns the new snapshot's version.
    pub fn swap_snapshot(
        &self,
        store: Arc<EmbeddingStore>,
        index: Box<dyn KnnIndex>,
    ) -> SnapshotVersion {
        let mut guard = self.shared.snap.write();
        let next = Snapshot {
            version: guard.version + 1,
            oracle: BruteForceIndex::new(Arc::clone(&store)),
            store,
            index,
        };
        let version = next.version;
        *guard = Arc::new(next);
        drop(guard);
        self.shared.cache.lock().clear();
        self.shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.shared.stats.last_reload_unix.store(now, Ordering::Relaxed);
        self.shared.stats.snapshot_version.store(version, Ordering::Relaxed);
        SnapshotVersion(version)
    }

    /// Short label of the serving index ("brute" or "ivf").
    pub fn index_kind(&self) -> &'static str {
        self.shared.snapshot().index.kind()
    }

    /// Clusters probed per query, when the serving index is approximate
    /// (`None` for exact indexes).
    pub fn index_nprobe(&self) -> Option<usize> {
        self.shared.snapshot().index.nprobe()
    }

    /// Top-`k` neighbors of a stored node (the node itself is excluded).
    ///
    /// # Errors
    /// Unknown node, or an engine shut down mid-request.
    pub fn knn_node(&self, id: NodeId, k: usize, explain: bool) -> Result<KnnResult, ServeError> {
        self.shared.snapshot().store.row(id)?; // fail fast before queueing
        match self.submit(Request::KnnNode { id, k, explain })? {
            Response::Knn(r) => Ok(r),
            Response::Scores(_) => unreachable!("knn request got score response"),
        }
    }

    /// Top-`k` neighbors of a free query vector.
    ///
    /// # Errors
    /// Dimension mismatch, or an engine shut down mid-request.
    pub fn knn_vector(
        &self,
        vector: Vec<f32>,
        k: usize,
        explain: bool,
    ) -> Result<KnnResult, ServeError> {
        let dim = self.shared.snapshot().store.dim();
        if vector.len() != dim {
            return Err(ServeError::Dimension { expected: dim, got: vector.len() });
        }
        match self.submit(Request::KnnVector { vector, k, explain })? {
            Response::Knn(r) => Ok(r),
            Response::Scores(_) => unreachable!("knn request got score response"),
        }
    }

    /// Link scores (squared Euclidean, Eq. 5 — lower = stronger) for a
    /// batch of candidate edges, in input order.
    ///
    /// # Errors
    /// Any unknown endpoint fails the whole batch.
    pub fn score_pairs(&self, pairs: Vec<(NodeId, NodeId)>) -> Result<Vec<f64>, ServeError> {
        let snap = self.shared.snapshot();
        for &(a, b) in &pairs {
            snap.store.row(a)?;
            snap.store.row(b)?;
        }
        match self.submit(Request::Score { pairs })? {
            Response::Scores(s) => Ok(s),
            Response::Knn(_) => unreachable!("score request got knn response"),
        }
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The live counters, for the serving layer to record rejections,
    /// timeouts, and load-shedding against, and for cluster processes to
    /// declare their identity on ([`EngineStats::set_identity`]).
    pub fn stats_raw(&self) -> &EngineStats {
        &self.shared.stats
    }

    fn submit(&self, req: Request) -> Result<Response, ServeError> {
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job { req, started: Instant::now(), reply: reply_tx };
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(job)
            .map_err(|_| ServeError::Closed)?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Closing the channel stops the workers after the queue drains.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("index", &self.index_kind())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(rx: &Receiver<Job>, shared: &Shared, batch_max: usize) {
    while let Ok(first) = rx.recv() {
        let mut batch = Vec::with_capacity(batch_max);
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        for job in batch {
            // Pin one snapshot per request: a swap between submit and
            // process means the fail-fast checks ran against the old
            // generation, so every access below must re-validate.
            let snap = shared.snapshot();
            let resp = process(shared, &snap, job.req);
            shared.stats.latency.record(job.started.elapsed());
            // A caller that gave up (disconnected reply channel) is fine.
            let _ = job.reply.send(resp);
        }
    }
}

fn process(shared: &Shared, snap: &Snapshot, req: Request) -> Result<Response, ServeError> {
    match req {
        Request::KnnNode { id, k, explain } => {
            if !explain {
                if let Some(hit) = shared.cache.lock().get(&(snap.version, id.0, k)) {
                    shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Knn(KnnResult {
                        neighbors: hit.as_ref().clone(),
                        cached: true,
                        info: None,
                        agreement: None,
                    }));
                }
            }
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            // Re-validate: the node existed at submit time, but a swap may
            // have installed a smaller store since.
            let query = snap.store.row(id)?.to_vec();
            let mut result = knn(snap, &query, k, explain, Some(id));
            if !explain {
                shared
                    .cache
                    .lock()
                    .insert((snap.version, id.0, k), Arc::new(result.neighbors.clone()));
            }
            result.cached = false;
            Ok(Response::Knn(result))
        }
        Request::KnnVector { vector, k, explain } => {
            if vector.len() != snap.store.dim() {
                return Err(ServeError::Dimension {
                    expected: snap.store.dim(),
                    got: vector.len(),
                });
            }
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Knn(knn(snap, &vector, k, explain, None)))
        }
        Request::Score { pairs } => {
            let scores = pairs
                .into_iter()
                .map(|(a, b)| snap.store.link_score(a, b))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Response::Scores(scores))
        }
    }
}

/// Run one k-NN search, excluding `exclude` from the results, optionally
/// with probe diagnostics and oracle rank agreement.
fn knn(
    snap: &Snapshot,
    query: &[f32],
    k: usize,
    explain: bool,
    exclude: Option<NodeId>,
) -> KnnResult {
    // Ask for one extra so self-exclusion still yields k hits.
    let fetch = k + usize::from(exclude.is_some());
    let (mut neighbors, info) = snap.index.search_explained(query, fetch);
    if let Some(id) = exclude {
        neighbors.retain(|n| n.id != id);
    }
    neighbors.truncate(k);
    if !explain {
        return KnnResult { neighbors, cached: false, info: None, agreement: None };
    }
    let (mut exact, _) = snap.oracle.search_explained(query, fetch);
    if let Some(id) = exclude {
        exact.retain(|n| n.id != id);
    }
    exact.truncate(k);
    let agreement = if exact.is_empty() {
        1.0
    } else {
        let matches = exact.iter().zip(&neighbors).filter(|(e, a)| e.id == a.id).count();
        matches as f64 / exact.len() as f64
    };
    KnnResult { neighbors, cached: false, info: Some(info), agreement: Some(agreement) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IvfConfig, IvfIndex};
    use ehna_tgraph::NodeEmbeddings;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store(n: usize, dim: usize, seed: u64) -> Arc<EmbeddingStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(dim, data), None).unwrap())
    }

    fn brute_engine(n: usize) -> QueryEngine {
        let s = store(n, 8, 42);
        let idx = Box::new(BruteForceIndex::new(Arc::clone(&s)));
        QueryEngine::new(s, idx, EngineConfig::default())
    }

    #[test]
    fn knn_node_excludes_self_and_caches() {
        let e = brute_engine(60);
        let first = e.knn_node(NodeId(3), 5, false).unwrap();
        assert_eq!(first.neighbors.len(), 5);
        assert!(!first.cached);
        assert!(first.neighbors.iter().all(|nb| nb.id != NodeId(3)));
        let again = e.knn_node(NodeId(3), 5, false).unwrap();
        assert!(again.cached);
        assert_eq!(again.neighbors, first.neighbors);
        let snap = e.stats();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.requests, 2);
        assert!(snap.batches >= 1);
    }

    #[test]
    fn knn_vector_checks_dimension() {
        let e = brute_engine(10);
        assert!(matches!(
            e.knn_vector(vec![0.0; 3], 2, false),
            Err(ServeError::Dimension { expected: 8, got: 3 })
        ));
        let r = e.knn_vector(vec![0.0; 8], 2, false).unwrap();
        assert_eq!(r.neighbors.len(), 2);
    }

    #[test]
    fn score_pairs_match_store_metric() {
        let e = brute_engine(10);
        let scores = e.score_pairs(vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(2))]).unwrap();
        let expected = e.store().link_score(NodeId(0), NodeId(1)).unwrap();
        assert!((scores[0] - expected).abs() < 1e-12);
        assert_eq!(scores[1], 0.0);
        assert!(e.score_pairs(vec![(NodeId(0), NodeId(99))]).is_err());
    }

    #[test]
    fn explain_reports_probes_and_agreement() {
        let s = store(500, 8, 7);
        let idx = Box::new(IvfIndex::build(
            Arc::clone(&s),
            IvfConfig { num_clusters: Some(16), nprobe: 16, ..Default::default() },
        ));
        let e = QueryEngine::new(s, idx, EngineConfig::default());
        let r = e.knn_node(NodeId(5), 10, true).unwrap();
        let info = r.info.expect("explain carries info");
        assert_eq!(info.probed.len(), 16);
        assert!(info.scanned > 0);
        // nprobe == clusters means the scan is exhaustive: perfect
        // agreement with the oracle.
        assert_eq!(r.agreement, Some(1.0));
    }

    #[test]
    fn unknown_node_fails_fast() {
        let e = brute_engine(5);
        assert!(matches!(e.knn_node(NodeId(5), 3, false), Err(ServeError::UnknownNode(_))));
    }

    #[test]
    fn concurrent_queries_all_answer() {
        let e = Arc::new(brute_engine(200));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for i in 0..25 {
                        let id = NodeId(((t * 25 + i) % 200) as u32);
                        let r = e.knn_node(id, 3, false).unwrap();
                        assert_eq!(r.neighbors.len(), 3);
                    }
                });
            }
        });
        assert_eq!(e.stats().requests, 200);
    }

    #[test]
    fn swap_snapshot_serves_new_store_and_bumps_version() {
        let e = brute_engine(60);
        assert_eq!(e.snapshot_version(), SnapshotVersion(1));
        let before = e.knn_node(NodeId(3), 5, false).unwrap();
        assert!(e.knn_node(NodeId(3), 5, false).unwrap().cached, "warm the cache");

        // Swap in a different (and smaller) store.
        let s2 = store(40, 8, 1234);
        let idx2 = Box::new(BruteForceIndex::new(Arc::clone(&s2)));
        let v = e.swap_snapshot(s2, idx2);
        assert_eq!(v, SnapshotVersion(2));
        assert_eq!(e.snapshot_version(), v);
        assert_eq!(e.store().num_nodes(), 40);

        // The old cache entry must not answer for the new snapshot.
        let after = e.knn_node(NodeId(3), 5, false).unwrap();
        assert!(!after.cached, "cache survived the swap");
        assert_ne!(after.neighbors, before.neighbors, "answers still from old store");

        // Nodes that only existed in the old store now error cleanly.
        assert!(matches!(e.knn_node(NodeId(50), 3, false), Err(ServeError::UnknownNode(_))));

        let snap = e.stats();
        assert_eq!(snap.reloads, 1);
        assert_eq!(snap.snapshot_version, 2);
        assert!(snap.last_reload_unix > 0);
    }

    #[test]
    fn swap_under_concurrent_queries_never_breaks_requests() {
        let e = Arc::new(brute_engine(100));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for i in 0..50 {
                        let id = NodeId(((t * 50 + i) % 80) as u32);
                        // UnknownNode is acceptable mid-swap (store shrank
                        // to 80 would not, but sizes alternate); panics or
                        // hangs are not.
                        match e.knn_node(id, 3, false) {
                            Ok(r) => assert_eq!(r.neighbors.len(), 3),
                            Err(ServeError::UnknownNode(_)) => {}
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
            let e = Arc::clone(&e);
            scope.spawn(move || {
                for gen in 0..3u64 {
                    let s = store(if gen % 2 == 0 { 90 } else { 100 }, 8, 900 + gen);
                    let idx = Box::new(BruteForceIndex::new(Arc::clone(&s)));
                    e.swap_snapshot(s, idx);
                }
            });
        });
        assert_eq!(e.snapshot_version(), SnapshotVersion(4));
        assert_eq!(e.stats().reloads, 3);
    }

    #[test]
    fn drop_joins_workers() {
        let e = brute_engine(10);
        e.knn_node(NodeId(0), 1, false).unwrap();
        drop(e); // must not hang
    }
}
