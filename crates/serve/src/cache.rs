//! A small least-recently-used cache for hot node queries.
//!
//! Implementation: a `HashMap` from key to (value, last-touch stamp) plus
//! a monotonic counter. Eviction scans for the minimum stamp — O(capacity),
//! which is deliberate: serving caches are small (hundreds to a few
//! thousand entries) and the scan avoids the unsafe pointer juggling of an
//! intrusive list.

use std::collections::HashMap;
use std::hash::Hash;

/// An LRU cache. Not internally synchronized — wrap in a lock to share.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Cache holding at most `capacity` entries; capacity 0 disables
    /// caching (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache { map: HashMap::with_capacity(capacity.min(4096)), capacity, tick: 0 }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            &*v
        })
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry
    /// if at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // refresh a; b is now oldest
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh, not a new entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1u32, "x");
        c.clear();
        assert!(c.is_empty());
    }
}
