//! A minimal JSON value type with parser and serializer — just enough for
//! the line-delimited wire protocol, with no external dependencies.
//!
//! Objects preserve insertion order (the protocol is small; linear key
//! lookup is cheaper than hashing). Numbers are `f64`, as in JavaScript.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a usize (rejects negatives and fractions).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= u32::MAX as f64).then_some(x as usize)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse one JSON document from `text` (trailing whitespace allowed).
    ///
    /// # Errors
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !x.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // protocol; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                // Integral values print without a trailing ".0" so ids and
                // counts read naturally.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                let mut buf = String::new();
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    buf.clear();
                    escape_into(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(r#"{"op":"knn","k":10,"vec":[1,2.5,-3],"explain":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("knn"));
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(10));
        assert_eq!(v.get("vec").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("explain").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn roundtrips_through_display() {
        let text = r#"{"a":[1,2,{"b":"x\"y"}],"c":null,"d":false,"e":0.5}"#;
        let v = Json::parse(text).unwrap();
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        assert_eq!(printed, text);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = Json::parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn as_usize_rejects_bad_numbers() {
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
    }
}
