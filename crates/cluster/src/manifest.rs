//! The checksummed cluster manifest (`EHNM` v1) — the single source of
//! truth for what a sharded deployment *is*.
//!
//! The shard planner writes one manifest next to the shard snapshots it
//! produces; the router loads it to learn the shard count, the total
//! node count, the dimensionality, and the expected digest of every
//! shard file. Routing is pure arithmetic from `num_shards`
//! ([`owner_of`] / [`global_of`]), so the manifest is small and O(1) to
//! consult per query.
//!
//! ## File format
//!
//! ```text
//! header:  "EHNM" | version u32 LE (= 1)
//! payload: num_shards u32 | total_nodes u64 | dim u32 |
//!          num_shards x ( snapshot_name str | names_name str |
//!                         nodes u64 | snapshot_fnv u64 | names_fnv u64 )
//! trailer: fnv1a64(payload) u64 LE
//! str:     len u32 LE | UTF-8 bytes
//! ```
//!
//! File names are stored relative to the manifest's directory so a shard
//! directory can be moved or rsynced wholesale. The trailing digest is
//! the same FNV-1a 64 the EHNL/EHNP formats use; [`ClusterManifest::verify`]
//! additionally re-hashes every referenced file so a truncated or
//! swapped shard snapshot is caught before it serves a single query.

use crate::proto::fnv1a64;
use crate::ClusterError;
use ehna_nn::ioutil::atomic_write_path;
use std::io::{Read, Write};
use std::path::Path;

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 4] = *b"EHNM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Conventional manifest file name inside a shard directory.
pub const MANIFEST_NAME: &str = "cluster.manifest";

/// One shard's files and their expected digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Embedding snapshot file name, relative to the manifest directory.
    pub snapshot: String,
    /// Names file (global labels, one per local row), relative likewise.
    pub names: String,
    /// Rows in this shard.
    pub nodes: u64,
    /// FNV-1a 64 digest of the snapshot file's bytes.
    pub snapshot_fnv: u64,
    /// FNV-1a 64 digest of the names file's bytes.
    pub names_fnv: u64,
}

/// A sharded deployment: how many shards, how big the global table is,
/// and which files hold each partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    /// Number of shards (round-robin partitioning modulus).
    pub num_shards: u32,
    /// Rows in the unsharded table.
    pub total_nodes: u64,
    /// Embedding dimensionality.
    pub dim: u32,
    /// Per-shard entries, indexed by shard id.
    pub shards: Vec<ShardEntry>,
}

/// Which shard owns global row `global`, and at which local index.
/// Round-robin: shard `global % num_shards`, local `global / num_shards`.
/// The map is monotone within a shard, so shard-local id order equals
/// global id order — the property the router's exact tie-break merge
/// rests on.
pub fn owner_of(global: u32, num_shards: u32) -> (u32, u32) {
    (global % num_shards, global / num_shards)
}

/// Inverse of [`owner_of`]: the global row of `(shard, local)`.
pub fn global_of(shard: u32, local: u32, num_shards: u32) -> u32 {
    local * num_shards + shard
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl ClusterManifest {
    /// Serialize to the `EHNM` v1 byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.num_shards.to_le_bytes());
        payload.extend_from_slice(&self.total_nodes.to_le_bytes());
        payload.extend_from_slice(&self.dim.to_le_bytes());
        for s in &self.shards {
            put_string(&mut payload, &s.snapshot);
            put_string(&mut payload, &s.names);
            payload.extend_from_slice(&s.nodes.to_le_bytes());
            payload.extend_from_slice(&s.snapshot_fnv.to_le_bytes());
            payload.extend_from_slice(&s.names_fnv.to_le_bytes());
        }
        let mut buf = Vec::with_capacity(8 + payload.len() + 8);
        buf.extend_from_slice(&MANIFEST_MAGIC);
        buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf
    }

    /// Parse the `EHNM` v1 byte format.
    ///
    /// # Errors
    /// [`ClusterError::Manifest`] on bad magic/version, truncation,
    /// checksum mismatch, or inconsistent shard counts.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ClusterError> {
        let bad = |msg: String| ClusterError::Manifest(msg);
        if buf.len() < 16 {
            return Err(bad(format!("manifest of {} bytes is too short", buf.len())));
        }
        if buf[..4] != MANIFEST_MAGIC {
            return Err(bad("bad magic (not an EHNM manifest)".into()));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(bad(format!("unsupported manifest version {version}")));
        }
        let payload = &buf[8..buf.len() - 8];
        let digest = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
        if digest != fnv1a64(payload) {
            return Err(bad("checksum mismatch".into()));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ClusterError> {
            if payload.len() - *pos < n {
                return Err(ClusterError::Manifest(format!(
                    "payload truncated at offset {}",
                    *pos
                )));
            }
            let s = &payload[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let num_shards = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        let total_nodes = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let dim = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        if num_shards == 0 {
            return Err(bad("zero shards".into()));
        }
        // Each entry is at least 32 bytes; bound the count before the
        // allocation below so a corrupt field cannot drive an OOM.
        if (num_shards as usize) > payload.len() / 32 + 1 {
            return Err(bad(format!("shard count {num_shards} inconsistent with payload")));
        }
        let mut shards = Vec::with_capacity(num_shards as usize);
        for _ in 0..num_shards {
            let string = |pos: &mut usize| -> Result<String, ClusterError> {
                let len = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4")) as usize;
                String::from_utf8(take(pos, len)?.to_vec())
                    .map_err(|_| ClusterError::Manifest("file name is not UTF-8".into()))
            };
            let snapshot = string(&mut pos)?;
            let names = string(&mut pos)?;
            let nodes = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let snapshot_fnv = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let names_fnv = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            shards.push(ShardEntry { snapshot, names, nodes, snapshot_fnv, names_fnv });
        }
        if pos != payload.len() {
            return Err(bad(format!("{} trailing bytes", payload.len() - pos)));
        }
        let sum: u64 = shards.iter().map(|s| s.nodes).sum();
        if sum != total_nodes {
            return Err(bad(format!(
                "shard node counts sum to {sum} but total_nodes is {total_nodes}"
            )));
        }
        Ok(ClusterManifest { num_shards, total_nodes, dim, shards })
    }

    /// Write the manifest to `dir/cluster.manifest` crash-safely (tmp +
    /// fsync + atomic rename).
    ///
    /// # Errors
    /// IO failures.
    pub fn save(&self, dir: &Path) -> Result<(), ClusterError> {
        let bytes = self.to_bytes();
        atomic_write_path(&dir.join(MANIFEST_NAME), |w| w.write_all(&bytes))
            .map_err(ClusterError::Io)
    }

    /// Load `dir/cluster.manifest`.
    ///
    /// # Errors
    /// IO failures or a malformed manifest.
    pub fn load(dir: &Path) -> Result<Self, ClusterError> {
        let mut buf = Vec::new();
        std::fs::File::open(dir.join(MANIFEST_NAME))
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(ClusterError::Io)?;
        Self::from_bytes(&buf)
    }

    /// Re-hash every referenced shard file under `dir` and compare
    /// against the recorded digests, so a truncated, swapped, or
    /// bit-rotted shard snapshot is refused before it serves queries.
    ///
    /// # Errors
    /// [`ClusterError::Manifest`] naming the first mismatching file.
    pub fn verify(&self, dir: &Path) -> Result<(), ClusterError> {
        for (i, s) in self.shards.iter().enumerate() {
            for (name, expected) in [(&s.snapshot, s.snapshot_fnv), (&s.names, s.names_fnv)] {
                let mut buf = Vec::new();
                std::fs::File::open(dir.join(name))
                    .and_then(|mut f| f.read_to_end(&mut buf))
                    .map_err(ClusterError::Io)?;
                let got = fnv1a64(&buf);
                if got != expected {
                    return Err(ClusterError::Manifest(format!(
                        "shard {i} file '{name}' digest {got:#018x} != recorded {expected:#018x}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> ClusterManifest {
        ClusterManifest {
            num_shards: 2,
            total_nodes: 5,
            dim: 4,
            shards: vec![
                ShardEntry {
                    snapshot: "shard_0.bin".into(),
                    names: "shard_0.names".into(),
                    nodes: 3,
                    snapshot_fnv: 0xdead,
                    names_fnv: 0xbeef,
                },
                ShardEntry {
                    snapshot: "shard_1.bin".into(),
                    names: "shard_1.names".into(),
                    nodes: 2,
                    snapshot_fnv: 1,
                    names_fnv: 2,
                },
            ],
        }
    }

    #[test]
    fn ownership_arithmetic_roundtrips() {
        for shards in [1u32, 2, 4, 7] {
            for global in 0..100u32 {
                let (s, l) = owner_of(global, shards);
                assert!(s < shards);
                assert_eq!(global_of(s, l, shards), global);
            }
        }
        // Monotone within a shard: local order == global order.
        let (_, l5) = owner_of(5, 4);
        let (_, l9) = owner_of(9, 4);
        assert!(l5 < l9, "5 and 9 both live on shard 1; local order must match");
    }

    #[test]
    fn byte_roundtrip() {
        let m = manifest();
        assert_eq!(ClusterManifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn corrupt_manifests_rejected() {
        let m = manifest();
        let bytes = m.to_bytes();
        // Every truncation fails.
        for cut in 0..bytes.len() {
            assert!(ClusterManifest::from_bytes(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        // Any flipped payload byte fails the checksum.
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(ClusterManifest::from_bytes(&bad).is_err(), "flip at {i} accepted");
        }
        // Bad magic / version.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ClusterManifest::from_bytes(&bad).is_err());
        let mut bad = bytes;
        bad[4] = 9;
        assert!(ClusterManifest::from_bytes(&bad).is_err());
    }

    #[test]
    fn save_load_and_verify() {
        let dir = std::env::temp_dir().join("ehna_cluster_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Write the shard files first so digests are real.
        let mut m = manifest();
        for (i, s) in m.shards.iter_mut().enumerate() {
            let snap = format!("snapshot bytes {i}");
            let names = format!("names bytes {i}");
            std::fs::write(dir.join(&s.snapshot), &snap).unwrap();
            std::fs::write(dir.join(&s.names), &names).unwrap();
            s.snapshot_fnv = fnv1a64(snap.as_bytes());
            s.names_fnv = fnv1a64(names.as_bytes());
        }
        m.save(&dir).unwrap();
        let back = ClusterManifest::load(&dir).unwrap();
        assert_eq!(back, m);
        back.verify(&dir).unwrap();
        // Tamper with one shard file: verify must name it.
        std::fs::write(dir.join("shard_1.bin"), b"swapped!").unwrap();
        let err = back.verify(&dir).unwrap_err();
        assert!(err.to_string().contains("shard_1.bin"), "err: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
