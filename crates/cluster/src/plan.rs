//! The shard planner: partition one EHNS embedding snapshot into N
//! shard snapshots plus a checksummed [`ClusterManifest`].
//!
//! Partitioning is round-robin by global row id: global `g` lands on
//! shard `g % N` at local index `g / N` (see
//! [`owner_of`](crate::manifest::owner_of)). Round-robin keeps shard
//! sizes within one row of each other for any table, and — because the
//! global→local map is monotone within a shard — makes shard-local id
//! order equal global id order, which is what lets the router merge
//! per-shard top-k lists with *exact* global tie-breaking.
//!
//! Every shard gets a names file of **global labels** (the source name
//! map's names, or decimal global ids for anonymous tables). Shards
//! resolve keys through names only, so a global decimal key can never be
//! misread as a shard-local row number, and shard responses can label
//! neighbors exactly as a single-node server would.

use crate::manifest::{owner_of, ClusterManifest, ShardEntry};
use crate::proto::fnv1a64;
use crate::ClusterError;
use ehna_nn::ioutil::atomic_write_path;
use ehna_tgraph::{NameMap, NodeEmbeddings, NodeId, QuantizedEmbeddings};
use std::io::Write;
use std::path::Path;

/// File name of shard `i`'s embedding snapshot.
pub fn shard_snapshot_name(shard: u32) -> String {
    format!("shard_{shard}.bin")
}

/// File name of shard `i`'s names file.
pub fn shard_names_name(shard: u32) -> String {
    format!("shard_{shard}.names")
}

/// Partition `emb` (with optional `names`) into `num_shards` shard
/// snapshots under `out_dir`, and write `out_dir/cluster.manifest`.
/// Returns the manifest.
///
/// # Errors
/// [`ClusterError::Plan`] on invalid inputs (zero shards, a names file
/// of the wrong length); IO failures writing the shard files. More
/// shards than rows is *valid*: the extra shards hold zero rows.
pub fn plan_shards(
    emb: &NodeEmbeddings,
    names: Option<&NameMap>,
    num_shards: u32,
    out_dir: &Path,
) -> Result<ClusterManifest, ClusterError> {
    plan_with(emb.num_nodes(), emb.dim(), names, num_shards, out_dir, |globals| {
        let mut rows: Vec<f32> = Vec::with_capacity(globals.len() * emb.dim());
        for &global in globals {
            rows.extend_from_slice(emb.get(NodeId(global)));
        }
        Ok(NodeEmbeddings::from_vec(emb.dim(), rows).to_bytes())
    })
}

/// [`plan_shards`] over a quantized EHNQ table: each shard snapshot is an
/// EHNQ file in the *same* format as the source, with the source's
/// codebooks/scales copied verbatim and the shard's row codes sliced out
/// (never re-encoded). A shard row therefore scores bit-identically to
/// the same row in the standalone table, which keeps the router's
/// byte-identical equivalence gate intact for quantized clusters.
///
/// # Errors
/// Same failure modes as [`plan_shards`].
pub fn plan_shards_quant(
    q: &QuantizedEmbeddings,
    names: Option<&NameMap>,
    num_shards: u32,
    out_dir: &Path,
) -> Result<ClusterManifest, ClusterError> {
    plan_with(q.num_nodes(), q.dim(), names, num_shards, out_dir, |globals| {
        let rows: Vec<usize> = globals.iter().map(|&g| g as usize).collect();
        q.select_rows(&rows).map_err(|e| ClusterError::Plan(e.to_string()))
    })
}

/// The shared partitioning loop: `snapshot_bytes` maps one shard's
/// global row ids (ascending) to its serialized snapshot file.
fn plan_with(
    total: usize,
    dim: usize,
    names: Option<&NameMap>,
    num_shards: u32,
    out_dir: &Path,
    mut snapshot_bytes: impl FnMut(&[u32]) -> Result<Vec<u8>, ClusterError>,
) -> Result<ClusterManifest, ClusterError> {
    if num_shards == 0 {
        return Err(ClusterError::Plan("shard count must be at least 1".into()));
    }
    // Fewer rows than shards is allowed: some shards simply hold zero
    // rows (their knn answer is an empty list and the router's merge
    // ignores them). Refusing would make small or freshly-bootstrapped
    // tables unservable on a fixed-size cluster.
    if let Some(map) = names {
        if map.len() != total {
            return Err(ClusterError::Plan(format!(
                "name map has {} names but snapshot has {total} rows",
                map.len()
            )));
        }
    }
    std::fs::create_dir_all(out_dir).map_err(ClusterError::Io)?;

    let mut entries = Vec::with_capacity(num_shards as usize);
    for shard in 0..num_shards {
        // Walk globals in order; g % N == shard lands at local g / N, so
        // pushing in global order *is* pushing in local order.
        let globals: Vec<u32> = (shard..total as u32).step_by(num_shards as usize).collect();
        let mut shard_names = NameMap::new();
        for &global in &globals {
            debug_assert_eq!(owner_of(global, num_shards).0, shard);
            let label = match names.and_then(|m| m.name(NodeId(global))) {
                Some(name) => name.to_string(),
                None => global.to_string(),
            };
            shard_names.intern(&label);
        }
        let snap_bytes = snapshot_bytes(&globals)?;

        let snap_name = shard_snapshot_name(shard);
        let names_name = shard_names_name(shard);
        atomic_write_path(&out_dir.join(&snap_name), |w| w.write_all(&snap_bytes))
            .map_err(ClusterError::Io)?;
        let mut names_bytes = Vec::new();
        shard_names.save(&mut names_bytes).map_err(ClusterError::Io)?;
        atomic_write_path(&out_dir.join(&names_name), |w| w.write_all(&names_bytes))
            .map_err(ClusterError::Io)?;

        entries.push(ShardEntry {
            snapshot: snap_name,
            names: names_name,
            nodes: globals.len() as u64,
            snapshot_fnv: fnv1a64(&snap_bytes),
            names_fnv: fnv1a64(&names_bytes),
        });
    }

    let manifest =
        ClusterManifest { num_shards, total_nodes: total as u64, dim: dim as u32, shards: entries };
    manifest.save(out_dir)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_serve::EmbeddingStore;

    fn emb(n: usize, dim: usize) -> NodeEmbeddings {
        let data: Vec<f32> = (0..n * dim).map(|i| i as f32 * 0.5).collect();
        NodeEmbeddings::from_vec(dim, data)
    }

    #[test]
    fn round_robin_partition_covers_every_row_once() {
        let dir = std::env::temp_dir().join("ehna_cluster_plan_rr");
        let source = emb(10, 3);
        let m = plan_shards(&source, None, 4, &dir).unwrap();
        assert_eq!(m.num_shards, 4);
        assert_eq!(m.total_nodes, 10);
        assert_eq!(m.shards.iter().map(|s| s.nodes).sum::<u64>(), 10);
        // Shard sizes within one row of each other: 3,3,2,2.
        assert_eq!(m.shards.iter().map(|s| s.nodes).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
        m.verify(&dir).unwrap();

        // Every global row appears at its computed (shard, local) slot,
        // bit-identical, labeled with its global id.
        for global in 0..10u32 {
            let (shard, local) = owner_of(global, 4);
            let store = EmbeddingStore::open(
                dir.join(&m.shards[shard as usize].snapshot),
                Some(dir.join(&m.shards[shard as usize].names)),
            )
            .unwrap();
            assert_eq!(store.row(NodeId(local)).unwrap(), source.get(NodeId(global)));
            assert_eq!(store.label(NodeId(local)), global.to_string());
            assert_eq!(store.resolve_name(&global.to_string()), Some(NodeId(local)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn named_tables_keep_their_names() {
        let dir = std::env::temp_dir().join("ehna_cluster_plan_named");
        let mut names = NameMap::new();
        for n in ["alice", "bob", "carol", "dave", "eve"] {
            names.intern(n);
        }
        let m = plan_shards(&emb(5, 2), Some(&names), 2, &dir).unwrap();
        // "carol" is global 2 -> shard 0, local 1.
        let store = EmbeddingStore::open(
            dir.join(&m.shards[0].snapshot),
            Some(dir.join(&m.shards[0].names)),
        )
        .unwrap();
        assert_eq!(store.resolve_name("carol"), Some(NodeId(1)));
        assert_eq!(store.resolve_name("bob"), None, "bob lives on shard 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_shard_is_the_identity_partition() {
        let dir = std::env::temp_dir().join("ehna_cluster_plan_one");
        let source = emb(6, 2);
        let m = plan_shards(&source, None, 1, &dir).unwrap();
        let back = NodeEmbeddings::load_path(dir.join(&m.shards[0].snapshot)).unwrap();
        assert_eq!(back, source);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quant_plan_slices_codes_verbatim() {
        use ehna_tgraph::quant::{QuantFormat, QuantSpec};
        let dir = std::env::temp_dir().join("ehna_cluster_plan_quant");
        let source = emb(10, 4);
        for format in [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8] {
            let q = QuantizedEmbeddings::encode(&source, &QuantSpec::new(format)).unwrap();
            let m = plan_shards_quant(&q, None, 3, &dir).unwrap();
            m.verify(&dir).unwrap();
            assert_eq!(m.shards.iter().map(|s| s.nodes).sum::<u64>(), 10);
            for global in 0..10u32 {
                let (shard, local) = owner_of(global, 3);
                let sq = QuantizedEmbeddings::open_path(
                    dir.join(&m.shards[shard as usize].snapshot),
                    false,
                )
                .unwrap();
                assert_eq!(sq.format(), format);
                // Decoded shard row == decoded global row, bit for bit.
                assert_eq!(
                    &*sq.row(local as usize),
                    &*q.row(global as usize),
                    "{format:?} global {global}"
                );
                // And the shard store resolves the global label.
                let store = EmbeddingStore::open(
                    dir.join(&m.shards[shard as usize].snapshot),
                    Some(dir.join(&m.shards[shard as usize].names)),
                )
                .unwrap();
                assert_eq!(store.resolve_name(&global.to_string()), Some(NodeId(local)));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_plans_are_refused() {
        let dir = std::env::temp_dir().join("ehna_cluster_plan_bad");
        assert!(plan_shards(&emb(3, 2), None, 0, &dir).is_err(), "zero shards");
        let mut short = NameMap::new();
        short.intern("only");
        assert!(plan_shards(&emb(3, 2), Some(&short), 2, &dir).is_err(), "short names");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn more_shards_than_rows_leaves_trailing_shards_empty() {
        let dir = std::env::temp_dir().join("ehna_cluster_plan_sparse");
        let source = emb(3, 2);
        let m = plan_shards(&source, None, 4, &dir).unwrap();
        assert_eq!(m.shards.iter().map(|s| s.nodes).collect::<Vec<_>>(), vec![1, 1, 1, 0]);
        m.verify(&dir).unwrap();
        // The empty shard's files open into a zero-row store.
        let store = EmbeddingStore::open(
            dir.join(&m.shards[3].snapshot),
            Some(dir.join(&m.shards[3].names)),
        )
        .unwrap();
        assert_eq!(store.num_nodes(), 0);
        // A fully empty table plans too (every shard empty).
        let m0 = plan_shards(&emb(0, 2), None, 2, &dir).unwrap();
        assert_eq!(m0.total_nodes, 0);
        m0.verify(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
