//! EHNP v2 — the compact length-prefixed binary protocol for
//! router↔shard traffic.
//!
//! JSON-over-TCP stays as the debug surface (humans, `ehna query`,
//! integration tests), but a router scatter-gathering every query across
//! N shards would pay JSON formatting and parsing N times per request.
//! EHNP frames the same operations in binary, with a request id per
//! frame so one connection multiplexes many in-flight requests.
//!
//! ## Connection preamble
//!
//! A client opens with 8 bytes — `"EHNP"` then `version u32 LE` — so a
//! JSON client that dials the shard port by mistake is rejected with a
//! clear error instead of a hung read.
//!
//! ## Frame format
//!
//! ```text
//! frame:   len u32 LE | payload (len bytes) | fnv1a64(payload) u64 LE
//! payload: req_id u64 LE | kind u8 | body
//! ```
//!
//! The framing mirrors the EHNL edge log: same length prefix, same
//! trailing FNV-1a 64 digest (via [`ehna_nn::ioutil::ChecksumWriter`],
//! so the digest can never drift from the checkpoint formats), and the
//! same discipline of checking `len` against [`MAX_FRAME_LEN`] *before*
//! allocating, so a corrupted or hostile length field cannot drive an
//! OOM. All multi-byte integers are little-endian; `f32`/`f64` travel as
//! their LE bit patterns.
//!
//! Responses are self-describing (they carry their own kind byte rather
//! than being keyed off the originating request), which keeps decode
//! stateless and lets a multiplexing client route purely by `req_id`.

use ehna_nn::ioutil::ChecksumWriter;
use std::io::{self, Read, Write};

/// Connection preamble magic.
pub const EHNP_MAGIC: [u8; 4] = *b"EHNP";
/// Protocol version spoken by this build. v2 extended `Pong` with the
/// replica's snapshot version (the router's cache-invalidation signal)
/// and `Knn` probe info with the index's `nprobe`; both ends of a
/// cluster must be upgraded together — the preamble check rejects a
/// version mismatch with a clear error instead of a misparse.
pub const EHNP_VERSION: u32 = 2;
/// Hard cap on one frame's payload, checked *before* allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Errors reading or decoding EHNP traffic.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying IO failure (including truncation mid-frame).
    Io(io::Error),
    /// A structurally invalid frame: oversized length, checksum
    /// mismatch, unknown kind, or a body that does not parse.
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "ehnp io error: {e}"),
            ProtoError::Corrupt(msg) => write!(f, "ehnp frame corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// FNV-1a 64 digest, shared with the EHNL/EHNC formats.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut cw = ChecksumWriter::new(io::sink());
    cw.write_all(bytes).expect("sink never fails");
    cw.digest()
}

/// A router→shard request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check (health probes keep idle connections warm).
    Ping,
    /// Top-`k` scan of this shard's rows for a free query vector.
    Knn {
        /// How many neighbors to return (the router over-fetches by one
        /// when it will exclude the query node afterwards).
        k: u32,
        /// Whether to return probe diagnostics.
        explain: bool,
        /// The query vector.
        vector: Vec<f32>,
    },
    /// Name-map-only key lookup (no decimal fallback: shard rows are
    /// locally indexed, so a global decimal key must never be misread as
    /// a local row number).
    Resolve {
        /// The query key.
        key: String,
    },
    /// Fetch one row by *local* index — the router's numeric-key path,
    /// after it has computed ownership arithmetic itself.
    GetRow {
        /// Local row index on this shard.
        local: u32,
    },
    /// The shard's `stats` document (JSON text, debug surface).
    Stats,
    /// Re-run the shard's reloader and hot-swap the snapshot.
    Reload,
}

/// A shard→router response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; the message says why.
    Error(String),
    /// Ping acknowledged.
    Pong {
        /// The replica's current snapshot version — piggybacked on every
        /// probe so the router's version-keyed response cache learns
        /// about out-of-band reloads within one probe interval.
        version: u64,
    },
    /// Shard-local k-NN results, ascending by `(dist, local)`.
    Knn {
        /// `(local index, distance, global label)` per neighbor.
        neighbors: Vec<(u32, f64, String)>,
        /// Probe diagnostics when the request asked to explain:
        /// `(probed centroids, rows scanned, nprobe)` — `nprobe` is 0
        /// for exact indexes (brute force probes nothing).
        info: Option<(Vec<u32>, u64, u32)>,
    },
    /// Key resolution outcome: the row when this shard owns the key.
    Resolved {
        /// `(local index, global label, row)` when found; `None` when
        /// this shard's name map has no such key.
        hit: Option<(u32, String, Vec<f32>)>,
    },
    /// One row fetched by local index.
    Row {
        /// Local row index.
        local: u32,
        /// Global label of the row.
        label: String,
        /// The row itself.
        row: Vec<f32>,
    },
    /// The shard's `stats` document as JSON text.
    StatsText(String),
    /// Snapshot hot-swap completed.
    Reloaded {
        /// New snapshot version.
        version: u64,
        /// Rows in the new snapshot.
        nodes: u64,
    },
}

/// Encoding/decoding of one message direction. Implemented by
/// [`Request`] and [`Response`]; the frame layer is shared.
pub trait Wire: Sized {
    /// The kind byte identifying the variant on the wire.
    fn kind(&self) -> u8;
    /// Append the body (everything after the kind byte) to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);
    /// Decode a body back into the variant named by `kind`.
    ///
    /// # Errors
    /// [`ProtoError::Corrupt`] on unknown kinds or malformed bodies.
    fn decode(kind: u8, body: &[u8]) -> Result<Self, ProtoError>;
}

/// Bounds-checked little-endian reader over a frame body. Every length
/// field is validated against the remaining bytes before any allocation,
/// so a corrupt count cannot cause an OOM (the body itself is already
/// capped at [`MAX_FRAME_LEN`]).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Corrupt(format!(
                "body truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ProtoError> {
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| ProtoError::Corrupt(format!("f32 count {n} overflows")))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ProtoError::Corrupt("string field is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl Wire for Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Ping => 0,
            Request::Knn { .. } => 1,
            Request::Resolve { .. } => 2,
            Request::GetRow { .. } => 3,
            Request::Stats => 4,
            Request::Reload => 5,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping | Request::Stats | Request::Reload => {}
            Request::Knn { k, explain, vector } => {
                out.extend_from_slice(&k.to_le_bytes());
                out.push(u8::from(*explain));
                out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
                put_f32s(out, vector);
            }
            Request::Resolve { key } => put_string(out, key),
            Request::GetRow { local } => out.extend_from_slice(&local.to_le_bytes()),
        }
    }

    fn decode(kind: u8, body: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(body);
        let req = match kind {
            0 => Request::Ping,
            1 => {
                let k = c.u32()?;
                let explain = c.u8()? != 0;
                let dim = c.u32()? as usize;
                Request::Knn { k, explain, vector: c.f32s(dim)? }
            }
            2 => Request::Resolve { key: c.string()? },
            3 => Request::GetRow { local: c.u32()? },
            4 => Request::Stats,
            5 => Request::Reload,
            other => return Err(ProtoError::Corrupt(format!("unknown request kind {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Wire for Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Error(_) => 0,
            Response::Pong { .. } => 1,
            Response::Knn { .. } => 2,
            Response::Resolved { .. } => 3,
            Response::Row { .. } => 4,
            Response::StatsText(_) => 5,
            Response::Reloaded { .. } => 6,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong { version } => out.extend_from_slice(&version.to_le_bytes()),
            Response::Error(msg) => put_string(out, msg),
            Response::Knn { neighbors, info } => {
                out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
                for (local, dist, label) in neighbors {
                    out.extend_from_slice(&local.to_le_bytes());
                    out.extend_from_slice(&dist.to_le_bytes());
                    put_string(out, label);
                }
                match info {
                    None => out.push(0),
                    Some((probed, scanned, nprobe)) => {
                        out.push(1);
                        out.extend_from_slice(&(probed.len() as u32).to_le_bytes());
                        for &p in probed {
                            out.extend_from_slice(&p.to_le_bytes());
                        }
                        out.extend_from_slice(&scanned.to_le_bytes());
                        out.extend_from_slice(&nprobe.to_le_bytes());
                    }
                }
            }
            Response::Resolved { hit } => match hit {
                None => out.push(0),
                Some((local, label, row)) => {
                    out.push(1);
                    out.extend_from_slice(&local.to_le_bytes());
                    put_string(out, label);
                    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                    put_f32s(out, row);
                }
            },
            Response::Row { local, label, row } => {
                out.extend_from_slice(&local.to_le_bytes());
                put_string(out, label);
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                put_f32s(out, row);
            }
            Response::StatsText(text) => put_string(out, text),
            Response::Reloaded { version, nodes } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&nodes.to_le_bytes());
            }
        }
    }

    fn decode(kind: u8, body: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(body);
        let resp = match kind {
            0 => Response::Error(c.string()?),
            1 => Response::Pong { version: c.u64()? },
            2 => {
                let count = c.u32()? as usize;
                let mut neighbors = Vec::with_capacity(count.min(body.len() / 12 + 1));
                for _ in 0..count {
                    let local = c.u32()?;
                    let dist = c.f64()?;
                    let label = c.string()?;
                    neighbors.push((local, dist, label));
                }
                let info = match c.u8()? {
                    0 => None,
                    1 => {
                        let n = c.u32()? as usize;
                        let mut probed = Vec::with_capacity(n.min(body.len() / 4 + 1));
                        for _ in 0..n {
                            probed.push(c.u32()?);
                        }
                        let scanned = c.u64()?;
                        let nprobe = c.u32()?;
                        Some((probed, scanned, nprobe))
                    }
                    other => {
                        return Err(ProtoError::Corrupt(format!("bad info flag {other}")));
                    }
                };
                Response::Knn { neighbors, info }
            }
            3 => {
                let hit = match c.u8()? {
                    0 => None,
                    1 => {
                        let local = c.u32()?;
                        let label = c.string()?;
                        let dim = c.u32()? as usize;
                        Some((local, label, c.f32s(dim)?))
                    }
                    other => {
                        return Err(ProtoError::Corrupt(format!("bad hit flag {other}")));
                    }
                };
                Response::Resolved { hit }
            }
            4 => {
                let local = c.u32()?;
                let label = c.string()?;
                let dim = c.u32()? as usize;
                Response::Row { local, label, row: c.f32s(dim)? }
            }
            5 => Response::StatsText(c.string()?),
            6 => Response::Reloaded { version: c.u64()?, nodes: c.u64()? },
            other => return Err(ProtoError::Corrupt(format!("unknown response kind {other}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Encode one message into a complete frame (length prefix, payload,
/// trailing digest).
pub fn encode_frame<M: Wire>(req_id: u64, msg: &M) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&req_id.to_le_bytes());
    payload.push(msg.kind());
    msg.encode_body(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame
}

/// Write one framed message (single `write_all`, no flush).
///
/// # Errors
/// IO failures.
pub fn write_msg<W: Write, M: Wire>(w: &mut W, req_id: u64, msg: &M) -> io::Result<()> {
    w.write_all(&encode_frame(req_id, msg))
}

/// Decode one complete frame from a byte slice, returning the message
/// and the bytes consumed. Used by tests; sockets use [`read_msg`].
///
/// # Errors
/// [`ProtoError::Corrupt`] on truncation, checksum mismatch, oversized
/// length, or a malformed body.
pub fn decode_frame<M: Wire>(buf: &[u8]) -> Result<((u64, M), usize), ProtoError> {
    if buf.len() < 4 {
        return Err(ProtoError::Corrupt("frame truncated before length".into()));
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Corrupt(format!("frame length {len} exceeds cap {MAX_FRAME_LEN}")));
    }
    let len = len as usize;
    let total = 4 + len + 8;
    if buf.len() < total {
        return Err(ProtoError::Corrupt(format!(
            "frame truncated: need {total} bytes, have {}",
            buf.len()
        )));
    }
    let payload = &buf[4..4 + len];
    let digest = u64::from_le_bytes(buf[4 + len..total].try_into().expect("8 bytes"));
    if digest != fnv1a64(payload) {
        return Err(ProtoError::Corrupt("checksum mismatch".into()));
    }
    if payload.len() < 9 {
        return Err(ProtoError::Corrupt(format!("payload of {} bytes has no header", len)));
    }
    let req_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let msg = M::decode(payload[8], &payload[9..])?;
    Ok(((req_id, msg), total))
}

/// Read one framed message from a stream. The length field is validated
/// against [`MAX_FRAME_LEN`] before the payload is allocated.
///
/// # Errors
/// [`ProtoError::Io`] on socket errors (including `UnexpectedEof` when
/// the peer hangs up mid-frame), [`ProtoError::Corrupt`] on invalid
/// frames.
pub fn read_msg<R: Read, M: Wire>(r: &mut R) -> Result<(u64, M), ProtoError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    read_msg_after_len(r, len_buf)
}

/// Finish reading a frame whose 4-byte length prefix was already read —
/// lets servers distinguish "idle at a frame boundary" (keep-alive) from
/// "stalled mid-frame" (drop the connection).
///
/// # Errors
/// Same as [`read_msg`].
pub fn read_msg_after_len<R: Read, M: Wire>(
    r: &mut R,
    len_buf: [u8; 4],
) -> Result<(u64, M), ProtoError> {
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Corrupt(format!("frame length {len} exceeds cap {MAX_FRAME_LEN}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut digest_buf = [0u8; 8];
    r.read_exact(&mut digest_buf)?;
    if u64::from_le_bytes(digest_buf) != fnv1a64(&payload) {
        return Err(ProtoError::Corrupt("checksum mismatch".into()));
    }
    if payload.len() < 9 {
        return Err(ProtoError::Corrupt(format!(
            "payload of {} bytes has no header",
            payload.len()
        )));
    }
    let req_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let msg = M::decode(payload[8], &payload[9..])?;
    Ok((req_id, msg))
}

/// Send the connection preamble (client side).
///
/// # Errors
/// IO failures.
pub fn write_preamble<W: Write>(w: &mut W) -> io::Result<()> {
    let mut buf = [0u8; 8];
    buf[..4].copy_from_slice(&EHNP_MAGIC);
    buf[4..].copy_from_slice(&EHNP_VERSION.to_le_bytes());
    w.write_all(&buf)
}

/// Validate the connection preamble (server side).
///
/// # Errors
/// [`ProtoError::Corrupt`] when the peer does not speak this EHNP
/// version.
pub fn read_preamble<R: Read>(r: &mut R) -> Result<(), ProtoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if buf[..4] != EHNP_MAGIC {
        return Err(ProtoError::Corrupt("bad preamble magic (not an EHNP client?)".into()));
    }
    let version = u32::from_le_bytes(buf[4..].try_into().expect("4 bytes"));
    if version != EHNP_VERSION {
        return Err(ProtoError::Corrupt(format!("unsupported EHNP version {version}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = encode_frame(42, &req);
        let ((id, back), used) = decode_frame::<Request>(&frame).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, req);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Knn { k: 7, explain: true, vector: vec![1.5, -2.0, 0.0] });
        roundtrip_req(Request::Knn { k: 0, explain: false, vector: vec![] });
        roundtrip_req(Request::Resolve { key: "alice".into() });
        roundtrip_req(Request::Resolve { key: String::new() });
        roundtrip_req(Request::GetRow { local: u32::MAX });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Reload);
    }

    fn roundtrip_resp(resp: Response) {
        let frame = encode_frame(7, &resp);
        let ((id, back), used) = decode_frame::<Response>(&frame).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, resp);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong { version: 0 });
        roundtrip_resp(Response::Pong { version: u64::MAX });
        roundtrip_resp(Response::Error("shard on fire".into()));
        roundtrip_resp(Response::Knn {
            neighbors: vec![(0, 0.5, "a".into()), (9, 1.25, "b".into())],
            info: Some((vec![1, 3], 100, 8)),
        });
        roundtrip_resp(Response::Knn {
            neighbors: vec![(2, 0.0, "c".into())],
            info: Some((vec![], 7, 0)),
        });
        roundtrip_resp(Response::Knn { neighbors: vec![], info: None });
        roundtrip_resp(Response::Resolved { hit: Some((3, "bob".into(), vec![0.25, -1.0])) });
        roundtrip_resp(Response::Resolved { hit: None });
        roundtrip_resp(Response::Row { local: 1, label: "5".into(), row: vec![9.0] });
        roundtrip_resp(Response::StatsText("{\"ok\":true}".into()));
        roundtrip_resp(Response::Reloaded { version: 3, nodes: 1000 });
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode_frame(1, &Request::Ping);
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame::<Request>(&frame) {
            Err(ProtoError::Corrupt(msg)) => assert!(msg.contains("cap"), "msg: {msg}"),
            other => panic!("oversized frame accepted: {other:?}"),
        }
        // The streaming path must reject it too (before the alloc).
        let mut r = &frame[..];
        assert!(matches!(read_msg::<_, Request>(&mut r), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut frame = encode_frame(1, &Request::Resolve { key: "alice".into() });
        let mid = frame.len() / 2;
        frame[mid] ^= 0xFF;
        assert!(decode_frame::<Request>(&frame).is_err());
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let frame =
            encode_frame(9, &Response::Knn { neighbors: vec![(1, 2.0, "x".into())], info: None });
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<Response>(&frame[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn preamble_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        read_preamble(&mut &buf[..]).unwrap();
        assert!(read_preamble(&mut &b"{\"op\":\"pi"[..]).is_err(), "JSON accepted as EHNP");
        let mut wrong = buf.clone();
        wrong[4] = 99;
        assert!(read_preamble(&mut &wrong[..]).is_err(), "wrong version accepted");
    }

    #[test]
    fn streamed_messages_roundtrip() {
        let mut wire = Vec::new();
        write_msg(&mut wire, 1, &Request::Ping).unwrap();
        write_msg(&mut wire, 2, &Request::GetRow { local: 5 }).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_msg::<_, Request>(&mut r).unwrap(), (1, Request::Ping));
        assert_eq!(read_msg::<_, Request>(&mut r).unwrap(), (2, Request::GetRow { local: 5 }));
        assert!(matches!(read_msg::<_, Request>(&mut r), Err(ProtoError::Io(_))), "EOF is Io");
    }
}
