//! The EHNP shard server — one partition's binary query endpoint.
//!
//! A shard process runs the ordinary JSON [`ehna_serve::Server`] for
//! humans and debugging, plus a [`ShardServer`] on a second port for
//! router traffic. Both fronts share one [`QueryEngine`], so stats,
//! per-op counters, and hot-swapped snapshots stay coherent across
//! protocols.
//!
//! Connections are long-lived and multiplexed: a connection idling at a
//! frame boundary is healthy keep-alive (the router holds one connection
//! per replica for hours), while a connection that stalls *mid-frame*
//! for longer than the frame deadline is dropped as wedged. The split is
//! why frame reads go through [`read_full`] rather than a blanket socket
//! timeout — a timeout inside `read_exact` can eat bytes and desync the
//! framing.

use crate::proto::{decode_frame, write_msg, ProtoError, Request, Response, MAX_FRAME_LEN};
use ehna_serve::{handle_line, QueryEngine, Reloader, RequestLimits, Role, ServeError};
use ehna_tgraph::NodeId;
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for one shard endpoint.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// This shard's id within the cluster (reported via `stats`).
    pub shard_id: u32,
    /// How long a peer may take to finish a frame it has started (or
    /// the preamble) before the connection is dropped as wedged.
    pub frame_deadline: Duration,
    /// Poll granularity for the accept loop and idle reads; bounds
    /// shutdown latency.
    pub poll: Duration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shard_id: 0,
            frame_deadline: Duration::from_secs(10),
            poll: Duration::from_millis(50),
        }
    }
}

/// A bound-but-not-yet-serving EHNP endpoint.
pub struct ShardServer {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    limits: RequestLimits,
    reloader: Option<Reloader>,
    config: ShardConfig,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("addr", &self.listener.local_addr().ok())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Handle to a running [`ShardServer`]; dropping it without calling
/// [`shutdown`](ShardHandle::shutdown) leaves the threads detached.
pub struct ShardHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Bind the EHNP endpoint and stamp the engine's identity as shard
    /// `config.shard_id` (visible in `stats` on both protocol fronts).
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<QueryEngine>,
        limits: RequestLimits,
        reloader: Option<Reloader>,
        config: ShardConfig,
    ) -> io::Result<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        engine.stats_raw().set_identity(Role::Shard, Some(config.shard_id));
        Ok(ShardServer { listener, engine, limits, reloader, config })
    }

    /// The bound address (useful with port 0 in tests).
    ///
    /// # Errors
    /// If the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting router connections.
    ///
    /// # Errors
    /// If the listener cannot be made non-blocking.
    pub fn spawn(self) -> io::Result<ShardHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name(format!("ehnp-shard-{}", self.config.shard_id))
            .spawn(move || accept_loop(self, &stop2))
            .expect("spawn shard accept loop");
        Ok(ShardHandle { addr, stop, accept: Some(accept) })
    }
}

impl ShardHandle {
    /// The address the shard is serving EHNP on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake idle connections, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(server: ShardServer, stop: &Arc<AtomicBool>) {
    let ShardServer { listener, engine, limits, reloader, config } = server;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(&engine);
                let limits = limits.clone();
                let reloader = reloader.clone();
                let config = config.clone();
                let stop = Arc::clone(stop);
                conns.retain(|h| !h.is_finished());
                conns.push(
                    std::thread::Builder::new()
                        .name("ehnp-conn".into())
                        .spawn(move || {
                            let _ = serve_conn(stream, &engine, &limits, &reloader, &config, &stop);
                        })
                        .expect("spawn shard connection"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll);
            }
            Err(_) => std::thread::sleep(config.poll),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Outcome of one polled read.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// The peer closed cleanly before sending anything.
    Closed,
    /// The server is shutting down.
    Stop,
}

/// Fill `buf` from `stream`, polling every `poll` so the stop flag stays
/// responsive. When `idle_ok`, the peer may take forever to send the
/// *first* byte (keep-alive at a frame boundary); once any byte arrives
/// — or always, when `!idle_ok` — the rest must land within `deadline`.
///
/// Partial progress is kept in `buf` across polls, which is the whole
/// point: a socket-level timeout inside `read_exact` would discard
/// half-read bytes and desync the frame stream.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle_ok: bool,
    deadline: Duration,
    stop: &AtomicBool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0usize;
    let mut started: Option<Instant> = if idle_ok { None } else { Some(Instant::now()) };
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Stop);
        }
        if let Some(t0) = started {
            if t0.elapsed() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("peer stalled mid-frame ({filled}/{} bytes)", buf.len()),
                ));
            }
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(ReadOutcome::Closed);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => {
                if started.is_none() {
                    started = Some(Instant::now());
                }
                filled += n;
                if filled == buf.len() {
                    return Ok(ReadOutcome::Full);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn serve_conn(
    mut stream: TcpStream,
    engine: &Arc<QueryEngine>,
    limits: &RequestLimits,
    reloader: &Option<Reloader>,
    config: &ShardConfig,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.poll))?;
    stream.set_write_timeout(Some(config.frame_deadline))?;

    // Preamble: must arrive promptly, and must be EHNP (a JSON client
    // that dialed the wrong port gets a hangup, not a hung read).
    let mut preamble = [0u8; 8];
    match read_full(&mut stream, &mut preamble, false, config.frame_deadline, stop)? {
        ReadOutcome::Full => {}
        ReadOutcome::Closed | ReadOutcome::Stop => return Ok(()),
    }
    if crate::proto::read_preamble(&mut &preamble[..]).is_err() {
        return Ok(()); // wrong protocol: drop without guessing a framing
    }

    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        // Frame length prefix: idling here is healthy keep-alive.
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, true, config.frame_deadline, stop)? {
            ReadOutcome::Full => {}
            ReadOutcome::Closed | ReadOutcome::Stop => return Ok(()),
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            return Ok(()); // hostile or corrupt length: drop before allocating
        }
        // Rest of the frame: the peer has started, so it must finish.
        let mut rest = vec![0u8; len as usize + 8];
        match read_full(&mut stream, &mut rest, false, config.frame_deadline, stop)? {
            ReadOutcome::Full => {}
            ReadOutcome::Closed | ReadOutcome::Stop => return Ok(()),
        }
        let mut frame = Vec::with_capacity(4 + rest.len());
        frame.extend_from_slice(&len_buf);
        frame.extend_from_slice(&rest);
        let (req_id, req) = match decode_frame::<Request>(&frame) {
            Ok(((id, req), _)) => (id, req),
            // Framing is lost (bad checksum / malformed payload): the
            // only safe recovery is a fresh connection.
            Err(ProtoError::Io(_) | ProtoError::Corrupt(_)) => return Ok(()),
        };
        let resp = answer(engine, limits, reloader, req);
        write_msg(&mut writer, req_id, &resp)?;
        writer.flush()?;
    }
}

/// Dispatch one EHNP request against the shared engine. Mirrors the JSON
/// layer's accounting: every dispatched op lands in the per-op counters,
/// failures come back as [`Response::Error`] without dropping the
/// connection.
fn answer(
    engine: &Arc<QueryEngine>,
    limits: &RequestLimits,
    reloader: &Option<Reloader>,
    req: Request,
) -> Response {
    let stats = engine.stats_raw();
    match req {
        Request::Ping => {
            stats.ops.record("ping");
            // Piggyback the snapshot version on every probe: the router
            // keys its response cache on per-shard versions, so an
            // out-of-band reload (operator hitting the shard directly)
            // invalidates router entries within one probe interval.
            Response::Pong { version: engine.snapshot_version().0 }
        }
        Request::Knn { k, explain, vector } => {
            stats.ops.record("knn");
            knn(engine, k, explain, vector).unwrap_or_else(|e| {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                Response::Error(e.to_string())
            })
        }
        Request::Resolve { key } => {
            stats.ops.record("resolve");
            let store = engine.store();
            let hit = store.resolve_name(&key).map(|id| {
                let row = store.row(id).expect("resolved id is in range").to_vec();
                (id.0, store.label(id), row)
            });
            Response::Resolved { hit }
        }
        Request::GetRow { local } => {
            stats.ops.record("resolve");
            let store = engine.store();
            match store.row(NodeId(local)) {
                Ok(row) => {
                    Response::Row { local, label: store.label(NodeId(local)), row: row.to_vec() }
                }
                Err(e) => {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Response::Error(e.to_string())
                }
            }
        }
        Request::Stats => {
            // Reuse the JSON stats document verbatim — one source of
            // truth for the debug surface on both protocols.
            Response::StatsText(handle_line(engine, limits, "{\"op\":\"stats\"}").to_string())
        }
        Request::Reload => {
            stats.ops.record("reload");
            match reloader {
                None => {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Response::Error("bad request: reload not configured".into())
                }
                Some(reload) => match reload() {
                    Ok((store, index)) => {
                        let nodes = store.num_nodes() as u64;
                        let version = engine.swap_snapshot(store, index);
                        Response::Reloaded { version: version.0, nodes }
                    }
                    Err(e) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        Response::Error(e.to_string())
                    }
                },
            }
        }
    }
}

fn knn(
    engine: &Arc<QueryEngine>,
    k: u32,
    explain: bool,
    vector: Vec<f32>,
) -> Result<Response, ServeError> {
    if k == 0 {
        return Err(ServeError::BadRequest("'k' must be at least 1".into()));
    }
    // Cap at the shard's row count rather than erroring: the router
    // over-fetches k+1 globally, which can exceed a small shard.
    let k = (k as usize).min(engine.store().num_nodes());
    let result = engine.knn_vector(vector, k, explain)?;
    let store = engine.store();
    let neighbors =
        result.neighbors.iter().map(|nb| (nb.id.0, nb.dist, store.label(nb.id))).collect();
    // nprobe 0 means "exact index" on the wire (brute force probes
    // nothing); the router renders that as `null` in explain output.
    let nprobe = engine.index_nprobe().unwrap_or(0) as u32;
    let info = result
        .info
        .map(|i| (i.probed.iter().map(|&c| c as u32).collect(), i.scanned as u64, nprobe));
    Ok(Response::Knn { neighbors, info })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::MuxClient;
    use ehna_serve::{BruteForceIndex, EmbeddingStore, EngineConfig};
    use ehna_tgraph::NodeEmbeddings;

    fn shard_engine(n: usize, dim: usize) -> Arc<QueryEngine> {
        let data: Vec<f32> = (0..n * dim).map(|i| (i % 17) as f32).collect();
        let store =
            Arc::new(EmbeddingStore::new(NodeEmbeddings::from_vec(dim, data), None).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    fn start(engine: Arc<QueryEngine>) -> ShardHandle {
        let config =
            ShardConfig { shard_id: 3, poll: Duration::from_millis(10), ..Default::default() };
        ShardServer::bind("127.0.0.1:0", engine, RequestLimits::default(), None, config)
            .unwrap()
            .spawn()
            .unwrap()
    }

    #[test]
    fn serves_knn_rows_and_stats_over_ehnp() {
        let engine = shard_engine(20, 4);
        let handle = start(Arc::clone(&engine));
        let client =
            MuxClient::connect(handle.addr(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        let t = Duration::from_secs(5);

        assert_eq!(client.call(&Request::Ping, t).unwrap(), Response::Pong { version: 1 });

        let query = engine.store().row(NodeId(0)).unwrap().to_vec();
        match client.call(&Request::Knn { k: 3, explain: false, vector: query }, t).unwrap() {
            Response::Knn { neighbors, info } => {
                assert_eq!(neighbors.len(), 3);
                assert_eq!(neighbors[0].0, 0, "the row itself is its own nearest neighbor");
                assert_eq!(neighbors[0].1, 0.0);
                assert!(info.is_none());
            }
            other => panic!("knn got {other:?}"),
        }

        // Over-fetch beyond the shard's rows is capped, not an error.
        let query = engine.store().row(NodeId(1)).unwrap().to_vec();
        match client.call(&Request::Knn { k: 999, explain: false, vector: query }, t).unwrap() {
            Response::Knn { neighbors, .. } => assert_eq!(neighbors.len(), 20),
            other => panic!("capped knn got {other:?}"),
        }

        match client.call(&Request::GetRow { local: 7 }, t).unwrap() {
            Response::Row { local, label, row } => {
                assert_eq!(local, 7);
                assert_eq!(label, "7");
                assert_eq!(&row[..], &*engine.store().row(NodeId(7)).unwrap());
            }
            other => panic!("get_row got {other:?}"),
        }
        match client.call(&Request::GetRow { local: 999 }, t).unwrap() {
            Response::Error(msg) => assert!(msg.contains("unknown node"), "msg: {msg}"),
            other => panic!("bad get_row got {other:?}"),
        }

        // No name map on this shard: resolve misses (and must NOT fall
        // back to reading the key as a local row number).
        match client.call(&Request::Resolve { key: "7".into() }, t).unwrap() {
            Response::Resolved { hit } => assert!(hit.is_none()),
            other => panic!("resolve got {other:?}"),
        }

        match client.call(&Request::Stats, t).unwrap() {
            Response::StatsText(text) => {
                assert!(text.contains("\"role\":\"shard\""), "stats: {text}");
                assert!(text.contains("\"shard_id\":3"), "stats: {text}");
            }
            other => panic!("stats got {other:?}"),
        }

        match client.call(&Request::Reload, t).unwrap() {
            Response::Error(msg) => assert!(msg.contains("reload not configured"), "msg: {msg}"),
            other => panic!("reload got {other:?}"),
        }

        drop(client);
        handle.shutdown();
    }

    #[test]
    fn json_client_on_the_ehnp_port_is_dropped() {
        let engine = shard_engine(5, 2);
        let handle = start(engine);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        // The server hangs up instead of hanging us.
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let n = stream.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server should close without writing");
        handle.shutdown();
    }

    #[test]
    fn shutdown_interrupts_idle_keepalive_connections() {
        let engine = shard_engine(5, 2);
        let handle = start(engine);
        let client =
            MuxClient::connect(handle.addr(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        assert_eq!(
            client.call(&Request::Ping, Duration::from_secs(5)).unwrap(),
            Response::Pong { version: 1 }
        );
        // The connection now idles at a frame boundary; shutdown must
        // not wait on it.
        let start = Instant::now();
        handle.shutdown();
        assert!(start.elapsed() < Duration::from_secs(5), "shutdown hung on idle conn");
    }
}
