//! Sharded, replicated serving for EHNA embedding snapshots.
//!
//! A single `ehna serve` process answers k-NN queries over one
//! in-memory embedding table. This crate scales that horizontally
//! without changing what clients see:
//!
//! * [`plan::plan_shards`] partitions a snapshot round-robin into N
//!   shard snapshots plus a checksummed [`manifest::ClusterManifest`]
//!   (`ehna shard`).
//! * [`shard::ShardServer`] serves one partition over EHNP v1
//!   ([`proto`]), a compact length-prefixed binary protocol with
//!   request-id multiplexing, alongside the usual JSON debug port.
//! * [`router::Router`] speaks the existing JSON line protocol to
//!   clients and scatter-gathers each query across all shards, merging
//!   per-shard top-k lists by `(distance, global id)` — *exactly* the
//!   single-node tie-break, so a sharded answer is byte-identical to an
//!   unsharded one.
//! * Each shard can run several replicas; the router health-probes
//!   them, fails over on error or timeout, and opens a per-replica
//!   circuit breaker after repeated failures so a sick replica stops
//!   eating latency budget. Rolling reload upgrades a cluster
//!   shard-by-shard, replica-by-replica, without dropping queries.
//!
//! The router is a [`ehna_serve::LineHandler`], so it inherits the
//! hardened socket front end (admission control, bounded worker pool,
//! read caps, socket timeouts, deterministic shutdown) unchanged.

#![warn(missing_docs)]

pub mod client;
pub mod manifest;
pub mod plan;
pub mod proto;
pub mod router;
pub mod shard;

pub use client::{CallError, MuxClient};
pub use manifest::{global_of, owner_of, ClusterManifest, ShardEntry, MANIFEST_NAME};
pub use plan::{plan_shards, plan_shards_quant};
pub use proto::{ProtoError, Request, Response, EHNP_VERSION, MAX_FRAME_LEN};
pub use router::{ReplicaStatus, Router, RouterConfig};
pub use shard::{ShardConfig, ShardHandle, ShardServer};

use std::io;

/// Errors from the cluster layer: planning, manifests, and shard IO.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying IO failure.
    Io(io::Error),
    /// EHNP wire-level failure.
    Proto(ProtoError),
    /// A malformed or inconsistent cluster manifest.
    Manifest(String),
    /// An invalid shard plan (zero shards, empty shards, bad names).
    Plan(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster io error: {e}"),
            ClusterError::Proto(e) => write!(f, "{e}"),
            ClusterError::Manifest(msg) => write!(f, "bad cluster manifest: {msg}"),
            ClusterError::Plan(msg) => write!(f, "bad shard plan: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Proto(e) => Some(e),
            ClusterError::Manifest(_) | ClusterError::Plan(_) => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<ProtoError> for ClusterError {
    fn from(e: ProtoError) -> Self {
        ClusterError::Proto(e)
    }
}
