//! Multiplexing EHNP client — one TCP connection, many in-flight
//! requests.
//!
//! The router keeps a single [`MuxClient`] per replica. Each call gets a
//! fresh request id; a dedicated reader thread routes responses back to
//! their callers by id, so concurrent router workers share the
//! connection without head-of-line blocking on each other's writes.
//!
//! Failure taxonomy mirrors the JSON client's
//! [`ehna_serve::QueryError`]: *dead* (connect refused, peer hung up,
//! write failed — retry another replica immediately) is kept distinct
//! from *slow* (no response within the call timeout — the replica may be
//! overloaded; the connection survives and the late response, if it ever
//! arrives, is discarded by id).

use crate::proto::{read_msg, write_msg, write_preamble, ProtoError, Request, Response};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why one [`MuxClient::call`] failed.
#[derive(Debug)]
pub enum CallError {
    /// The connection is unusable: the peer hung up, a write failed, or
    /// the reader thread died. The caller should fail over to another
    /// replica and reconnect this one later.
    Dead(String),
    /// No response within the call's timeout. The connection itself is
    /// still up; a late response will be discarded by request id.
    Timeout(Duration),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Dead(msg) => write!(f, "replica connection dead: {msg}"),
            CallError::Timeout(t) => write!(f, "replica did not answer within {t:?}"),
        }
    }
}

impl std::error::Error for CallError {}

struct ClientShared {
    /// In-flight calls awaiting a response, keyed by request id.
    /// Dropping a sender (draining on reader death) disconnects its
    /// receiver, failing that caller fast.
    pending: Mutex<HashMap<u64, Sender<Response>>>,
    dead: AtomicBool,
    dead_reason: Mutex<String>,
}

impl ClientShared {
    fn mark_dead(&self, reason: String) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            *self.dead_reason.lock() = reason;
        }
        self.pending.lock().clear();
    }
}

/// A response not yet received — the write half of a call already went
/// out via [`MuxClient::begin`]; `wait` collects the read half. Holding
/// several of these and waiting them in turn is how the router pipelines
/// a scatter: every shard's request is on the wire before any reply is
/// read. Dropping one abandons the call (a late response is discarded by
/// request id, exactly like a timeout).
pub struct PendingReply {
    shared: Arc<ClientShared>,
    id: u64,
    rx: Receiver<Response>,
}

impl PendingReply {
    /// Wait up to `timeout` for the response.
    ///
    /// # Errors
    /// [`CallError::Dead`] when the connection failed under the call,
    /// [`CallError::Timeout`] when the replica does not answer in time.
    pub fn wait(self, timeout: Duration) -> Result<Response, CallError> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Timeout) => Err(CallError::Timeout(timeout)),
            Err(RecvTimeoutError::Disconnected) => {
                Err(CallError::Dead(self.shared.dead_reason.lock().clone()))
            }
        }
        // Drop removes the pending id: a no-op when the reader already
        // routed the response, the forget-the-call cleanup on timeout.
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        self.shared.pending.lock().remove(&self.id);
    }
}

/// A multiplexing EHNP connection to one shard replica.
pub struct MuxClient {
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    shared: Arc<ClientShared>,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MuxClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxClient").field("dead", &self.is_dead()).finish_non_exhaustive()
    }
}

impl MuxClient {
    /// Connect to `addr`, send the EHNP preamble, and start the reader
    /// thread. `connect_timeout` bounds the TCP handshake;
    /// `write_timeout` bounds each frame write so a wedged peer cannot
    /// block a router worker forever (reads are unbounded on the reader
    /// thread — per-call patience lives in [`call`](Self::call)).
    ///
    /// # Errors
    /// Connect failures — the caller's cue to try another replica.
    pub fn connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        write_timeout: Duration,
    ) -> std::io::Result<MuxClient> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(write_timeout))?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_preamble(&mut writer)?;
        writer.flush()?;
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            dead_reason: Mutex::new(String::new()),
        });
        let reader_stream = stream.try_clone()?;
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name(format!("ehnp-reader-{addr}"))
            .spawn(move || reader_loop(reader_stream, &reader_shared))
            .expect("spawn ehnp reader");
        Ok(MuxClient {
            stream,
            writer: Mutex::new(writer),
            shared,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Whether the connection has failed. A dead client never recovers;
    /// the owner drops it and reconnects.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }

    /// Put `req` on the wire and return a handle to its future response
    /// without waiting for it. The scatter path begins every shard's
    /// request first and only then starts waiting, so per-shard work
    /// overlaps instead of serializing.
    ///
    /// # Errors
    /// [`CallError::Dead`] when the connection is unusable (the write
    /// failed or the reader died).
    pub fn begin(&self, req: &Request) -> Result<PendingReply, CallError> {
        if self.is_dead() {
            return Err(CallError::Dead(self.shared.dead_reason.lock().clone()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(id, tx);
        {
            let mut w = self.writer.lock();
            if let Err(e) = write_msg(&mut *w, id, req).and_then(|()| w.flush()) {
                drop(w);
                self.shared.pending.lock().remove(&id);
                self.shared.mark_dead(format!("write failed: {e}"));
                return Err(CallError::Dead(e.to_string()));
            }
        }
        // The reader may have died (and drained `pending`) between the
        // liveness check above and our insert, leaving this call's entry
        // orphaned — re-check before handing out a waitable handle.
        if self.is_dead() {
            self.shared.pending.lock().remove(&id);
            return Err(CallError::Dead(self.shared.dead_reason.lock().clone()));
        }
        Ok(PendingReply { shared: Arc::clone(&self.shared), id, rx })
    }

    /// Send `req` and wait up to `timeout` for its response.
    ///
    /// # Errors
    /// [`CallError::Dead`] when the connection is unusable,
    /// [`CallError::Timeout`] when the replica does not answer in time.
    pub fn call(&self, req: &Request, timeout: Duration) -> Result<Response, CallError> {
        self.begin(req)?.wait(timeout)
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        self.shared.mark_dead("client dropped".into());
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &ClientShared) {
    let mut r = BufReader::new(stream);
    loop {
        match read_msg::<_, Response>(&mut r) {
            Ok((id, resp)) => {
                // An absent id means the caller already timed out; the
                // late response is dropped on the floor.
                if let Some(tx) = shared.pending.lock().remove(&id) {
                    let _ = tx.try_send(resp);
                }
            }
            Err(e) => {
                let reason = match e {
                    ProtoError::Io(e) => format!("connection lost: {e}"),
                    corrupt => format!("protocol error: {corrupt}"),
                };
                shared.mark_dead(reason);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::read_preamble;
    use std::net::TcpListener;

    /// A toy EHNP server answering Ping with Pong (out of order for
    /// multiplexed ids) and anything else with an Error.
    fn toy_server(answer_delay: Option<Duration>) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else { return };
            let mut r = BufReader::new(stream.try_clone().unwrap());
            if read_preamble(&mut r).is_err() {
                return;
            }
            let mut w = BufWriter::new(stream);
            // Collect two requests, answer in reverse order to prove the
            // client routes by id, not arrival order.
            let mut batch = Vec::new();
            while let Ok((id, req)) = read_msg::<_, Request>(&mut r) {
                batch.push((id, req));
                if batch.len() == 2 {
                    if let Some(d) = answer_delay {
                        std::thread::sleep(d);
                    }
                    for (id, req) in batch.drain(..).rev() {
                        let resp = match req {
                            Request::Ping => Response::Pong { version: 1 },
                            other => Response::Error(format!("toy server: {other:?}")),
                        };
                        write_msg(&mut w, id, &resp).unwrap();
                        w.flush().unwrap();
                    }
                }
            }
        });
        (addr, h)
    }

    #[test]
    fn multiplexed_calls_route_by_request_id() {
        let (addr, server) = toy_server(None);
        let client = Arc::new(
            MuxClient::connect(addr, Duration::from_secs(2), Duration::from_secs(2)).unwrap(),
        );
        let c2 = Arc::clone(&client);
        let t =
            std::thread::spawn(move || c2.call(&Request::Stats, Duration::from_secs(5)).unwrap());
        let pong = client.call(&Request::Ping, Duration::from_secs(5)).unwrap();
        assert_eq!(pong, Response::Pong { version: 1 });
        match t.join().unwrap() {
            Response::Error(msg) => assert!(msg.contains("Stats"), "msg: {msg}"),
            other => panic!("stats call got {other:?}"),
        }
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn begin_pipelines_without_extra_threads() {
        // Both requests must be on the wire before either wait starts:
        // the toy server answers nothing until it has read two frames,
        // so a write-wait-write-wait client would deadlock here.
        let (addr, server) = toy_server(None);
        let client =
            MuxClient::connect(addr, Duration::from_secs(2), Duration::from_secs(2)).unwrap();
        let first = client.begin(&Request::Ping).unwrap();
        let second = client.begin(&Request::Stats).unwrap();
        assert_eq!(first.wait(Duration::from_secs(5)).unwrap(), Response::Pong { version: 1 });
        match second.wait(Duration::from_secs(5)).unwrap() {
            Response::Error(msg) => assert!(msg.contains("Stats"), "msg: {msg}"),
            other => panic!("stats call got {other:?}"),
        }
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn dropping_a_pending_reply_abandons_the_call() {
        let (addr, server) = toy_server(None);
        let client =
            MuxClient::connect(addr, Duration::from_secs(2), Duration::from_secs(2)).unwrap();
        // Abandon the first call before the server answers the batch.
        drop(client.begin(&Request::Ping).unwrap());
        let second = client.begin(&Request::Ping).unwrap();
        // The dropped call's late response is discarded by id; the live
        // call still gets its own answer and the connection stays up.
        assert_eq!(second.wait(Duration::from_secs(5)).unwrap(), Response::Pong { version: 1 });
        assert!(!client.is_dead());
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn timeout_leaves_the_connection_usable() {
        let (addr, server) = toy_server(Some(Duration::from_millis(300)));
        let client = Arc::new(
            MuxClient::connect(addr, Duration::from_secs(2), Duration::from_secs(2)).unwrap(),
        );
        // First call times out: the server waits for a second request
        // before answering anything.
        match client.call(&Request::Ping, Duration::from_millis(50)) {
            Err(CallError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(!client.is_dead(), "a slow reply must not kill the connection");
        // Second call completes the batch; its (patient) wait succeeds
        // even though the first caller is gone.
        let pong = client.call(&Request::Ping, Duration::from_secs(5)).unwrap();
        assert_eq!(pong, Response::Pong { version: 1 });
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn hangup_fails_pending_and_future_calls_fast() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Read the preamble then slam the door.
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let _ = read_preamble(&mut r);
            drop(stream);
        });
        let client =
            MuxClient::connect(addr, Duration::from_secs(2), Duration::from_secs(2)).unwrap();
        server.join().unwrap();
        // The call either observes the hangup on write or via the
        // drained pending map — never a long block.
        let start = std::time::Instant::now();
        let r = client.call(&Request::Ping, Duration::from_secs(30));
        assert!(matches!(r, Err(CallError::Dead(_))), "got {r:?}");
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(client.is_dead());
    }

    #[test]
    fn connect_refused_is_an_io_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        assert!(
            MuxClient::connect(addr, Duration::from_millis(500), Duration::from_secs(1)).is_err()
        );
    }
}
