//! The scatter-gather router — a sharded cluster's JSON front door.
//!
//! [`Router`] implements [`ehna_serve::LineHandler`], so it plugs into
//! the hardened socket front end from `ehna-serve` (admission control,
//! bounded worker pool, line caps, socket timeouts, deterministic
//! shutdown) via [`ehna_serve::Server::bind_handler`] — clients cannot
//! tell a router from a standalone server except by asking `stats`.
//!
//! ## Exactness
//!
//! Every `knn` is scattered to all shards; each shard returns its local
//! top-`k'` ascending by `(distance, local id)`. Because the planner's
//! round-robin partition makes the local→global id map monotone within a
//! shard, merging the per-shard lists by `(distance, global id)` applies
//! *exactly* the single-node tie-break `(dist, NodeId)` — the sharded
//! top-k is identical, ids and ordering, to the unsharded one (the
//! router over-fetches one extra when it must exclude the query node,
//! which keeps every candidate list sufficient). Distances are computed
//! by the shards with the same f32-subtract/f64-accumulate loop as the
//! single-node store and travel as exact f64 bit patterns.
//!
//! ## Scatter pipelining
//!
//! A scattered call does not spawn a thread per shard. Phase one walks
//! the shards and puts every shard's request on the wire (one
//! [`MuxClient::begin`] per shard — the multiplexed connection routes
//! replies by request id); phase two collects the replies in shard
//! order against one *shared* deadline, since every shard has been
//! working concurrently from the moment its frame was written. Only
//! when a picked replica fails does the call drop to a synchronous
//! failover pass across that shard's remaining replicas.
//!
//! ## Response cache
//!
//! Node-keyed, non-explain `knn` answers are cached router-side, keyed
//! by `(global id, k, per-replica snapshot-version vector)` — the same
//! id-keyed discipline as the standalone engine's hot-node cache, so
//! the `"cached"` flag behaves identically (aliased keys like `"3"` vs
//! `3` hit the same entry). Key resolutions are cached the same way.
//! Because the version vector is part of the key, a rolling `reload`
//! invalidates by construction; replicas piggyback their snapshot
//! version on every probe `Pong`, so an out-of-band reload (an operator
//! hitting a shard directly) is picked up within one probe interval.
//!
//! ## Failure handling
//!
//! Each shard runs one or more replicas. The scatter picks a replica by
//! power-of-two-choices among the preferred (healthy, breaker closed)
//! set — round-robin supplies two candidates, the one with fewer calls
//! in flight wins — so a replica that is slow-but-alive sheds load
//! instead of queueing it. On error or timeout the call fails over to
//! the next replica. [`RouterConfig::breaker_threshold`] consecutive
//! failures open a replica's circuit breaker for
//! [`RouterConfig::breaker_cooldown`], taking it out of the preferred
//! set so a sick replica stops eating latency budget. A background
//! probe pings every replica each [`RouterConfig::probe_interval`],
//! concurrently and under the short dedicated
//! [`RouterConfig::probe_timeout`] (a tar-pit replica must not stretch
//! the probe round and delay everyone else's recovery) — probes bypass
//! the breaker (they *are* the recovery path) and a successful probe
//! closes it.

use crate::client::{CallError, MuxClient, PendingReply};
use crate::manifest::{global_of, owner_of, ClusterManifest};
use crate::proto::{Request, Response};
use crate::ClusterError;
use ehna_serve::cache::LruCache;
use ehna_serve::{op_counts_json, EngineStats, Json, LineHandler, RequestLimits, Role};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the router's shard fan-out and failure detection.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-shard budget for one scattered call (after this the call
    /// fails over to the next replica).
    pub shard_timeout: Duration,
    /// TCP connect budget per replica.
    pub connect_timeout: Duration,
    /// How often the background probe pings every replica; zero disables
    /// probing (breaker cooldown then becomes the only recovery path).
    pub probe_interval: Duration,
    /// Dedicated budget for one health-probe ping, deliberately much
    /// shorter than `shard_timeout`: a probe answers "is this replica
    /// responsive right now", so waiting a full query budget on it only
    /// delays the rest of the probe round.
    pub probe_timeout: Duration,
    /// Consecutive failures that open a replica's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker keeps a replica out of the preferred
    /// set before it is retried (half-open).
    pub breaker_cooldown: Duration,
    /// Per-replica budget for a rolling `reload` (snapshot loads are
    /// much slower than queries).
    pub reload_timeout: Duration,
    /// Capacity of each router-side response cache (the knn answer
    /// cache and the key-resolution cache); 0 disables caching. Entries
    /// are keyed by the per-replica snapshot-version vector, so a
    /// reload invalidates by construction rather than by flush.
    pub cache_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shard_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            probe_interval: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            reload_timeout: Duration::from_secs(60),
            cache_capacity: 1024,
        }
    }
}

/// Point-in-time health of one replica, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The replica's EHNP address.
    pub addr: SocketAddr,
    /// Whether the last contact succeeded.
    pub healthy: bool,
    /// Whether the circuit breaker is currently open.
    pub breaker_open: bool,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Whether a live multiplexed connection is established.
    pub connected: bool,
    /// Calls currently in flight to this replica (the load-balancing
    /// signal for power-of-two-choices).
    pub in_flight: usize,
    /// Last snapshot version this replica reported (via probe `Pong` or
    /// `Reloaded`); 0 means not yet known.
    pub snapshot_version: u64,
}

/// Decrements a replica's in-flight counter on drop, so the count stays
/// honest across every early return and failure path.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Replica {
    addr: SocketAddr,
    conn: Mutex<Option<Arc<MuxClient>>>,
    /// Serializes redials without blocking `conn`: exactly one caller
    /// dials while the rest queue here, and nobody holds `conn` across
    /// the (up to `connect_timeout`-long) dial.
    dial: Mutex<()>,
    failures: AtomicU32,
    open_until: Mutex<Option<Instant>>,
    healthy: AtomicBool,
    in_flight: AtomicUsize,
    /// Last snapshot version reported by this replica (0 = unknown).
    /// Feeds the router cache's version vector.
    last_version: AtomicU64,
}

impl Replica {
    fn new(addr: SocketAddr) -> Replica {
        Replica {
            addr,
            conn: Mutex::new(None),
            dial: Mutex::new(()),
            failures: AtomicU32::new(0),
            open_until: Mutex::new(None),
            // Optimistic start: a replica has to fail to be demoted.
            healthy: AtomicBool::new(true),
            in_flight: AtomicUsize::new(0),
            last_version: AtomicU64::new(0),
        }
    }

    /// Count one call against this replica until the guard drops.
    fn track(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(&self.in_flight)
    }

    /// Harvest the snapshot version piggybacked on probe and reload
    /// responses. Query responses don't carry one, so a version learned
    /// here can lag an out-of-band reload by up to one probe interval —
    /// the documented staleness bound of the router cache.
    fn note_response(&self, resp: &Response) {
        match resp {
            Response::Pong { version } | Response::Reloaded { version, .. } => {
                self.last_version.store(*version, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn breaker_open(&self) -> bool {
        matches!(*self.open_until.lock(), Some(until) if Instant::now() < until)
    }

    fn preferred(&self) -> bool {
        self.healthy.load(Ordering::Relaxed) && !self.breaker_open()
    }

    fn record_success(&self) {
        self.failures.store(0, Ordering::Relaxed);
        *self.open_until.lock() = None;
        self.healthy.store(true, Ordering::Relaxed);
    }

    fn record_failure(&self, config: &RouterConfig) {
        let f = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
        if f >= config.breaker_threshold {
            *self.open_until.lock() = Some(Instant::now() + config.breaker_cooldown);
        }
        self.healthy.store(false, Ordering::Relaxed);
    }

    /// The live connection, dialing a fresh one if needed. The dial
    /// happens *outside* the `conn` lock, so a worker redialing a dead
    /// replica never blocks concurrent calls (or `status`) that only
    /// need to read the slot; the separate `dial` mutex preserves the
    /// no-thundering-redial property — one caller dials, the rest queue
    /// behind it and pick up the freshly installed connection.
    fn client(&self, config: &RouterConfig) -> Result<Arc<MuxClient>, String> {
        if let Some(c) = self.conn.lock().as_ref() {
            if !c.is_dead() {
                return Ok(Arc::clone(c));
            }
        }
        let _dialing = self.dial.lock();
        // Whoever held `dial` before us may have just installed a live
        // connection — take it instead of dialing again.
        if let Some(c) = self.conn.lock().as_ref() {
            if !c.is_dead() {
                return Ok(Arc::clone(c));
            }
        }
        match MuxClient::connect(self.addr, config.connect_timeout, config.shard_timeout) {
            Ok(c) => {
                let c = Arc::new(c);
                *self.conn.lock() = Some(Arc::clone(&c));
                Ok(c)
            }
            Err(e) => {
                *self.conn.lock() = None;
                Err(format!("connect {}: {e}", self.addr))
            }
        }
    }

    /// Drop the cached connection iff it is still `client` (a concurrent
    /// caller may have already installed a fresh one).
    fn drop_conn_if(&self, client: &Arc<MuxClient>) {
        let mut guard = self.conn.lock();
        if guard.as_ref().is_some_and(|c| Arc::ptr_eq(c, client)) {
            *guard = None;
        }
    }

    /// Put `req` on the wire toward this replica without waiting for the
    /// reply — the write half of a pipelined scatter. Failure accounting
    /// mirrors [`Self::call`]; success is only recorded when the reply
    /// lands in [`Self::finish_call`].
    fn begin_call(
        &self,
        req: &Request,
        config: &RouterConfig,
    ) -> Result<(Arc<MuxClient>, PendingReply), String> {
        let client = match self.client(config) {
            Ok(c) => c,
            Err(e) => {
                self.record_failure(config);
                return Err(e);
            }
        };
        match client.begin(req) {
            Ok(reply) => Ok((client, reply)),
            Err(CallError::Dead(msg)) => {
                self.drop_conn_if(&client);
                self.record_failure(config);
                Err(format!("{}: {msg}", self.addr))
            }
            // `begin` never waits, but keep the arm total.
            Err(CallError::Timeout(t)) => {
                self.record_failure(config);
                Err(format!("{}: no answer within {t:?}", self.addr))
            }
        }
    }

    /// Collect a reply begun with [`Self::begin_call`], waiting no
    /// longer than the shared scatter `deadline`.
    fn finish_call(
        &self,
        client: &Arc<MuxClient>,
        reply: PendingReply,
        deadline: Instant,
        config: &RouterConfig,
    ) -> Result<Response, String> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match reply.wait(remaining) {
            Ok(resp) => {
                self.record_success();
                self.note_response(&resp);
                Ok(resp)
            }
            Err(CallError::Dead(msg)) => {
                self.drop_conn_if(client);
                self.record_failure(config);
                Err(format!("{}: {msg}", self.addr))
            }
            Err(CallError::Timeout(t)) => {
                self.record_failure(config);
                Err(format!("{}: no answer within {t:?}", self.addr))
            }
        }
    }

    fn call(
        &self,
        req: &Request,
        timeout: Duration,
        config: &RouterConfig,
    ) -> Result<Response, String> {
        let _load = self.track();
        let (client, reply) = self.begin_call(req, config)?;
        self.finish_call(&client, reply, Instant::now() + timeout, config)
    }

    fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            addr: self.addr,
            healthy: self.healthy.load(Ordering::Relaxed),
            breaker_open: self.breaker_open(),
            consecutive_failures: self.failures.load(Ordering::Relaxed),
            connected: self.conn.lock().as_ref().is_some_and(|c| !c.is_dead()),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            snapshot_version: self.last_version.load(Ordering::Relaxed),
        }
    }
}

struct ShardSet {
    replicas: Vec<Arc<Replica>>,
    rr: AtomicUsize,
}

impl ShardSet {
    /// Pick the replica for a scattered call: power-of-two-choices among
    /// the preferred (healthy, breaker closed) replicas. Round-robin
    /// supplies the candidate order — so load still rotates when counts
    /// tie — and the candidate with fewer calls in flight wins, which
    /// steers new work away from a slow-but-alive replica instead of
    /// queueing behind it. Falls back to plain round-robin over all
    /// replicas when none is preferred (the failover pass will sort out
    /// which, if any, still answers).
    fn pick(&self) -> usize {
        let n = self.replicas.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut first = None;
        let mut second = None;
        for step in 0..n {
            let idx = (start + step) % n;
            if self.replicas[idx].preferred() {
                if first.is_none() {
                    first = Some(idx);
                } else {
                    second = Some(idx);
                    break;
                }
            }
        }
        match (first, second) {
            (None, _) => start % n,
            (Some(a), None) => a,
            (Some(a), Some(b)) => {
                let load = |i: usize| self.replicas[i].in_flight.load(Ordering::Relaxed);
                // Ties go to `a`, the round-robin-first candidate.
                if load(b) < load(a) {
                    b
                } else {
                    a
                }
            }
        }
    }
}

/// Cache key versions: every replica's last known snapshot version, in
/// (shard, replica) order. Any reload anywhere changes the vector and
/// so orphans every pre-reload cache entry.
type VersionVec = Vec<u64>;

/// A cached final knn answer: `(distance, global id, name)` per
/// neighbor, already merged, excluded, and truncated to `k`.
type CachedKnn = Arc<Vec<(f64, u32, String)>>;

struct Inner {
    manifest: ClusterManifest,
    shards: Vec<ShardSet>,
    stats: EngineStats,
    limits: RequestLimits,
    config: RouterConfig,
    stop: AtomicBool,
    /// Final (merged, excluded, truncated) knn answers for node-keyed,
    /// non-explain queries — the same id-keyed discipline as the
    /// standalone engine's hot-node cache, so the client-visible
    /// `"cached"` flag patterns match byte for byte.
    knn_cache: Mutex<LruCache<(u32, usize, VersionVec), CachedKnn>>,
    /// Successful key resolutions (raw client key → global id + row).
    /// Invisible in responses; a warm hit skips the resolve scatter.
    #[allow(clippy::type_complexity)]
    resolve_cache: Mutex<LruCache<(String, VersionVec), (u32, Vec<f32>)>>,
}

/// The scatter-gather front door of a sharded cluster. See the module
/// docs for semantics; build with [`Router::new`] and serve it via
/// [`ehna_serve::Server::bind_handler`].
pub struct Router {
    inner: Arc<Inner>,
    probe: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("num_shards", &self.inner.manifest.num_shards)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Build a router over `manifest`, with `replicas[s]` listing the
    /// EHNP addresses serving shard `s`. Starts the health-probe thread
    /// unless `config.probe_interval` is zero.
    ///
    /// # Errors
    /// [`ClusterError::Plan`] when the replica map does not cover every
    /// shard exactly once.
    pub fn new(
        manifest: ClusterManifest,
        replicas: Vec<Vec<SocketAddr>>,
        limits: RequestLimits,
        config: RouterConfig,
    ) -> Result<Router, ClusterError> {
        if replicas.len() != manifest.num_shards as usize {
            return Err(ClusterError::Plan(format!(
                "manifest has {} shards but {} replica sets were given",
                manifest.num_shards,
                replicas.len()
            )));
        }
        if let Some(empty) = replicas.iter().position(Vec::is_empty) {
            return Err(ClusterError::Plan(format!("shard {empty} has no replicas")));
        }
        let shards = replicas
            .into_iter()
            .map(|addrs| ShardSet {
                replicas: addrs.into_iter().map(|a| Arc::new(Replica::new(a))).collect(),
                rr: AtomicUsize::new(0),
            })
            .collect();
        let cache_capacity = config.cache_capacity;
        let inner = Arc::new(Inner {
            manifest,
            shards,
            stats: EngineStats::default(),
            limits,
            config,
            stop: AtomicBool::new(false),
            knn_cache: Mutex::new(LruCache::new(cache_capacity)),
            resolve_cache: Mutex::new(LruCache::new(cache_capacity)),
        });
        inner.stats.set_identity(Role::Router, None);
        let probe = if inner.config.probe_interval.is_zero() {
            None
        } else {
            let probe_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("ehna-router-probe".into())
                    .spawn(move || probe_loop(&probe_inner))
                    .expect("spawn router probe"),
            )
        };
        Ok(Router { inner, probe: Mutex::new(probe) })
    }

    /// Health of every replica, by shard — what `stats` reports, exposed
    /// directly for tests and embedders.
    pub fn replica_status(&self) -> Vec<Vec<ReplicaStatus>> {
        self.inner.shards.iter().map(|s| s.replicas.iter().map(|r| r.status()).collect()).collect()
    }

    /// The manifest this router routes by.
    pub fn manifest(&self) -> &ClusterManifest {
        &self.inner.manifest
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.probe.lock().take() {
            let _ = h.join();
        }
    }
}

impl LineHandler for Router {
    fn handle_line(&self, line: &str) -> Json {
        let inner = &self.inner;
        let reject = |msg: &str| {
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            error_json(msg)
        };
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return reject(&format!("bad json: {e}")),
        };
        let started = Instant::now();
        match inner.dispatch(&request) {
            Ok(resp) => {
                inner.stats.latency.record(started.elapsed());
                resp
            }
            Err(msg) => reject(&msg),
        }
    }

    fn stats(&self) -> &EngineStats {
        &self.inner.stats
    }
}

fn probe_loop(inner: &Arc<Inner>) {
    let poll = Duration::from_millis(20);
    loop {
        let mut slept = Duration::ZERO;
        while slept < inner.config.probe_interval {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(poll);
            slept += poll;
        }
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        // Fan the round out: every replica is pinged concurrently under
        // the short dedicated probe timeout, so one tar-pit replica
        // cannot stretch the round and stall a recovered peer's
        // breaker-close (the recovery path IS this loop).
        std::thread::scope(|scope| {
            for set in &inner.shards {
                for replica in &set.replicas {
                    let config = &inner.config;
                    scope.spawn(move || {
                        // Probes bypass the breaker on purpose: a
                        // successful ping is what closes it again.
                        let _ = replica.call(&Request::Ping, config.probe_timeout, config);
                    });
                }
            }
        });
    }
}

fn error_json(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

/// Render a merged neighbor list as the wire response. Cached hits and
/// fresh computations go through the same renderer so the two are
/// byte-identical except for the `cached` flag.
fn knn_json(k: usize, neighbors: &[(f64, u32, String)], cached: bool) -> Json {
    let list: Vec<Json> = neighbors
        .iter()
        .map(|(dist, id, label)| {
            Json::obj([
                ("node", Json::Str(label.clone())),
                ("id", Json::Num(*id as f64)),
                ("dist", Json::Num(*dist)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("k".to_string(), Json::Num(k as f64)),
        ("neighbors".to_string(), Json::Arr(list)),
        ("cached".to_string(), Json::Bool(cached)),
    ])
}

/// Squared Euclidean distance, replicating the single-node store's loop
/// bit-for-bit (f32 subtraction, f64 square-and-accumulate, in
/// dimension order) so router-computed scores equal shard/standalone
/// ones exactly.
fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

impl Inner {
    /// Route one parsed request. Error strings are fully formatted to
    /// match the standalone server's wording, so a client cannot tell a
    /// router's rejection from a standalone server's.
    fn dispatch(&self, request: &Json) -> Result<Json, String> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "bad request: missing 'op'".to_string())?;
        self.stats.ops.record(op);
        match op {
            "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])),
            "knn" => self.knn_op(request),
            "score" => self.score_op(request),
            "stats" => Ok(self.stats_op()),
            "reload" => self.reload_op(),
            "batch" => self.batch_op(request),
            other => Err(format!("bad request: unknown op '{other}'")),
        }
    }

    /// One call to shard `shard`, failing over across its replicas:
    /// round-robin start, preferred (healthy, breaker closed) replicas
    /// first, everything else as a second pass.
    fn call_shard(
        &self,
        shard: usize,
        req: &Request,
        timeout: Duration,
    ) -> Result<Response, String> {
        let n = self.shards[shard].replicas.len();
        self.failover(shard, req, timeout, vec![false; n], String::from("no replicas"))
    }

    /// The synchronous failover pass: try every not-yet-`tried` replica
    /// of `shard` (preferred first), carrying `last_err` from any prior
    /// attempt so a fully-failed shard reports its real last error.
    fn failover(
        &self,
        shard: usize,
        req: &Request,
        timeout: Duration,
        mut tried: Vec<bool>,
        mut last_err: String,
    ) -> Result<Response, String> {
        let set = &self.shards[shard];
        let n = set.replicas.len();
        let start = set.rr.fetch_add(1, Ordering::Relaxed) % n;
        for pass in 0..2 {
            for step in 0..n {
                let idx = (start + step) % n;
                if tried[idx] {
                    continue;
                }
                let replica = &set.replicas[idx];
                if pass == 0 && !replica.preferred() {
                    continue;
                }
                tried[idx] = true;
                match replica.call(req, timeout, &self.config) {
                    // The shard answered; this is a request-level error,
                    // not a replica failure. It crosses the router
                    // *verbatim* — the module promises error strings
                    // matching the standalone server word for word, and
                    // a "shard N:" prefix would leak topology into the
                    // client-visible surface.
                    Ok(Response::Error(msg)) => return Err(msg),
                    Ok(resp) => return Ok(resp),
                    Err(e) => last_err = e,
                }
            }
        }
        // Availability errors are the router's own and DO name the
        // shard: the client needs to know which partition went dark.
        Err(format!("shard {shard} unavailable: {last_err}"))
    }

    /// Scatter `req` to every shard; shard `i`'s result lands at index
    /// `i`. No thread is spawned: phase one picks a replica per shard
    /// (power-of-two-choices) and writes every request before reading
    /// any reply; phase two gathers in shard order against one shared
    /// deadline, since every reply has been racing toward us since its
    /// write. Only a failed pick drops to the synchronous [`failover`]
    /// pass (with a fresh per-shard timeout, like a retry always had).
    ///
    /// [`failover`]: Self::failover
    fn scatter(&self, req: &Request, timeout: Duration) -> Vec<Result<Response, String>> {
        struct Begun<'a> {
            replica: &'a Replica,
            client: Arc<MuxClient>,
            reply: PendingReply,
            tried: Vec<bool>,
            _load: InFlightGuard<'a>,
        }
        let mut begun: Vec<Result<Begun<'_>, (Vec<bool>, String)>> =
            Vec::with_capacity(self.shards.len());
        for set in &self.shards {
            let idx = set.pick();
            let replica = set.replicas[idx].as_ref();
            let mut tried = vec![false; set.replicas.len()];
            tried[idx] = true;
            let load = replica.track();
            match replica.begin_call(req, &self.config) {
                Ok((client, reply)) => {
                    begun.push(Ok(Begun { replica, client, reply, tried, _load: load }));
                }
                Err(e) => begun.push(Err((tried, e))),
            }
        }
        let deadline = Instant::now() + timeout;
        let mut results = Vec::with_capacity(self.shards.len());
        for (shard, b) in begun.into_iter().enumerate() {
            let (tried, last_err) = match b {
                Ok(b) => {
                    match b.replica.finish_call(&b.client, b.reply, deadline, &self.config) {
                        // Request-level errors cross verbatim, exactly
                        // as in the failover path.
                        Ok(Response::Error(msg)) => {
                            results.push(Err(msg));
                            continue;
                        }
                        Ok(resp) => {
                            results.push(Ok(resp));
                            continue;
                        }
                        Err(e) => (b.tried, e),
                    }
                }
                Err(failed) => failed,
            };
            results.push(self.failover(shard, req, timeout, tried, last_err));
        }
        results
    }

    /// Every replica's last known snapshot version, in (shard, replica)
    /// order — the freshness component of every cache key. Taken once
    /// per request so both cache lookups see the same generation.
    fn version_vec(&self) -> VersionVec {
        self.shards
            .iter()
            .flat_map(|s| s.replicas.iter().map(|r| r.last_version.load(Ordering::Relaxed)))
            .collect()
    }

    /// [`Self::resolve_global`] through the version-keyed resolve cache.
    /// Only successes are cached (a miss may be a transient shard
    /// outage, and the standalone server re-answers unknown keys cheaply
    /// anyway).
    fn resolve_cached(&self, key: &str, versions: &VersionVec) -> Result<(u32, Vec<f32>), String> {
        if let Some(hit) = self.resolve_cache.lock().get(&(key.to_string(), versions.clone())) {
            return Ok(hit.clone());
        }
        let resolved = self.resolve_global(key)?;
        self.resolve_cache.lock().insert((key.to_string(), versions.clone()), resolved.clone());
        Ok(resolved)
    }

    /// Resolve a client-supplied node key to `(global id, row)`,
    /// preserving the standalone resolution order: name-map lookup first
    /// (scattered, since any shard may own the name), then the decimal
    /// global-id fallback against the key's owner shard.
    fn resolve_global(&self, key: &str) -> Result<(u32, Vec<f32>), String> {
        let results =
            self.scatter(&Request::Resolve { key: key.to_string() }, self.config.shard_timeout);
        let mut shard_err = None;
        for (s, result) in results.iter().enumerate() {
            match result {
                Ok(Response::Resolved { hit: Some((local, _label, row)) }) => {
                    return Ok((
                        global_of(s as u32, *local, self.manifest.num_shards),
                        row.clone(),
                    ));
                }
                Ok(_) => {}
                Err(e) => shard_err = Some(e.clone()),
            }
        }
        if let Some(e) = shard_err {
            // An unreachable shard might own this name; guessing "not
            // found" would silently change answers.
            return Err(e);
        }
        // Canonical decimal only — the same parser as the standalone
        // store's fallback. Accepting "+3"/"007" here would let distinct
        // key strings alias one node and seed duplicate entries in the
        // version-keyed resolve/knn caches (and diverge from standalone
        // answers, which reject those spellings).
        if let Some(global) = ehna_serve::canonical_node_id(key) {
            if (global as u64) < self.manifest.total_nodes {
                let (shard, local) = owner_of(global, self.manifest.num_shards);
                return match self.call_shard(
                    shard as usize,
                    &Request::GetRow { local },
                    self.config.shard_timeout,
                )? {
                    Response::Row { row, .. } => Ok((global, row)),
                    other => Err(format!("shard {shard}: unexpected response {other:?}")),
                };
            }
        }
        Err(format!("unknown node '{key}'"))
    }

    fn knn_op(&self, request: &Json) -> Result<Json, String> {
        let num_nodes = self.manifest.total_nodes as usize;
        // Validation mirrors the standalone server word for word —
        // including the empty-table rejection, which must fire before k
        // parsing so the default-k path cannot manufacture a k against
        // zero rows.
        if num_nodes == 0 {
            return Err("bad request: knn on an empty table".into());
        }
        let k = match request.get("k") {
            Some(v) => {
                let k = v.as_usize().ok_or("bad request: bad 'k'")?;
                if k == 0 || k > num_nodes {
                    return Err(format!(
                        "bad request: 'k' must be between 1 and {num_nodes} (got {k})"
                    ));
                }
                if k > self.limits.max_k {
                    return Err(format!(
                        "bad request: 'k' exceeds the server limit of {} (got {k})",
                        self.limits.max_k
                    ));
                }
                k
            }
            None => 10.min(self.limits.max_k).min(num_nodes),
        };
        let explain = request.get("explain").and_then(Json::as_bool).unwrap_or(false);
        let versions = self.version_vec();
        let (vector, exclude) = match (request.get("node"), request.get("vector")) {
            (Some(node), None) => {
                let key = node
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| node.as_usize().map(|i| i.to_string()))
                    .ok_or("bad request: bad 'node'")?;
                let (global, row) = self.resolve_cached(&key, &versions)?;
                // Node-keyed, non-explain queries go through the answer
                // cache, keyed by resolved id — not the raw key — so
                // aliased spellings of one node share an entry, exactly
                // like the standalone engine's id-keyed hot-node cache.
                if !explain {
                    if let Some(hit) = self.knn_cache.lock().get(&(global, k, versions.clone())) {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(knn_json(k, hit, true));
                    }
                }
                (row, Some(global))
            }
            (None, Some(vector)) => {
                let items = vector.as_arr().ok_or("bad request: 'vector' must be an array")?;
                let q: Vec<f32> = items
                    .iter()
                    .map(|v| v.as_f64().map(|x| x as f32))
                    .collect::<Option<_>>()
                    .ok_or("bad request: non-numeric vector entry")?;
                (q, None)
            }
            _ => return Err("bad request: need exactly one of 'node' or 'vector'".into()),
        };
        // Vector and explain queries count as misses too, mirroring the
        // standalone engine's accounting.
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Over-fetch one extra when the query node will be dropped, so
        // every per-shard candidate list stays sufficient for a global
        // top-k (the excluded node lives in exactly one shard's list).
        let fetch = k + usize::from(exclude.is_some());
        let req = Request::Knn { k: fetch as u32, explain, vector };
        let results = self.scatter(&req, self.config.shard_timeout);
        let mut candidates: Vec<(f64, u32, String)> = Vec::new();
        let mut shard_infos = Vec::with_capacity(self.shards.len());
        for (s, result) in results.into_iter().enumerate() {
            match result? {
                Response::Knn { neighbors, info } => {
                    for (local, dist, label) in neighbors {
                        candidates.push((
                            dist,
                            global_of(s as u32, local, self.manifest.num_shards),
                            label,
                        ));
                    }
                    shard_infos.push(info);
                }
                other => return Err(format!("shard {s}: unexpected response {other:?}")),
            }
        }
        // The single-node tie-break, globally: ascending (dist, id).
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let neighbors: Vec<(f64, u32, String)> =
            candidates.into_iter().filter(|&(_, id, _)| Some(id) != exclude).take(k).collect();
        if explain {
            let mut resp = knn_json(k, &neighbors, false);
            let Json::Obj(fields) = &mut resp else { unreachable!("knn_json builds an object") };
            let mut scanned_total = 0u64;
            let shards_json: Vec<Json> = shard_infos
                .iter()
                .enumerate()
                .map(|(s, info)| {
                    let (probed, scanned, nprobe) = match info {
                        Some((p, n, np)) => (p.clone(), *n, *np),
                        None => (Vec::new(), 0, 0),
                    };
                    scanned_total += scanned;
                    Json::obj([
                        ("shard", Json::Num(s as f64)),
                        (
                            "probed_centroids",
                            Json::Arr(probed.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                        ("scanned", Json::Num(scanned as f64)),
                        // nprobe 0 on the wire means "exact index".
                        ("nprobe", if nprobe == 0 { Json::Null } else { Json::Num(nprobe as f64) }),
                    ])
                })
                .collect();
            fields.push((
                "explain".to_string(),
                Json::obj([
                    ("scanned", Json::Num(scanned_total as f64)),
                    ("rank_agreement", Json::Null),
                    ("shards", Json::Arr(shards_json)),
                ]),
            ));
            return Ok(resp);
        }
        if let Some(global) = exclude {
            // Insert after computing, under the versions read at request
            // start: if a reload landed mid-request, this entry's key is
            // already orphaned and can never answer a new-generation
            // query (the PR 5 version-keyed discipline).
            self.knn_cache.lock().insert((global, k, versions), Arc::new(neighbors.clone()));
        }
        Ok(knn_json(k, &neighbors, false))
    }

    fn score_op(&self, request: &Json) -> Result<Json, String> {
        let pairs_json = request
            .get("pairs")
            .and_then(Json::as_arr)
            .ok_or("bad request: 'pairs' must be an array")?;
        if pairs_json.len() > self.limits.max_pairs {
            return Err(format!(
                "bad request: 'pairs' exceeds the server limit of {} (got {})",
                self.limits.max_pairs,
                pairs_json.len()
            ));
        }
        // Resolve each distinct key once per request; a scatter per
        // endpoint would turn one score call into 2·pairs fan-outs. The
        // per-request memo sits in front of the version-keyed resolve
        // cache, which spares the GetRow fan-out entirely on warm keys.
        let versions = self.version_vec();
        let mut rows: std::collections::HashMap<String, Vec<f32>> =
            std::collections::HashMap::new();
        let mut resolve = |this: &Inner, key: String| -> Result<Vec<f32>, String> {
            if let Some(row) = rows.get(&key) {
                return Ok(row.clone());
            }
            let (_, row) = this.resolve_cached(&key, &versions)?;
            rows.insert(key, row.clone());
            Ok(row)
        };
        let mut scores = Vec::with_capacity(pairs_json.len());
        for p in pairs_json {
            let items = p
                .as_arr()
                .filter(|items| items.len() == 2)
                .ok_or("bad request: each pair must be [src, dst]")?;
            let key = |v: &Json| -> Result<String, String> {
                v.as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_usize().map(|i| i.to_string()))
                    .ok_or_else(|| "bad request: bad pair endpoint".to_string())
            };
            let a = resolve(self, key(&items[0])?)?;
            let b = resolve(self, key(&items[1])?)?;
            scores.push(sq_dist(&a, &b));
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("scores", Json::Arr(scores.into_iter().map(Json::Num).collect())),
        ]))
    }

    fn batch_op(&self, request: &Json) -> Result<Json, String> {
        let requests = request
            .get("requests")
            .and_then(Json::as_arr)
            .ok_or("bad request: 'requests' must be an array")?;
        if requests.len() > self.limits.max_batch {
            return Err(format!(
                "bad request: 'requests' exceeds the server limit of {} (got {})",
                self.limits.max_batch,
                requests.len()
            ));
        }
        let mut responses = Vec::with_capacity(requests.len());
        for sub in requests {
            // Control ops are filtered before dispatch, exactly like the
            // standalone batch: a batch is a read-path convenience, not a
            // control plane (and the refused op is not counted).
            let resp = match sub.get("op").and_then(Json::as_str) {
                Some("batch") | Some("reload") => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    error_json("op not allowed inside a batch")
                }
                _ => match self.dispatch(sub) {
                    Ok(resp) => resp,
                    Err(msg) => {
                        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        error_json(&msg)
                    }
                },
            };
            responses.push(resp);
        }
        Ok(Json::obj([("ok", Json::Bool(true)), ("responses", Json::Arr(responses))]))
    }

    /// Rolling reload: shard by shard, replica by replica, strictly
    /// sequential — at any instant at most one replica is busy loading,
    /// so every shard keeps at least one replica serving (with ≥2
    /// replicas per shard) and the cluster never goes dark.
    fn reload_op(&self) -> Result<Json, String> {
        let mut all_ok = true;
        let mut shards_json = Vec::with_capacity(self.shards.len());
        for (s, set) in self.shards.iter().enumerate() {
            let mut replicas_json = Vec::with_capacity(set.replicas.len());
            for replica in &set.replicas {
                let entry = match replica.call(
                    &Request::Reload,
                    self.config.reload_timeout,
                    &self.config,
                ) {
                    Ok(Response::Reloaded { version, nodes }) => Json::obj([
                        ("addr", Json::Str(replica.addr.to_string())),
                        ("ok", Json::Bool(true)),
                        ("version", Json::Num(version as f64)),
                        ("nodes", Json::Num(nodes as f64)),
                    ]),
                    Ok(Response::Error(msg)) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(msg)),
                        ])
                    }
                    Ok(other) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(format!("unexpected response {other:?}"))),
                        ])
                    }
                    Err(e) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(e)),
                        ])
                    }
                };
                replicas_json.push(entry);
            }
            shards_json.push(Json::obj([
                ("shard", Json::Num(s as f64)),
                ("replicas", Json::Arr(replicas_json)),
            ]));
        }
        // Partial success is reported, not hidden: a version-skewed
        // cluster is an operational problem the caller must see.
        Ok(Json::obj([("ok", Json::Bool(all_ok)), ("rolled", Json::Arr(shards_json))]))
    }

    fn stats_op(&self) -> Json {
        let snap = self.stats.snapshot();
        let shards_json: Vec<Json> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, set)| {
                let replicas: Vec<Json> = set
                    .replicas
                    .iter()
                    .map(|r| {
                        let st = r.status();
                        Json::obj([
                            ("addr", Json::Str(st.addr.to_string())),
                            ("healthy", Json::Bool(st.healthy)),
                            ("breaker_open", Json::Bool(st.breaker_open)),
                            ("consecutive_failures", Json::Num(st.consecutive_failures as f64)),
                            ("connected", Json::Bool(st.connected)),
                            ("in_flight", Json::Num(st.in_flight as f64)),
                            ("snapshot_version", Json::Num(st.snapshot_version as f64)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("shard", Json::Num(s as f64)),
                    ("nodes", Json::Num(self.manifest.shards[s].nodes as f64)),
                    ("replicas", Json::Arr(replicas)),
                ])
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("role", Json::Str(snap.role.as_str().to_string())),
            ("shard_id", Json::Null),
            ("index", Json::Str("router".to_string())),
            ("nodes", Json::Num(self.manifest.total_nodes as f64)),
            ("dim", Json::Num(self.manifest.dim as f64)),
            ("num_shards", Json::Num(self.manifest.num_shards as f64)),
            ("requests", Json::Num(snap.requests as f64)),
            ("rejected", Json::Num(snap.rejected as f64)),
            ("timeouts", Json::Num(snap.timeouts as f64)),
            ("overloads", Json::Num(snap.overloads as f64)),
            ("mean_us", Json::Num(snap.mean_us)),
            ("p50_us", Json::Num(snap.p50_us as f64)),
            ("p95_us", Json::Num(snap.p95_us as f64)),
            ("p99_us", Json::Num(snap.p99_us as f64)),
            ("cache_hits", Json::Num(snap.cache_hits as f64)),
            ("cache_misses", Json::Num(snap.cache_misses as f64)),
            ("ops", op_counts_json(&snap.ops)),
            ("shards", Json::Arr(shards_json)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_shards;
    use crate::shard::{ShardConfig, ShardHandle, ShardServer};
    use ehna_serve::{handle_line, BruteForceIndex, EmbeddingStore, EngineConfig, QueryEngine};
    use ehna_tgraph::NodeEmbeddings;

    fn table(n: usize, dim: usize) -> NodeEmbeddings {
        // Deliberately tie-heavy: values repeat mod 5 so distance ties
        // exercise the (dist, id) tie-break across shard boundaries.
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 5) as f32).collect();
        NodeEmbeddings::from_vec(dim, data)
    }

    fn standalone(emb: &NodeEmbeddings) -> Arc<QueryEngine> {
        let store = Arc::new(EmbeddingStore::new(emb.clone(), None).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    struct TestCluster {
        dir: std::path::PathBuf,
        handles: Vec<ShardHandle>,
        router: Router,
    }

    impl TestCluster {
        fn start(emb: &NodeEmbeddings, num_shards: u32, name: &str) -> TestCluster {
            let config = RouterConfig {
                probe_interval: Duration::ZERO, // deterministic tests
                ..Default::default()
            };
            Self::start_with(emb, num_shards, name, config)
        }

        fn start_with(
            emb: &NodeEmbeddings,
            num_shards: u32,
            name: &str,
            config: RouterConfig,
        ) -> TestCluster {
            let dir = std::env::temp_dir().join(format!("ehna_router_test_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            let manifest = plan_shards(emb, None, num_shards, &dir).unwrap();
            let mut handles = Vec::new();
            let mut addrs = Vec::new();
            for entry in &manifest.shards {
                let store = Arc::new(
                    EmbeddingStore::open(dir.join(&entry.snapshot), Some(dir.join(&entry.names)))
                        .unwrap(),
                );
                let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
                let engine = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));
                let config = ShardConfig {
                    shard_id: handles.len() as u32,
                    poll: Duration::from_millis(10),
                    ..Default::default()
                };
                let handle = ShardServer::bind(
                    "127.0.0.1:0",
                    engine,
                    RequestLimits::default(),
                    None,
                    config,
                )
                .unwrap()
                .spawn()
                .unwrap();
                addrs.push(vec![handle.addr()]);
                handles.push(handle);
            }
            let router = Router::new(manifest, addrs, RequestLimits::default(), config).unwrap();
            TestCluster { dir, handles, router }
        }

        fn stop(self) {
            drop(self.router);
            for h in self.handles {
                h.shutdown();
            }
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn neighbors_of(resp: &Json) -> String {
        format!("{}", resp.get("neighbors").expect("neighbors field"))
    }

    #[test]
    fn sharded_knn_matches_standalone_exactly() {
        let emb = table(23, 4);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        for shards in [1u32, 2, 4] {
            let cluster = TestCluster::start(&emb, shards, &format!("eq{shards}"));
            for line in [
                "{\"op\":\"knn\",\"node\":0,\"k\":5}",
                "{\"op\":\"knn\",\"node\":\"22\",\"k\":23}",
                "{\"op\":\"knn\",\"node\":7,\"k\":1}",
                "{\"op\":\"knn\",\"vector\":[1,2,3,4],\"k\":6}",
                "{\"op\":\"knn\",\"node\":3}",
            ] {
                let want = handle_line(&single, &limits, line);
                let got = cluster.router.handle_line(line);
                assert_eq!(neighbors_of(&got), neighbors_of(&want), "shards={shards} line={line}");
                assert_eq!(got.get("k").unwrap().to_string(), want.get("k").unwrap().to_string());
            }
            // Error surfaces line up too.
            for line in [
                "{\"op\":\"knn\",\"node\":99}",
                "{\"op\":\"knn\",\"node\":0,\"k\":0}",
                "{\"op\":\"knn\"}",
                "{\"op\":\"nope\"}",
            ] {
                let want = handle_line(&single, &limits, line);
                let got = cluster.router.handle_line(line);
                assert_eq!(got.to_string(), want.to_string(), "shards={shards} line={line}");
            }
            cluster.stop();
        }
    }

    #[test]
    fn sharded_score_matches_standalone_exactly() {
        let emb = table(12, 3);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        let cluster = TestCluster::start(&emb, 3, "score");
        for line in [
            "{\"op\":\"score\",\"pairs\":[[0,1],[5,11],[4,4]]}",
            "{\"op\":\"score\",\"pairs\":[[\"2\",\"9\"]]}",
            "{\"op\":\"score\",\"pairs\":[[0,99]]}",
        ] {
            let want = handle_line(&single, &limits, line);
            let got = cluster.router.handle_line(line);
            assert_eq!(got.to_string(), want.to_string(), "line={line}");
        }
        cluster.stop();
    }

    #[test]
    fn batch_fans_out_and_refuses_control_ops() {
        let emb = table(10, 2);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        let cluster = TestCluster::start(&emb, 2, "batch");
        let line = "{\"op\":\"batch\",\"requests\":[{\"op\":\"ping\"},{\"op\":\"knn\",\"node\":1,\"k\":3},{\"op\":\"reload\"},{\"op\":\"score\",\"pairs\":[[0,9]]}]}";
        let want = handle_line(&single, &limits, line);
        let got = cluster.router.handle_line(line);
        let want_resps = want.get("responses").unwrap().as_arr().unwrap();
        let got_resps = got.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(got_resps.len(), want_resps.len());
        assert_eq!(got_resps[0].to_string(), want_resps[0].to_string(), "ping");
        assert_eq!(neighbors_of(&got_resps[1]), neighbors_of(&want_resps[1]), "knn inside batch");
        assert_eq!(got_resps[2].to_string(), want_resps[2].to_string(), "refused reload");
        assert_eq!(got_resps[3].to_string(), want_resps[3].to_string(), "score inside batch");
        cluster.stop();
    }

    #[test]
    fn stats_reports_router_role_and_replica_health() {
        let emb = table(8, 2);
        let cluster = TestCluster::start(&emb, 2, "stats");
        let _ = cluster.router.handle_line("{\"op\":\"knn\",\"node\":0,\"k\":2}");
        let stats = cluster.router.handle_line("{\"op\":\"stats\"}");
        let text = stats.to_string();
        assert!(text.contains("\"role\":\"router\""), "stats: {text}");
        assert!(text.contains("\"num_shards\":2"), "stats: {text}");
        assert!(text.contains("\"healthy\":true"), "stats: {text}");
        // Every in-flight guard has dropped by the time the query
        // returns, and no probe has run (interval zero) so replica
        // versions are still unknown.
        assert!(text.contains("\"in_flight\":0"), "stats: {text}");
        assert!(text.contains("\"snapshot_version\":0"), "stats: {text}");
        assert!(text.contains("\"cache_hits\":0"), "stats: {text}");
        assert!(text.contains("\"cache_misses\":1"), "stats: {text}");
        assert_eq!(stats.get("ops").unwrap().get("knn").unwrap().as_usize(), Some(1));
        cluster.stop();
    }

    #[test]
    fn shard_request_errors_come_back_verbatim() {
        let emb = table(9, 4);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        let cluster = TestCluster::start(&emb, 2, "verberr");
        // A wrong-dimension vector is validated on the shard, not the
        // router; the message must match standalone word for word — in
        // particular, no "shard N" prefix on request-level errors.
        let line = "{\"op\":\"knn\",\"vector\":[1,2],\"k\":3}";
        let want = handle_line(&single, &limits, line).to_string();
        let got = cluster.router.handle_line(line).to_string();
        assert_eq!(got, want, "request-level error must be verbatim");
        assert!(!got.contains("shard"), "availability prefix leaked: {got}");
        cluster.stop();
    }

    #[test]
    fn availability_errors_keep_the_shard_prefix() {
        let emb = table(6, 2);
        let dir = std::env::temp_dir().join("ehna_router_test_availerr");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 1, &dir).unwrap();
        // Nothing listens on the discard port: every attempt fails at
        // connect, which is an availability error, not a request error.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let config = RouterConfig {
            probe_interval: Duration::ZERO,
            connect_timeout: Duration::from_millis(200),
            shard_timeout: Duration::from_millis(500),
            ..Default::default()
        };
        let router =
            Router::new(manifest, vec![vec![addr]], RequestLimits::default(), config).unwrap();
        let resp = router.handle_line("{\"op\":\"knn\",\"vector\":[1,2],\"k\":3}").to_string();
        assert!(resp.contains("\"ok\":false"), "resp: {resp}");
        assert!(resp.contains("shard 0 unavailable:"), "resp: {resp}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn node_knn_answers_from_cache_until_reload_changes_versions() {
        use ehna_serve::Reloader;
        let emb = table(14, 3);
        let dir = std::env::temp_dir().join("ehna_router_test_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 2, &dir).unwrap();
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        for (s, entry) in manifest.shards.iter().enumerate() {
            let snap = dir.join(&entry.snapshot);
            let names = dir.join(&entry.names);
            let store = Arc::new(EmbeddingStore::open(&snap, Some(&names)).unwrap());
            let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
            let engine = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));
            let reloader: Reloader = Arc::new(move || {
                let store = Arc::new(EmbeddingStore::open(&snap, Some(&names))?);
                let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
                Ok((store, index as Box<dyn ehna_serve::KnnIndex>))
            });
            let config = ShardConfig {
                shard_id: s as u32,
                poll: Duration::from_millis(10),
                ..Default::default()
            };
            let handle = ShardServer::bind(
                "127.0.0.1:0",
                engine,
                RequestLimits::default(),
                Some(reloader),
                config,
            )
            .unwrap()
            .spawn()
            .unwrap();
            addrs.push(vec![handle.addr()]);
            handles.push(handle);
        }
        let config = RouterConfig { probe_interval: Duration::ZERO, ..Default::default() };
        let router = Router::new(manifest, addrs, RequestLimits::default(), config).unwrap();

        let line = "{\"op\":\"knn\",\"node\":0,\"k\":4}";
        let cold = router.handle_line(line);
        assert_eq!(cold.get("cached"), Some(&Json::Bool(false)), "cold: {cold}");
        let warm = router.handle_line(line);
        assert_eq!(warm.get("cached"), Some(&Json::Bool(true)), "warm: {warm}");
        assert_eq!(neighbors_of(&warm), neighbors_of(&cold), "cache must not change answers");

        // Aliased spellings of one node share an entry: the cache is
        // keyed by resolved global id, not by the raw key string.
        let by_num = router.handle_line("{\"op\":\"knn\",\"node\":3,\"k\":4}");
        assert_eq!(by_num.get("cached"), Some(&Json::Bool(false)), "{by_num}");
        let by_str = router.handle_line("{\"op\":\"knn\",\"node\":\"3\",\"k\":4}");
        assert_eq!(by_str.get("cached"), Some(&Json::Bool(true)), "{by_str}");
        assert_eq!(neighbors_of(&by_str), neighbors_of(&by_num));

        // Vector and explain queries are never cached.
        let vec_line = "{\"op\":\"knn\",\"vector\":[1,0,2],\"k\":3}";
        for _ in 0..2 {
            let resp = router.handle_line(vec_line);
            assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{resp}");
        }
        let explain = router.handle_line("{\"op\":\"knn\",\"node\":0,\"k\":4,\"explain\":true}");
        assert_eq!(explain.get("cached"), Some(&Json::Bool(false)), "{explain}");
        assert!(explain.get("explain").is_some(), "{explain}");

        // A rolling reload bumps every replica's snapshot version, which
        // re-keys the cache: the old entries can never be served again.
        let rolled = router.handle_line("{\"op\":\"reload\"}");
        assert_eq!(rolled.get("ok"), Some(&Json::Bool(true)), "{rolled}");
        let after = router.handle_line(line);
        assert_eq!(after.get("cached"), Some(&Json::Bool(false)), "post-reload: {after}");
        assert_eq!(neighbors_of(&after), neighbors_of(&cold), "same data, same answer");
        let again = router.handle_line(line);
        assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "re-warm: {again}");

        drop(router);
        for h in handles {
            h.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_capacity_zero_disables_the_cache() {
        let emb = table(10, 2);
        let config = RouterConfig {
            probe_interval: Duration::ZERO,
            cache_capacity: 0,
            ..Default::default()
        };
        let cluster = TestCluster::start_with(&emb, 2, "nocache", config);
        let line = "{\"op\":\"knn\",\"node\":1,\"k\":3}";
        let first = cluster.router.handle_line(line);
        let second = cluster.router.handle_line(line);
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first}");
        assert_eq!(second.get("cached"), Some(&Json::Bool(false)), "{second}");
        assert_eq!(neighbors_of(&second), neighbors_of(&first));
        cluster.stop();
    }

    #[test]
    fn failover_and_breaker_take_a_dead_replica_out() {
        let emb = table(10, 2);
        // 1 shard, 2 replicas over the same partition.
        let dir = std::env::temp_dir().join("ehna_router_test_failover");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 1, &dir).unwrap();
        let mk_handle = || {
            let store = Arc::new(
                EmbeddingStore::open(
                    dir.join(&manifest.shards[0].snapshot),
                    Some(dir.join(&manifest.shards[0].names)),
                )
                .unwrap(),
            );
            let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
            let engine = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));
            let config = ShardConfig { poll: Duration::from_millis(10), ..Default::default() };
            ShardServer::bind("127.0.0.1:0", engine, RequestLimits::default(), None, config)
                .unwrap()
                .spawn()
                .unwrap()
        };
        let a = mk_handle();
        let b = mk_handle();
        let config = RouterConfig {
            // Probes are what accumulate failures on a demoted replica
            // (queries stop visiting it after the first failure), so the
            // breaker only opens with probing on.
            probe_interval: Duration::from_millis(100),
            shard_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(30),
            // Cache off: this test repeats one query and must hit the
            // scatter path every time to exercise failover.
            cache_capacity: 0,
            ..Default::default()
        };
        let router = Router::new(
            manifest.clone(),
            vec![vec![a.addr(), b.addr()]],
            RequestLimits::default(),
            config,
        )
        .unwrap();

        let line = "{\"op\":\"knn\",\"node\":0,\"k\":3}";
        let baseline = router.handle_line(line).to_string();
        assert!(baseline.contains("\"ok\":true"), "baseline: {baseline}");

        // Kill replica A; every query must keep succeeding via B.
        let a_addr = a.addr();
        a.shutdown();
        for i in 0..6 {
            let resp = router.handle_line(line).to_string();
            assert_eq!(resp, baseline, "query {i} after replica kill");
        }
        // Repeated probe failures open A's breaker; B stays healthy.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let status = router.replica_status();
            let a_status = status[0].iter().find(|r| r.addr == a_addr).unwrap();
            let b_status = status[0].iter().find(|r| r.addr != a_addr).unwrap();
            assert!(b_status.healthy, "surviving replica demoted: {b_status:?}");
            if !a_status.healthy && a_status.breaker_open {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never opened: {a_status:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        // With A's breaker open, queries still succeed (and never try A
        // on the preferred pass).
        assert_eq!(router.handle_line(line).to_string(), baseline);

        drop(router);
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn router_rejects_mismatched_replica_maps() {
        let emb = table(6, 2);
        let dir = std::env::temp_dir().join("ehna_router_test_badmap");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 2, &dir).unwrap();
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(Router::new(
            manifest.clone(),
            vec![vec![addr]],
            RequestLimits::default(),
            RouterConfig::default()
        )
        .is_err());
        assert!(Router::new(
            manifest,
            vec![vec![addr], vec![]],
            RequestLimits::default(),
            RouterConfig::default()
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
