//! The scatter-gather router — a sharded cluster's JSON front door.
//!
//! [`Router`] implements [`ehna_serve::LineHandler`], so it plugs into
//! the hardened socket front end from `ehna-serve` (admission control,
//! bounded worker pool, line caps, socket timeouts, deterministic
//! shutdown) via [`ehna_serve::Server::bind_handler`] — clients cannot
//! tell a router from a standalone server except by asking `stats`.
//!
//! ## Exactness
//!
//! Every `knn` is scattered to all shards; each shard returns its local
//! top-`k'` ascending by `(distance, local id)`. Because the planner's
//! round-robin partition makes the local→global id map monotone within a
//! shard, merging the per-shard lists by `(distance, global id)` applies
//! *exactly* the single-node tie-break `(dist, NodeId)` — the sharded
//! top-k is identical, ids and ordering, to the unsharded one (the
//! router over-fetches one extra when it must exclude the query node,
//! which keeps every candidate list sufficient). Distances are computed
//! by the shards with the same f32-subtract/f64-accumulate loop as the
//! single-node store and travel as exact f64 bit patterns.
//!
//! ## Failure handling
//!
//! Each shard runs one or more replicas. Calls rotate round-robin,
//! preferring replicas that are marked healthy with a closed circuit
//! breaker; on error or timeout the call fails over to the next replica.
//! [`RouterConfig::breaker_threshold`] consecutive failures open a
//! replica's breaker for [`RouterConfig::breaker_cooldown`], taking it
//! out of the preferred set so a sick replica stops eating latency
//! budget. A background probe pings every replica each
//! [`RouterConfig::probe_interval`] — probes bypass the breaker (they
//! *are* the recovery path) and a successful probe closes it.

use crate::client::{CallError, MuxClient};
use crate::manifest::{global_of, owner_of, ClusterManifest};
use crate::proto::{Request, Response};
use crate::ClusterError;
use ehna_serve::{op_counts_json, EngineStats, Json, LineHandler, RequestLimits, Role};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the router's shard fan-out and failure detection.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-shard budget for one scattered call (after this the call
    /// fails over to the next replica).
    pub shard_timeout: Duration,
    /// TCP connect budget per replica.
    pub connect_timeout: Duration,
    /// How often the background probe pings every replica; zero disables
    /// probing (breaker cooldown then becomes the only recovery path).
    pub probe_interval: Duration,
    /// Consecutive failures that open a replica's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker keeps a replica out of the preferred
    /// set before it is retried (half-open).
    pub breaker_cooldown: Duration,
    /// Per-replica budget for a rolling `reload` (snapshot loads are
    /// much slower than queries).
    pub reload_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shard_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            probe_interval: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            reload_timeout: Duration::from_secs(60),
        }
    }
}

/// Point-in-time health of one replica, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The replica's EHNP address.
    pub addr: SocketAddr,
    /// Whether the last contact succeeded.
    pub healthy: bool,
    /// Whether the circuit breaker is currently open.
    pub breaker_open: bool,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Whether a live multiplexed connection is established.
    pub connected: bool,
}

struct Replica {
    addr: SocketAddr,
    conn: Mutex<Option<Arc<MuxClient>>>,
    failures: AtomicU32,
    open_until: Mutex<Option<Instant>>,
    healthy: AtomicBool,
}

impl Replica {
    fn new(addr: SocketAddr) -> Replica {
        Replica {
            addr,
            conn: Mutex::new(None),
            failures: AtomicU32::new(0),
            open_until: Mutex::new(None),
            // Optimistic start: a replica has to fail to be demoted.
            healthy: AtomicBool::new(true),
        }
    }

    fn breaker_open(&self) -> bool {
        matches!(*self.open_until.lock(), Some(until) if Instant::now() < until)
    }

    fn preferred(&self) -> bool {
        self.healthy.load(Ordering::Relaxed) && !self.breaker_open()
    }

    fn record_success(&self) {
        self.failures.store(0, Ordering::Relaxed);
        *self.open_until.lock() = None;
        self.healthy.store(true, Ordering::Relaxed);
    }

    fn record_failure(&self, config: &RouterConfig) {
        let f = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
        if f >= config.breaker_threshold {
            *self.open_until.lock() = Some(Instant::now() + config.breaker_cooldown);
        }
        self.healthy.store(false, Ordering::Relaxed);
    }

    /// The live connection, dialing a fresh one if needed. The lock is
    /// held across the dial so concurrent workers don't race N parallel
    /// connects at the same replica.
    fn client(&self, config: &RouterConfig) -> Result<Arc<MuxClient>, String> {
        let mut guard = self.conn.lock();
        if let Some(c) = guard.as_ref() {
            if !c.is_dead() {
                return Ok(Arc::clone(c));
            }
        }
        match MuxClient::connect(self.addr, config.connect_timeout, config.shard_timeout) {
            Ok(c) => {
                let c = Arc::new(c);
                *guard = Some(Arc::clone(&c));
                Ok(c)
            }
            Err(e) => {
                *guard = None;
                Err(format!("connect {}: {e}", self.addr))
            }
        }
    }

    fn call(
        &self,
        req: &Request,
        timeout: Duration,
        config: &RouterConfig,
    ) -> Result<Response, String> {
        let client = match self.client(config) {
            Ok(c) => c,
            Err(e) => {
                self.record_failure(config);
                return Err(e);
            }
        };
        match client.call(req, timeout) {
            Ok(resp) => {
                self.record_success();
                Ok(resp)
            }
            Err(CallError::Dead(msg)) => {
                // Drop the dead connection so the next call redials.
                let mut guard = self.conn.lock();
                if guard.as_ref().is_some_and(|c| Arc::ptr_eq(c, &client)) {
                    *guard = None;
                }
                drop(guard);
                self.record_failure(config);
                Err(format!("{}: {msg}", self.addr))
            }
            Err(CallError::Timeout(t)) => {
                self.record_failure(config);
                Err(format!("{}: no answer within {t:?}", self.addr))
            }
        }
    }

    fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            addr: self.addr,
            healthy: self.healthy.load(Ordering::Relaxed),
            breaker_open: self.breaker_open(),
            consecutive_failures: self.failures.load(Ordering::Relaxed),
            connected: self.conn.lock().as_ref().is_some_and(|c| !c.is_dead()),
        }
    }
}

struct ShardSet {
    replicas: Vec<Arc<Replica>>,
    rr: AtomicUsize,
}

struct Inner {
    manifest: ClusterManifest,
    shards: Vec<ShardSet>,
    stats: EngineStats,
    limits: RequestLimits,
    config: RouterConfig,
    stop: AtomicBool,
}

/// The scatter-gather front door of a sharded cluster. See the module
/// docs for semantics; build with [`Router::new`] and serve it via
/// [`ehna_serve::Server::bind_handler`].
pub struct Router {
    inner: Arc<Inner>,
    probe: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("num_shards", &self.inner.manifest.num_shards)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Build a router over `manifest`, with `replicas[s]` listing the
    /// EHNP addresses serving shard `s`. Starts the health-probe thread
    /// unless `config.probe_interval` is zero.
    ///
    /// # Errors
    /// [`ClusterError::Plan`] when the replica map does not cover every
    /// shard exactly once.
    pub fn new(
        manifest: ClusterManifest,
        replicas: Vec<Vec<SocketAddr>>,
        limits: RequestLimits,
        config: RouterConfig,
    ) -> Result<Router, ClusterError> {
        if replicas.len() != manifest.num_shards as usize {
            return Err(ClusterError::Plan(format!(
                "manifest has {} shards but {} replica sets were given",
                manifest.num_shards,
                replicas.len()
            )));
        }
        if let Some(empty) = replicas.iter().position(Vec::is_empty) {
            return Err(ClusterError::Plan(format!("shard {empty} has no replicas")));
        }
        let shards = replicas
            .into_iter()
            .map(|addrs| ShardSet {
                replicas: addrs.into_iter().map(|a| Arc::new(Replica::new(a))).collect(),
                rr: AtomicUsize::new(0),
            })
            .collect();
        let inner = Arc::new(Inner {
            manifest,
            shards,
            stats: EngineStats::default(),
            limits,
            config,
            stop: AtomicBool::new(false),
        });
        inner.stats.set_identity(Role::Router, None);
        let probe = if inner.config.probe_interval.is_zero() {
            None
        } else {
            let probe_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("ehna-router-probe".into())
                    .spawn(move || probe_loop(&probe_inner))
                    .expect("spawn router probe"),
            )
        };
        Ok(Router { inner, probe: Mutex::new(probe) })
    }

    /// Health of every replica, by shard — what `stats` reports, exposed
    /// directly for tests and embedders.
    pub fn replica_status(&self) -> Vec<Vec<ReplicaStatus>> {
        self.inner.shards.iter().map(|s| s.replicas.iter().map(|r| r.status()).collect()).collect()
    }

    /// The manifest this router routes by.
    pub fn manifest(&self) -> &ClusterManifest {
        &self.inner.manifest
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.probe.lock().take() {
            let _ = h.join();
        }
    }
}

impl LineHandler for Router {
    fn handle_line(&self, line: &str) -> Json {
        let inner = &self.inner;
        let reject = |msg: &str| {
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            error_json(msg)
        };
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return reject(&format!("bad json: {e}")),
        };
        let started = Instant::now();
        match inner.dispatch(&request) {
            Ok(resp) => {
                inner.stats.latency.record(started.elapsed());
                resp
            }
            Err(msg) => reject(&msg),
        }
    }

    fn stats(&self) -> &EngineStats {
        &self.inner.stats
    }
}

fn probe_loop(inner: &Arc<Inner>) {
    let poll = Duration::from_millis(20);
    loop {
        let mut slept = Duration::ZERO;
        while slept < inner.config.probe_interval {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(poll);
            slept += poll;
        }
        for set in &inner.shards {
            for replica in &set.replicas {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Probes bypass the breaker on purpose: a successful
                // ping is what closes it again.
                let _ = replica.call(&Request::Ping, inner.config.shard_timeout, &inner.config);
            }
        }
    }
}

fn error_json(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))])
}

/// Squared Euclidean distance, replicating the single-node store's loop
/// bit-for-bit (f32 subtraction, f64 square-and-accumulate, in
/// dimension order) so router-computed scores equal shard/standalone
/// ones exactly.
fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

impl Inner {
    /// Route one parsed request. Error strings are fully formatted to
    /// match the standalone server's wording, so a client cannot tell a
    /// router's rejection from a standalone server's.
    fn dispatch(&self, request: &Json) -> Result<Json, String> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "bad request: missing 'op'".to_string())?;
        self.stats.ops.record(op);
        match op {
            "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])),
            "knn" => self.knn_op(request),
            "score" => self.score_op(request),
            "stats" => Ok(self.stats_op()),
            "reload" => self.reload_op(),
            "batch" => self.batch_op(request),
            other => Err(format!("bad request: unknown op '{other}'")),
        }
    }

    /// One scattered call to shard `shard`, failing over across its
    /// replicas: round-robin start, preferred (healthy, breaker closed)
    /// replicas first, everything else as a second pass.
    fn call_shard(
        &self,
        shard: usize,
        req: &Request,
        timeout: Duration,
    ) -> Result<Response, String> {
        let set = &self.shards[shard];
        let n = set.replicas.len();
        let start = set.rr.fetch_add(1, Ordering::Relaxed) % n;
        let mut tried = vec![false; n];
        let mut last_err = String::from("no replicas");
        for pass in 0..2 {
            for step in 0..n {
                let idx = (start + step) % n;
                if tried[idx] {
                    continue;
                }
                let replica = &set.replicas[idx];
                if pass == 0 && !replica.preferred() {
                    continue;
                }
                tried[idx] = true;
                match replica.call(req, timeout, &self.config) {
                    Ok(Response::Error(msg)) => {
                        // The shard answered; this is a request-level
                        // error, not a replica failure.
                        return Err(format!("shard {shard}: {msg}"));
                    }
                    Ok(resp) => return Ok(resp),
                    Err(e) => last_err = e,
                }
            }
        }
        Err(format!("shard {shard} unavailable: {last_err}"))
    }

    /// Scatter `req` to every shard concurrently; shard `i`'s result
    /// lands at index `i`.
    fn scatter(&self, req: &Request, timeout: Duration) -> Vec<Result<Response, String>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|s| scope.spawn(move || self.call_shard(s, req, timeout)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter thread panicked")).collect()
        })
    }

    /// Resolve a client-supplied node key to `(global id, row)`,
    /// preserving the standalone resolution order: name-map lookup first
    /// (scattered, since any shard may own the name), then the decimal
    /// global-id fallback against the key's owner shard.
    fn resolve_global(&self, key: &str) -> Result<(u32, Vec<f32>), String> {
        let results =
            self.scatter(&Request::Resolve { key: key.to_string() }, self.config.shard_timeout);
        let mut shard_err = None;
        for (s, result) in results.iter().enumerate() {
            match result {
                Ok(Response::Resolved { hit: Some((local, _label, row)) }) => {
                    return Ok((
                        global_of(s as u32, *local, self.manifest.num_shards),
                        row.clone(),
                    ));
                }
                Ok(_) => {}
                Err(e) => shard_err = Some(e.clone()),
            }
        }
        if let Some(e) = shard_err {
            // An unreachable shard might own this name; guessing "not
            // found" would silently change answers.
            return Err(e);
        }
        if let Ok(global) = key.parse::<u32>() {
            if (global as u64) < self.manifest.total_nodes {
                let (shard, local) = owner_of(global, self.manifest.num_shards);
                return match self.call_shard(
                    shard as usize,
                    &Request::GetRow { local },
                    self.config.shard_timeout,
                )? {
                    Response::Row { row, .. } => Ok((global, row)),
                    other => Err(format!("shard {shard}: unexpected response {other:?}")),
                };
            }
        }
        Err(format!("unknown node '{key}'"))
    }

    fn knn_op(&self, request: &Json) -> Result<Json, String> {
        let num_nodes = self.manifest.total_nodes as usize;
        // Validation mirrors the standalone server word for word.
        let k = match request.get("k") {
            Some(v) => {
                let k = v.as_usize().ok_or("bad request: bad 'k'")?;
                if k == 0 || k > num_nodes {
                    return Err(format!(
                        "bad request: 'k' must be between 1 and {num_nodes} (got {k})"
                    ));
                }
                if k > self.limits.max_k {
                    return Err(format!(
                        "bad request: 'k' exceeds the server limit of {} (got {k})",
                        self.limits.max_k
                    ));
                }
                k
            }
            None => 10.min(self.limits.max_k).min(num_nodes).max(1),
        };
        let explain = request.get("explain").and_then(Json::as_bool).unwrap_or(false);
        let (vector, exclude) = match (request.get("node"), request.get("vector")) {
            (Some(node), None) => {
                let key = node
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| node.as_usize().map(|i| i.to_string()))
                    .ok_or("bad request: bad 'node'")?;
                let (global, row) = self.resolve_global(&key)?;
                (row, Some(global))
            }
            (None, Some(vector)) => {
                let items = vector.as_arr().ok_or("bad request: 'vector' must be an array")?;
                let q: Vec<f32> = items
                    .iter()
                    .map(|v| v.as_f64().map(|x| x as f32))
                    .collect::<Option<_>>()
                    .ok_or("bad request: non-numeric vector entry")?;
                (q, None)
            }
            _ => return Err("bad request: need exactly one of 'node' or 'vector'".into()),
        };
        // Over-fetch one extra when the query node will be dropped, so
        // every per-shard candidate list stays sufficient for a global
        // top-k (the excluded node lives in exactly one shard's list).
        let fetch = k + usize::from(exclude.is_some());
        let req = Request::Knn { k: fetch as u32, explain, vector };
        let results = self.scatter(&req, self.config.shard_timeout);
        let mut candidates: Vec<(f64, u32, String)> = Vec::new();
        let mut shard_infos = Vec::with_capacity(self.shards.len());
        for (s, result) in results.into_iter().enumerate() {
            match result? {
                Response::Knn { neighbors, info } => {
                    for (local, dist, label) in neighbors {
                        candidates.push((
                            dist,
                            global_of(s as u32, local, self.manifest.num_shards),
                            label,
                        ));
                    }
                    shard_infos.push(info);
                }
                other => return Err(format!("shard {s}: unexpected response {other:?}")),
            }
        }
        // The single-node tie-break, globally: ascending (dist, id).
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let neighbors: Vec<Json> = candidates
            .into_iter()
            .filter(|&(_, id, _)| Some(id) != exclude)
            .take(k)
            .map(|(dist, id, label)| {
                Json::obj([
                    ("node", Json::Str(label)),
                    ("id", Json::Num(id as f64)),
                    ("dist", Json::Num(dist)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("k".to_string(), Json::Num(k as f64)),
            ("neighbors".to_string(), Json::Arr(neighbors)),
            ("cached".to_string(), Json::Bool(false)),
        ];
        if explain {
            let mut scanned_total = 0u64;
            let shards_json: Vec<Json> = shard_infos
                .iter()
                .enumerate()
                .map(|(s, info)| {
                    let (probed, scanned) = match info {
                        Some((p, n)) => (p.clone(), *n),
                        None => (Vec::new(), 0),
                    };
                    scanned_total += scanned;
                    Json::obj([
                        ("shard", Json::Num(s as f64)),
                        (
                            "probed_centroids",
                            Json::Arr(probed.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                        ("scanned", Json::Num(scanned as f64)),
                    ])
                })
                .collect();
            fields.push((
                "explain".to_string(),
                Json::obj([
                    ("scanned", Json::Num(scanned_total as f64)),
                    ("rank_agreement", Json::Null),
                    ("shards", Json::Arr(shards_json)),
                ]),
            ));
        }
        Ok(Json::Obj(fields))
    }

    fn score_op(&self, request: &Json) -> Result<Json, String> {
        let pairs_json = request
            .get("pairs")
            .and_then(Json::as_arr)
            .ok_or("bad request: 'pairs' must be an array")?;
        if pairs_json.len() > self.limits.max_pairs {
            return Err(format!(
                "bad request: 'pairs' exceeds the server limit of {} (got {})",
                self.limits.max_pairs,
                pairs_json.len()
            ));
        }
        // Resolve each distinct key once per request; a scatter per
        // endpoint would turn one score call into 2·pairs fan-outs.
        let mut rows: std::collections::HashMap<String, Vec<f32>> =
            std::collections::HashMap::new();
        let mut resolve = |this: &Inner, key: String| -> Result<Vec<f32>, String> {
            if let Some(row) = rows.get(&key) {
                return Ok(row.clone());
            }
            let (_, row) = this.resolve_global(&key)?;
            rows.insert(key, row.clone());
            Ok(row)
        };
        let mut scores = Vec::with_capacity(pairs_json.len());
        for p in pairs_json {
            let items = p
                .as_arr()
                .filter(|items| items.len() == 2)
                .ok_or("bad request: each pair must be [src, dst]")?;
            let key = |v: &Json| -> Result<String, String> {
                v.as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_usize().map(|i| i.to_string()))
                    .ok_or_else(|| "bad request: bad pair endpoint".to_string())
            };
            let a = resolve(self, key(&items[0])?)?;
            let b = resolve(self, key(&items[1])?)?;
            scores.push(sq_dist(&a, &b));
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("scores", Json::Arr(scores.into_iter().map(Json::Num).collect())),
        ]))
    }

    fn batch_op(&self, request: &Json) -> Result<Json, String> {
        let requests = request
            .get("requests")
            .and_then(Json::as_arr)
            .ok_or("bad request: 'requests' must be an array")?;
        if requests.len() > self.limits.max_batch {
            return Err(format!(
                "bad request: 'requests' exceeds the server limit of {} (got {})",
                self.limits.max_batch,
                requests.len()
            ));
        }
        let mut responses = Vec::with_capacity(requests.len());
        for sub in requests {
            // Control ops are filtered before dispatch, exactly like the
            // standalone batch: a batch is a read-path convenience, not a
            // control plane (and the refused op is not counted).
            let resp = match sub.get("op").and_then(Json::as_str) {
                Some("batch") | Some("reload") => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    error_json("op not allowed inside a batch")
                }
                _ => match self.dispatch(sub) {
                    Ok(resp) => resp,
                    Err(msg) => {
                        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        error_json(&msg)
                    }
                },
            };
            responses.push(resp);
        }
        Ok(Json::obj([("ok", Json::Bool(true)), ("responses", Json::Arr(responses))]))
    }

    /// Rolling reload: shard by shard, replica by replica, strictly
    /// sequential — at any instant at most one replica is busy loading,
    /// so every shard keeps at least one replica serving (with ≥2
    /// replicas per shard) and the cluster never goes dark.
    fn reload_op(&self) -> Result<Json, String> {
        let mut all_ok = true;
        let mut shards_json = Vec::with_capacity(self.shards.len());
        for (s, set) in self.shards.iter().enumerate() {
            let mut replicas_json = Vec::with_capacity(set.replicas.len());
            for replica in &set.replicas {
                let entry = match replica.call(
                    &Request::Reload,
                    self.config.reload_timeout,
                    &self.config,
                ) {
                    Ok(Response::Reloaded { version, nodes }) => Json::obj([
                        ("addr", Json::Str(replica.addr.to_string())),
                        ("ok", Json::Bool(true)),
                        ("version", Json::Num(version as f64)),
                        ("nodes", Json::Num(nodes as f64)),
                    ]),
                    Ok(Response::Error(msg)) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(msg)),
                        ])
                    }
                    Ok(other) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(format!("unexpected response {other:?}"))),
                        ])
                    }
                    Err(e) => {
                        all_ok = false;
                        Json::obj([
                            ("addr", Json::Str(replica.addr.to_string())),
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str(e)),
                        ])
                    }
                };
                replicas_json.push(entry);
            }
            shards_json.push(Json::obj([
                ("shard", Json::Num(s as f64)),
                ("replicas", Json::Arr(replicas_json)),
            ]));
        }
        // Partial success is reported, not hidden: a version-skewed
        // cluster is an operational problem the caller must see.
        Ok(Json::obj([("ok", Json::Bool(all_ok)), ("rolled", Json::Arr(shards_json))]))
    }

    fn stats_op(&self) -> Json {
        let snap = self.stats.snapshot();
        let shards_json: Vec<Json> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, set)| {
                let replicas: Vec<Json> = set
                    .replicas
                    .iter()
                    .map(|r| {
                        let st = r.status();
                        Json::obj([
                            ("addr", Json::Str(st.addr.to_string())),
                            ("healthy", Json::Bool(st.healthy)),
                            ("breaker_open", Json::Bool(st.breaker_open)),
                            ("consecutive_failures", Json::Num(st.consecutive_failures as f64)),
                            ("connected", Json::Bool(st.connected)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("shard", Json::Num(s as f64)),
                    ("nodes", Json::Num(self.manifest.shards[s].nodes as f64)),
                    ("replicas", Json::Arr(replicas)),
                ])
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("role", Json::Str(snap.role.as_str().to_string())),
            ("shard_id", Json::Null),
            ("index", Json::Str("router".to_string())),
            ("nodes", Json::Num(self.manifest.total_nodes as f64)),
            ("dim", Json::Num(self.manifest.dim as f64)),
            ("num_shards", Json::Num(self.manifest.num_shards as f64)),
            ("requests", Json::Num(snap.requests as f64)),
            ("rejected", Json::Num(snap.rejected as f64)),
            ("timeouts", Json::Num(snap.timeouts as f64)),
            ("overloads", Json::Num(snap.overloads as f64)),
            ("mean_us", Json::Num(snap.mean_us)),
            ("p50_us", Json::Num(snap.p50_us as f64)),
            ("p95_us", Json::Num(snap.p95_us as f64)),
            ("p99_us", Json::Num(snap.p99_us as f64)),
            ("ops", op_counts_json(&snap.ops)),
            ("shards", Json::Arr(shards_json)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_shards;
    use crate::shard::{ShardConfig, ShardHandle, ShardServer};
    use ehna_serve::{handle_line, BruteForceIndex, EmbeddingStore, EngineConfig, QueryEngine};
    use ehna_tgraph::NodeEmbeddings;

    fn table(n: usize, dim: usize) -> NodeEmbeddings {
        // Deliberately tie-heavy: values repeat mod 5 so distance ties
        // exercise the (dist, id) tie-break across shard boundaries.
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 5) as f32).collect();
        NodeEmbeddings::from_vec(dim, data)
    }

    fn standalone(emb: &NodeEmbeddings) -> Arc<QueryEngine> {
        let store = Arc::new(EmbeddingStore::new(emb.clone(), None).unwrap());
        let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Arc::new(QueryEngine::new(store, index, EngineConfig::default()))
    }

    struct TestCluster {
        dir: std::path::PathBuf,
        handles: Vec<ShardHandle>,
        router: Router,
    }

    impl TestCluster {
        fn start(emb: &NodeEmbeddings, num_shards: u32, name: &str) -> TestCluster {
            let dir = std::env::temp_dir().join(format!("ehna_router_test_{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            let manifest = plan_shards(emb, None, num_shards, &dir).unwrap();
            let mut handles = Vec::new();
            let mut addrs = Vec::new();
            for entry in &manifest.shards {
                let store = Arc::new(
                    EmbeddingStore::open(dir.join(&entry.snapshot), Some(dir.join(&entry.names)))
                        .unwrap(),
                );
                let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
                let engine = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));
                let config = ShardConfig {
                    shard_id: handles.len() as u32,
                    poll: Duration::from_millis(10),
                    ..Default::default()
                };
                let handle = ShardServer::bind(
                    "127.0.0.1:0",
                    engine,
                    RequestLimits::default(),
                    None,
                    config,
                )
                .unwrap()
                .spawn()
                .unwrap();
                addrs.push(vec![handle.addr()]);
                handles.push(handle);
            }
            let config = RouterConfig {
                probe_interval: Duration::ZERO, // deterministic tests
                ..Default::default()
            };
            let router = Router::new(manifest, addrs, RequestLimits::default(), config).unwrap();
            TestCluster { dir, handles, router }
        }

        fn stop(self) {
            drop(self.router);
            for h in self.handles {
                h.shutdown();
            }
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn neighbors_of(resp: &Json) -> String {
        format!("{}", resp.get("neighbors").expect("neighbors field"))
    }

    #[test]
    fn sharded_knn_matches_standalone_exactly() {
        let emb = table(23, 4);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        for shards in [1u32, 2, 4] {
            let cluster = TestCluster::start(&emb, shards, &format!("eq{shards}"));
            for line in [
                "{\"op\":\"knn\",\"node\":0,\"k\":5}",
                "{\"op\":\"knn\",\"node\":\"22\",\"k\":23}",
                "{\"op\":\"knn\",\"node\":7,\"k\":1}",
                "{\"op\":\"knn\",\"vector\":[1,2,3,4],\"k\":6}",
                "{\"op\":\"knn\",\"node\":3}",
            ] {
                let want = handle_line(&single, &limits, line);
                let got = cluster.router.handle_line(line);
                assert_eq!(neighbors_of(&got), neighbors_of(&want), "shards={shards} line={line}");
                assert_eq!(got.get("k").unwrap().to_string(), want.get("k").unwrap().to_string());
            }
            // Error surfaces line up too.
            for line in [
                "{\"op\":\"knn\",\"node\":99}",
                "{\"op\":\"knn\",\"node\":0,\"k\":0}",
                "{\"op\":\"knn\"}",
                "{\"op\":\"nope\"}",
            ] {
                let want = handle_line(&single, &limits, line);
                let got = cluster.router.handle_line(line);
                assert_eq!(got.to_string(), want.to_string(), "shards={shards} line={line}");
            }
            cluster.stop();
        }
    }

    #[test]
    fn sharded_score_matches_standalone_exactly() {
        let emb = table(12, 3);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        let cluster = TestCluster::start(&emb, 3, "score");
        for line in [
            "{\"op\":\"score\",\"pairs\":[[0,1],[5,11],[4,4]]}",
            "{\"op\":\"score\",\"pairs\":[[\"2\",\"9\"]]}",
            "{\"op\":\"score\",\"pairs\":[[0,99]]}",
        ] {
            let want = handle_line(&single, &limits, line);
            let got = cluster.router.handle_line(line);
            assert_eq!(got.to_string(), want.to_string(), "line={line}");
        }
        cluster.stop();
    }

    #[test]
    fn batch_fans_out_and_refuses_control_ops() {
        let emb = table(10, 2);
        let single = standalone(&emb);
        let limits = RequestLimits::default();
        let cluster = TestCluster::start(&emb, 2, "batch");
        let line = "{\"op\":\"batch\",\"requests\":[{\"op\":\"ping\"},{\"op\":\"knn\",\"node\":1,\"k\":3},{\"op\":\"reload\"},{\"op\":\"score\",\"pairs\":[[0,9]]}]}";
        let want = handle_line(&single, &limits, line);
        let got = cluster.router.handle_line(line);
        let want_resps = want.get("responses").unwrap().as_arr().unwrap();
        let got_resps = got.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(got_resps.len(), want_resps.len());
        assert_eq!(got_resps[0].to_string(), want_resps[0].to_string(), "ping");
        assert_eq!(neighbors_of(&got_resps[1]), neighbors_of(&want_resps[1]), "knn inside batch");
        assert_eq!(got_resps[2].to_string(), want_resps[2].to_string(), "refused reload");
        assert_eq!(got_resps[3].to_string(), want_resps[3].to_string(), "score inside batch");
        cluster.stop();
    }

    #[test]
    fn stats_reports_router_role_and_replica_health() {
        let emb = table(8, 2);
        let cluster = TestCluster::start(&emb, 2, "stats");
        let _ = cluster.router.handle_line("{\"op\":\"knn\",\"node\":0,\"k\":2}");
        let stats = cluster.router.handle_line("{\"op\":\"stats\"}");
        let text = stats.to_string();
        assert!(text.contains("\"role\":\"router\""), "stats: {text}");
        assert!(text.contains("\"num_shards\":2"), "stats: {text}");
        assert!(text.contains("\"healthy\":true"), "stats: {text}");
        assert_eq!(stats.get("ops").unwrap().get("knn").unwrap().as_usize(), Some(1));
        cluster.stop();
    }

    #[test]
    fn failover_and_breaker_take_a_dead_replica_out() {
        let emb = table(10, 2);
        // 1 shard, 2 replicas over the same partition.
        let dir = std::env::temp_dir().join("ehna_router_test_failover");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 1, &dir).unwrap();
        let mk_handle = || {
            let store = Arc::new(
                EmbeddingStore::open(
                    dir.join(&manifest.shards[0].snapshot),
                    Some(dir.join(&manifest.shards[0].names)),
                )
                .unwrap(),
            );
            let index = Box::new(BruteForceIndex::new(Arc::clone(&store)));
            let engine = Arc::new(QueryEngine::new(store, index, EngineConfig::default()));
            let config = ShardConfig { poll: Duration::from_millis(10), ..Default::default() };
            ShardServer::bind("127.0.0.1:0", engine, RequestLimits::default(), None, config)
                .unwrap()
                .spawn()
                .unwrap()
        };
        let a = mk_handle();
        let b = mk_handle();
        let config = RouterConfig {
            // Probes are what accumulate failures on a demoted replica
            // (queries stop visiting it after the first failure), so the
            // breaker only opens with probing on.
            probe_interval: Duration::from_millis(100),
            shard_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(30),
            ..Default::default()
        };
        let router = Router::new(
            manifest.clone(),
            vec![vec![a.addr(), b.addr()]],
            RequestLimits::default(),
            config,
        )
        .unwrap();

        let line = "{\"op\":\"knn\",\"node\":0,\"k\":3}";
        let baseline = router.handle_line(line).to_string();
        assert!(baseline.contains("\"ok\":true"), "baseline: {baseline}");

        // Kill replica A; every query must keep succeeding via B.
        let a_addr = a.addr();
        a.shutdown();
        for i in 0..6 {
            let resp = router.handle_line(line).to_string();
            assert_eq!(resp, baseline, "query {i} after replica kill");
        }
        // Repeated probe failures open A's breaker; B stays healthy.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let status = router.replica_status();
            let a_status = status[0].iter().find(|r| r.addr == a_addr).unwrap();
            let b_status = status[0].iter().find(|r| r.addr != a_addr).unwrap();
            assert!(b_status.healthy, "surviving replica demoted: {b_status:?}");
            if !a_status.healthy && a_status.breaker_open {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never opened: {a_status:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        // With A's breaker open, queries still succeed (and never try A
        // on the preferred pass).
        assert_eq!(router.handle_line(line).to_string(), baseline);

        drop(router);
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn router_rejects_mismatched_replica_maps() {
        let emb = table(6, 2);
        let dir = std::env::temp_dir().join("ehna_router_test_badmap");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = plan_shards(&emb, None, 2, &dir).unwrap();
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(Router::new(
            manifest.clone(),
            vec![vec![addr]],
            RequestLimits::default(),
            RouterConfig::default()
        )
        .is_err());
        assert!(Router::new(
            manifest,
            vec![vec![addr], vec![]],
            RequestLimits::default(),
            RouterConfig::default()
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
