//! Fault injection for the cluster tier, over real sockets:
//!
//! * kill one replica of a 2-replica shard while 16 clients hammer the
//!   router — every response stays well-formed JSON, and when the
//!   replica restarts on the same address the health probes take it
//!   back into rotation;
//! * a replica that accepts connections but never answers gets circuit-
//!   broken while queries keep flowing through its healthy peer;
//! * that same tar-pit shape cannot delay a restarted peer's recovery:
//!   probes fan out with their own short timeout, so recovery lands
//!   within a couple of probe intervals;
//! * a rolling reload under load hot-swaps every shard's snapshot
//!   without a malformed response, invalidates the router's
//!   version-keyed answer cache by construction, and post-reload
//!   answers match a standalone oracle over the new table.
//!
//! CI runs this suite as the fault gate (scripts/ci.sh).

use ehna_cluster::{plan_shards, Router, RouterConfig, ShardConfig, ShardServer};
use ehna_serve::{
    handle_line, query_lines, query_lines_timeout, BruteForceIndex, EmbeddingStore, EngineConfig,
    Json, KnnIndex, QueryEngine, Reloader, RequestLimits, Server, ServerConfig,
};
use ehna_tgraph::NodeEmbeddings;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn table(n: usize, dim: usize, salt: u32) -> NodeEmbeddings {
    let data: Vec<f32> = (0..n * dim).map(|i| ((i as u32 * 7 + salt * 13) % 5) as f32).collect();
    NodeEmbeddings::from_vec(dim, data)
}

fn engine_for(snap: &Path, names: &Path) -> Arc<QueryEngine> {
    let store = Arc::new(
        EmbeddingStore::open(snap.to_str().unwrap(), Some(names.to_str().unwrap())).unwrap(),
    );
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

/// A reloader that re-opens the same shard files (the `ehna serve`
/// behavior: rewrite on disk, then ask for a hot swap).
fn reloader_for(snap: &Path, names: &Path) -> Reloader {
    let snap = snap.to_str().unwrap().to_string();
    let names = names.to_str().unwrap().to_string();
    Arc::new(move || {
        let store = Arc::new(EmbeddingStore::open(snap.as_str(), Some(names.as_str()))?);
        let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
        Ok((store, index))
    })
}

/// Bind a shard replica, retrying for a while when the address is still
/// settling after a previous listener died there.
fn bind_replica(
    addr: &str,
    engine: Arc<QueryEngine>,
    shard_id: u32,
    with_reloader: Option<Reloader>,
) -> ShardServer {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match ShardServer::bind(
            addr,
            Arc::clone(&engine),
            RequestLimits::default(),
            with_reloader.clone(),
            ShardConfig { shard_id, ..Default::default() },
        ) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("cannot rebind replica on {addr}: {e}"),
        }
    }
}

/// Spawn `clients` threads hammering `addr` with small knn batches until
/// `stop` flips. Returns (total responses, malformed responses, ok:false
/// responses) counters shared with the threads.
struct Load {
    stop: Arc<AtomicBool>,
    total: Arc<AtomicUsize>,
    malformed: Arc<AtomicUsize>,
    not_ok: Arc<AtomicUsize>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

fn start_load(addr: SocketAddr, clients: usize) -> Load {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicUsize::new(0));
    let malformed = Arc::new(AtomicUsize::new(0));
    let not_ok = Arc::new(AtomicUsize::new(0));
    let threads = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let malformed = Arc::clone(&malformed);
            let not_ok = Arc::clone(&not_ok);
            std::thread::spawn(move || {
                let reqs = vec![
                    format!(r#"{{"op":"knn","node":"{}","k":3}}"#, c % 20),
                    r#"{"op":"ping"}"#.to_string(),
                ];
                while !stop.load(Ordering::Relaxed) {
                    // Connection-level failures (e.g. the router's
                    // admission cap under 16 clients on 1 CPU) are not
                    // responses; only delivered lines are judged.
                    let Ok(lines) = query_lines_timeout(addr, &reqs, Duration::from_secs(10))
                    else {
                        continue;
                    };
                    for line in lines {
                        total.fetch_add(1, Ordering::Relaxed);
                        match Json::parse(&line) {
                            Ok(doc) => match doc.get("ok") {
                                Some(&Json::Bool(true)) => {}
                                Some(&Json::Bool(false)) => {
                                    not_ok.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    malformed.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                            Err(_) => {
                                malformed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    Load { stop, total, malformed, not_ok, threads }
}

impl Load {
    fn finish(self) -> (usize, usize, usize) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            t.join().unwrap();
        }
        (
            self.total.load(Ordering::Relaxed),
            self.malformed.load(Ordering::Relaxed),
            self.not_ok.load(Ordering::Relaxed),
        )
    }
}

/// Poll `f` until it returns true or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut f: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn replica_kill_under_load_recovers_on_restart() {
    const N: usize = 40;
    let dir = std::env::temp_dir().join("ehna_cluster_fault_kill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, 4, 0);
    let manifest = plan_shards(&emb, None, 2, &dir).unwrap();

    // Shard 0 runs two replicas (A, B); shard 1 runs one.
    let shard0_snap = dir.join(&manifest.shards[0].snapshot);
    let shard0_names = dir.join(&manifest.shards[0].names);
    let replica_a = ShardServer::bind(
        "127.0.0.1:0",
        engine_for(&shard0_snap, &shard0_names),
        RequestLimits::default(),
        None,
        ShardConfig::default(),
    )
    .unwrap();
    let addr_a = replica_a.local_addr().unwrap();
    let handle_a = replica_a.spawn().unwrap();
    let replica_b = ShardServer::bind(
        "127.0.0.1:0",
        engine_for(&shard0_snap, &shard0_names),
        RequestLimits::default(),
        None,
        ShardConfig::default(),
    )
    .unwrap();
    let addr_b = replica_b.local_addr().unwrap();
    let handle_b = replica_b.spawn().unwrap();
    let shard1 = ShardServer::bind(
        "127.0.0.1:0",
        engine_for(&dir.join(&manifest.shards[1].snapshot), &dir.join(&manifest.shards[1].names)),
        RequestLimits::default(),
        None,
        ShardConfig { shard_id: 1, ..Default::default() },
    )
    .unwrap();
    let addr_s1 = shard1.local_addr().unwrap();
    let handle_s1 = shard1.spawn().unwrap();

    let router = Arc::new(
        Router::new(
            manifest,
            vec![vec![addr_a, addr_b], vec![addr_s1]],
            RequestLimits::default(),
            RouterConfig {
                probe_interval: Duration::from_millis(100),
                breaker_threshold: 2,
                shard_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let front =
        Server::bind_handler("127.0.0.1:0", Arc::clone(&router) as _, ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();

    // 16 clients hammer the router; mid-load, replica A dies.
    let load = start_load(front.addr(), 16);
    std::thread::sleep(Duration::from_millis(300));
    handle_a.shutdown();
    std::thread::sleep(Duration::from_millis(700));

    // The router must notice A is gone while B keeps shard 0 alive.
    wait_for("replica A marked unhealthy", Duration::from_secs(20), || {
        !router.replica_status()[0][0].healthy
    });
    assert!(router.replica_status()[0][1].healthy, "replica B must stay healthy");

    let (total, malformed, _not_ok) = load.finish();
    assert!(total > 0, "load generator produced no traffic");
    assert_eq!(malformed, 0, "malformed responses under replica kill: {malformed}/{total}");

    // A deterministic query still works with A down.
    let lines =
        query_lines(front.addr(), &[r#"{"op":"knn","node":"5","k":4}"#.to_string()]).unwrap();
    let doc = Json::parse(&lines[0]).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "query with A down: {}", lines[0]);

    // Restart A on the same address; probes must bring it back.
    let restarted =
        bind_replica(&addr_a.to_string(), engine_for(&shard0_snap, &shard0_names), 0, None);
    let handle_a2 = restarted.spawn().unwrap();
    wait_for("replica A probed back to healthy", Duration::from_secs(30), || {
        let s = &router.replica_status()[0][0];
        s.healthy && !s.breaker_open
    });
    let lines =
        query_lines(front.addr(), &[r#"{"op":"knn","node":"5","k":4}"#.to_string()]).unwrap();
    assert_eq!(
        Json::parse(&lines[0]).unwrap().get("ok"),
        Some(&Json::Bool(true)),
        "query after A's recovery: {}",
        lines[0]
    );

    front.shutdown();
    handle_a2.shutdown();
    handle_b.shutdown();
    handle_s1.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_replica_is_circuit_broken_while_peer_serves() {
    const N: usize = 24;
    let dir = std::env::temp_dir().join("ehna_cluster_fault_slow");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, 4, 1);
    let manifest = plan_shards(&emb, None, 1, &dir).unwrap();

    // A tarpit: accepts EHNP connections, reads forever, never answers.
    let tarpit = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let tarpit_addr = tarpit.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in tarpit.incoming() {
            let Ok(conn) = conn else { return };
            std::thread::spawn(move || {
                let mut conn = conn;
                let mut sink = [0u8; 4096];
                while let Ok(n) = std::io::Read::read(&mut conn, &mut sink) {
                    if n == 0 {
                        return;
                    }
                }
            });
        }
    });

    let snap = dir.join(&manifest.shards[0].snapshot);
    let names = dir.join(&manifest.shards[0].names);
    let healthy = ShardServer::bind(
        "127.0.0.1:0",
        engine_for(&snap, &names),
        RequestLimits::default(),
        None,
        ShardConfig::default(),
    )
    .unwrap();
    let healthy_addr = healthy.local_addr().unwrap();
    let healthy_handle = healthy.spawn().unwrap();

    // The tarpit is listed first, so round-robin visits it early.
    let router = Arc::new(
        Router::new(
            manifest,
            vec![vec![tarpit_addr, healthy_addr]],
            RequestLimits::default(),
            RouterConfig {
                shard_timeout: Duration::from_millis(300),
                probe_interval: Duration::from_millis(100),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let front =
        Server::bind_handler("127.0.0.1:0", Arc::clone(&router) as _, ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();

    // Queries keep succeeding (failover eats the tarpit's timeout), and
    // the tarpit ends up circuit-broken.
    let load = start_load(front.addr(), 4);
    wait_for("tarpit circuit-broken", Duration::from_secs(30), || {
        let s = &router.replica_status()[0][0];
        !s.healthy && s.breaker_open
    });
    let (total, malformed, _) = load.finish();
    assert!(total > 0);
    assert_eq!(malformed, 0, "malformed responses with a tarpit replica: {malformed}/{total}");
    let status = router.replica_status();
    assert!(status[0][1].healthy, "healthy peer must stay in rotation");

    let lines =
        query_lines(front.addr(), &[r#"{"op":"knn","node":"3","k":5}"#.to_string()]).unwrap();
    assert_eq!(
        Json::parse(&lines[0]).unwrap().get("ok"),
        Some(&Json::Bool(true)),
        "query with tarpit broken: {}",
        lines[0]
    );

    front.shutdown();
    healthy_handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tarpit_replica_does_not_delay_peer_recovery() {
    // The probe loop fans out with its own short timeout. A tar-pit
    // replica (accepts, never answers) eats `probe_timeout` per round —
    // but concurrently, so a killed-and-restarted peer on the same
    // shard must be probed back to healthy within a couple of probe
    // intervals, not after the tar-pit's timeout serializes in front of
    // it. With `shard_timeout` at 5s, a probe round that budgeted the
    // shard timeout per replica would blow the bound checked here.
    const N: usize = 20;
    let dir = std::env::temp_dir().join("ehna_cluster_fault_tarpit_recovery");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, 4, 2);
    let manifest = plan_shards(&emb, None, 1, &dir).unwrap();

    let tarpit = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let tarpit_addr = tarpit.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in tarpit.incoming() {
            let Ok(conn) = conn else { return };
            std::thread::spawn(move || {
                let mut conn = conn;
                let mut sink = [0u8; 4096];
                while let Ok(n) = std::io::Read::read(&mut conn, &mut sink) {
                    if n == 0 {
                        return;
                    }
                }
            });
        }
    });

    let snap = dir.join(&manifest.shards[0].snapshot);
    let names = dir.join(&manifest.shards[0].names);
    let peer = ShardServer::bind(
        "127.0.0.1:0",
        engine_for(&snap, &names),
        RequestLimits::default(),
        None,
        ShardConfig::default(),
    )
    .unwrap();
    let peer_addr = peer.local_addr().unwrap();
    let peer_handle = peer.spawn().unwrap();

    let probe_interval = Duration::from_millis(200);
    let router = Arc::new(
        Router::new(
            manifest,
            vec![vec![tarpit_addr, peer_addr]],
            RequestLimits::default(),
            RouterConfig {
                probe_interval,
                probe_timeout: Duration::from_millis(250),
                shard_timeout: Duration::from_secs(5),
                connect_timeout: Duration::from_millis(500),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .unwrap(),
    );

    // Kill the healthy peer and let the probes notice.
    peer_handle.shutdown();
    wait_for("dead peer marked unhealthy", Duration::from_secs(20), || {
        !router.replica_status()[0][1].healthy
    });

    // Restart it on the same address. Recovery must take ~2 probe
    // intervals, not a tar-pit-serialized eternity. The bound is padded
    // for CI noise but sits far below one 5s serialized probe round.
    let restarted = bind_replica(&peer_addr.to_string(), engine_for(&snap, &names), 0, None);
    let restarted_handle = restarted.spawn().unwrap();
    let began = Instant::now();
    wait_for("restarted peer probed back", Duration::from_secs(20), || {
        router.replica_status()[0][1].healthy
    });
    let took = began.elapsed();
    assert!(
        took < probe_interval * 2 + Duration::from_secs(2),
        "recovery took {took:?}; the tar-pit is serializing the probe loop"
    );
    // The restarted peer's snapshot version rode back on its Pong.
    assert_eq!(router.replica_status()[0][1].snapshot_version, 1);

    restarted_handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rolling_reload_under_load_swaps_every_shard() {
    const N: usize = 30;
    const DIM: usize = 4;
    let dir = std::env::temp_dir().join("ehna_cluster_fault_reload");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let before = table(N, DIM, 0);
    let manifest = plan_shards(&before, None, 2, &dir).unwrap();

    let mut handles = Vec::new();
    let mut replicas = Vec::new();
    for (i, entry) in manifest.shards.iter().enumerate() {
        let snap = dir.join(&entry.snapshot);
        let names = dir.join(&entry.names);
        let shard = ShardServer::bind(
            "127.0.0.1:0",
            engine_for(&snap, &names),
            RequestLimits::default(),
            Some(reloader_for(&snap, &names)),
            ShardConfig { shard_id: i as u32, ..Default::default() },
        )
        .unwrap();
        replicas.push(vec![shard.local_addr().unwrap()]);
        handles.push(shard.spawn().unwrap());
    }
    let router = Arc::new(
        Router::new(
            manifest,
            replicas,
            RequestLimits::default(),
            RouterConfig { probe_interval: Duration::ZERO, ..Default::default() },
        )
        .unwrap(),
    );
    let front =
        Server::bind_handler("127.0.0.1:0", Arc::clone(&router) as _, ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();

    let load = start_load(front.addr(), 4);
    std::thread::sleep(Duration::from_millis(200));

    // Warm the router's answer cache against the OLD table: a repeat of
    // the same node-keyed query must come back `"cached":true`.
    let probe_req = r#"{"op":"knn","node":"4","k":6}"#.to_string();
    let cold =
        Json::parse(&query_lines(front.addr(), std::slice::from_ref(&probe_req)).unwrap()[0])
            .unwrap();
    assert_eq!(cold.get("cached"), Some(&Json::Bool(false)), "cold: {cold}");
    let warm =
        Json::parse(&query_lines(front.addr(), std::slice::from_ref(&probe_req)).unwrap()[0])
            .unwrap();
    assert_eq!(warm.get("cached"), Some(&Json::Bool(true)), "warm: {warm}");
    assert_eq!(
        warm.get("neighbors").map(Json::to_string),
        cold.get("neighbors").map(Json::to_string),
        "cache changed the answer"
    );

    // Rewrite every shard snapshot (same shape, new values), then roll.
    let after = table(N, DIM, 9);
    plan_shards(&after, None, 2, &dir).unwrap();
    let lines = query_lines(front.addr(), &[r#"{"op":"reload"}"#.to_string()]).unwrap();
    let doc = Json::parse(&lines[0]).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "rolling reload: {}", lines[0]);
    let rolled = doc.get("rolled").and_then(Json::as_arr).expect("rolled array");
    assert_eq!(rolled.len(), 2, "one entry per shard: {}", lines[0]);
    for shard_entry in rolled {
        let replicas = shard_entry.get("replicas").and_then(Json::as_arr).expect("replicas");
        assert_eq!(replicas.len(), 1, "one replica per shard here: {}", lines[0]);
        for replica in replicas {
            assert_eq!(replica.get("ok"), Some(&Json::Bool(true)), "roll: {}", lines[0]);
            assert_eq!(replica.get("version").and_then(Json::as_f64), Some(2.0));
        }
    }

    let (total, malformed, _) = load.finish();
    assert!(total > 0);
    assert_eq!(malformed, 0, "malformed responses during rolling reload: {malformed}/{total}");

    // Post-reload answers must match a standalone oracle over the NEW
    // table, proving the swap actually landed on every shard.
    let oracle_store = {
        let snap = dir.join("oracle.bin");
        after.save_path(&snap).unwrap();
        Arc::new(EmbeddingStore::open(snap.to_str().unwrap(), None).unwrap())
    };
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&oracle_store)));
    let oracle = QueryEngine::new(
        oracle_store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    );
    let limits = RequestLimits::default();
    for req in [r#"{"op":"knn","node":"4","k":6}"#, r#"{"op":"knn","node":"29","k":3}"#] {
        let want = handle_line(&oracle, &limits, req).to_string();
        let got = query_lines(front.addr(), &[req.to_string()]).unwrap().remove(0);
        // Byte-identical to a cache-cold oracle: the reload bumped every
        // replica's snapshot version, so the warm pre-reload entry is
        // unreachable by construction — `"cached":false`, new answer.
        assert_eq!(want, got, "post-reload divergence on {req}");
    }
    // And the cache works again under the new version vector.
    let rewarm = Json::parse(&query_lines(front.addr(), &[probe_req]).unwrap()[0]).unwrap();
    assert_eq!(rewarm.get("cached"), Some(&Json::Bool(true)), "re-warm: {rewarm}");

    front.shutdown();
    for h in handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
