//! The cluster's core guarantee, checked end-to-end over real sockets:
//! a router fronting N shards answers the JSON line protocol
//! **byte-identically** to a standalone server over the unsplit table —
//! same neighbor ids, same ordering (ties broken by global node id),
//! same error strings — for N ∈ {1, 2, 4}, including `batch` envelopes.
//!
//! CI runs this suite as the router gate (scripts/ci.sh).

use ehna_cluster::{plan_shards, Router, RouterConfig, ShardConfig, ShardServer};
use ehna_serve::{
    query_lines, BruteForceIndex, EmbeddingStore, EngineConfig, KnnIndex, QueryEngine,
    RequestLimits, Server, ServerConfig,
};
use ehna_tgraph::{NameMap, NodeEmbeddings};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A tie-heavy table: values cycle through 5 levels so many rows are
/// equidistant and the (dist, id) tie-break actually decides orderings.
fn table(n: usize, dim: usize) -> NodeEmbeddings {
    let data: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 5) as f32).collect();
    NodeEmbeddings::from_vec(dim, data)
}

fn names(n: usize) -> NameMap {
    let mut map = NameMap::new();
    for i in 0..n {
        map.intern(&format!("node{i}"));
    }
    map
}

/// Write the unsplit snapshot + names under `dir`, returning the paths.
fn write_full(dir: &Path, emb: &NodeEmbeddings, n: usize) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let snap = dir.join("full.bin");
    emb.save_path(&snap).unwrap();
    let names_path = dir.join("full.names");
    let lines: Vec<String> = (0..n).map(|i| format!("node{i}")).collect();
    std::fs::write(&names_path, lines.join("\n") + "\n").unwrap();
    (snap, names_path)
}

fn engine_for(snap: &Path, names: &Path) -> Arc<QueryEngine> {
    let store = Arc::new(
        EmbeddingStore::open(snap.to_str().unwrap(), Some(names.to_str().unwrap())).unwrap(),
    );
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    // cache 0: a cache hit flips `"cached":true` in the response, which
    // would break byte-level comparison on repeated queries.
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ))
}

/// Everything a running cluster needs torn down at the end.
struct LiveCluster {
    router: ehna_serve::ServerHandle,
    shards: Vec<ehna_cluster::ShardHandle>,
}

impl LiveCluster {
    fn shutdown(self) {
        self.router.shutdown();
        for s in self.shards {
            s.shutdown();
        }
    }
}

/// Shard the table into `dir`, serve every shard over EHNP, and front
/// them with a router speaking JSON on an ephemeral port.
fn start_cluster(
    dir: &Path,
    emb: &NodeEmbeddings,
    name_map: &NameMap,
    n_shards: u32,
) -> LiveCluster {
    std::fs::create_dir_all(dir).unwrap();
    let manifest = plan_shards(emb, Some(name_map), n_shards, dir).unwrap();
    let mut shard_handles = Vec::new();
    let mut replica_addrs: Vec<Vec<SocketAddr>> = Vec::new();
    for (i, entry) in manifest.shards.iter().enumerate() {
        let engine = engine_for(&dir.join(&entry.snapshot), &dir.join(&entry.names));
        let shard = ShardServer::bind(
            "127.0.0.1:0",
            engine,
            RequestLimits::default(),
            None,
            ShardConfig { shard_id: i as u32, ..Default::default() },
        )
        .unwrap();
        replica_addrs.push(vec![shard.local_addr().unwrap()]);
        shard_handles.push(shard.spawn().unwrap());
    }
    let router = Router::new(
        manifest,
        replica_addrs,
        RequestLimits::default(),
        RouterConfig { probe_interval: Duration::ZERO, ..Default::default() },
    )
    .unwrap();
    let server =
        Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
            .unwrap();
    LiveCluster { router: server.spawn().unwrap(), shards: shard_handles }
}

/// The request battery: happy paths, tie-heavy top-k, numeric and named
/// keys, scores, batches, and the full error surface. Every response
/// must match byte-for-byte.
fn battery(n: usize) -> Vec<String> {
    vec![
        r#"{"op":"ping"}"#.to_string(),
        r#"{"op":"knn","node":"node3","k":1}"#.to_string(),
        r#"{"op":"knn","node":"node3","k":5}"#.to_string(),
        format!(r#"{{"op":"knn","node":"node0","k":{}}}"#, n - 1),
        r#"{"op":"knn","node":"7","k":4}"#.to_string(),
        r#"{"op":"knn","node":"node11"}"#.to_string(),
        r#"{"op":"knn","vector":[1,0,2,4,0,3,1,2],"k":6}"#.to_string(),
        r#"{"op":"score","pairs":[["node1","node2"],["3","node4"],["node5","node5"]]}"#
            .to_string(),
        r#"{"op":"batch","requests":[{"op":"knn","node":"node2","k":3},{"op":"ping"},{"op":"score","pairs":[["0","1"]]}]}"#
            .to_string(),
        r#"{"op":"batch","requests":[{"op":"reload"},{"op":"knn","node":"ghost","k":2},{"op":"knn","node":"node1","k":2}]}"#
            .to_string(),
        // Error surface: identical strings required.
        r#"{"op":"knn","node":"ghost","k":3}"#.to_string(),
        r#"{"op":"knn","node":"node1","k":0}"#.to_string(),
        r#"{"op":"knn","node":"node1","k":999999}"#.to_string(),
        r#"{"op":"knn","k":3}"#.to_string(),
        r#"{"op":"score","pairs":[["node1","ghost"]]}"#.to_string(),
        r#"{"op":"frobnicate"}"#.to_string(),
        r#"{"nop":true}"#.to_string(),
        "not json at all".to_string(),
        r#"{"op":"batch","requests":"nope"}"#.to_string(),
    ]
}

#[test]
fn sharded_answers_are_byte_identical_to_standalone() {
    const N: usize = 60;
    const DIM: usize = 8;
    let dir = std::env::temp_dir().join("ehna_router_equivalence");
    let _ = std::fs::remove_dir_all(&dir);
    let emb = table(N, DIM);
    let name_map = names(N);
    let (snap, names_path) = write_full(&dir, &emb, N);

    // Oracle: a standalone brute-force server over the unsplit table.
    let standalone =
        Server::bind_with("127.0.0.1:0", engine_for(&snap, &names_path), ServerConfig::default())
            .unwrap();
    let standalone = standalone.spawn().unwrap();
    let requests = battery(N);
    let expected = query_lines(standalone.addr(), &requests).unwrap();

    for n_shards in [1u32, 2, 4] {
        let shard_dir = dir.join(format!("shards_{n_shards}"));
        let cluster = start_cluster(&shard_dir, &emb, &name_map, n_shards);
        let got = query_lines(cluster.router.addr(), &requests).unwrap();
        for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(
                want, have,
                "response {i} diverged at {n_shards} shards\nrequest: {}",
                requests[i]
            );
        }
        assert_eq!(expected.len(), got.len());
        cluster.shutdown();
    }
    standalone.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_answers_match_on_an_anonymous_table() {
    // No name map: every key is a decimal global id, exercising the
    // owner-arithmetic GetRow path rather than scatter-resolve hits.
    const N: usize = 33;
    const DIM: usize = 4;
    let dir = std::env::temp_dir().join("ehna_router_equivalence_anon");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, DIM);
    let snap = dir.join("full.bin");
    emb.save_path(&snap).unwrap();

    let store = Arc::new(EmbeddingStore::open(snap.to_str().unwrap(), None).unwrap());
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    let engine = Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ));
    let standalone =
        Server::bind_with("127.0.0.1:0", engine, ServerConfig::default()).unwrap().spawn().unwrap();

    let requests = vec![
        r#"{"op":"knn","node":"0","k":3}"#.to_string(),
        r#"{"op":"knn","node":"32","k":7}"#.to_string(),
        r#"{"op":"knn","node":"33","k":2}"#.to_string(),
        r#"{"op":"score","pairs":[["0","32"],["5","5"]]}"#.to_string(),
        r#"{"op":"batch","requests":[{"op":"knn","node":"16","k":4}]}"#.to_string(),
    ];
    let expected = query_lines(standalone.addr(), &requests).unwrap();

    for n_shards in [2u32, 4] {
        let shard_dir = dir.join(format!("shards_{n_shards}"));
        std::fs::create_dir_all(&shard_dir).unwrap();
        let manifest = plan_shards(&emb, None, n_shards, &shard_dir).unwrap();
        let mut shard_handles = Vec::new();
        let mut replicas = Vec::new();
        for (i, entry) in manifest.shards.iter().enumerate() {
            let engine =
                engine_for(&shard_dir.join(&entry.snapshot), &shard_dir.join(&entry.names));
            let shard = ShardServer::bind(
                "127.0.0.1:0",
                engine,
                RequestLimits::default(),
                None,
                ShardConfig { shard_id: i as u32, ..Default::default() },
            )
            .unwrap();
            replicas.push(vec![shard.local_addr().unwrap()]);
            shard_handles.push(shard.spawn().unwrap());
        }
        let router = Router::new(
            manifest,
            replicas,
            RequestLimits::default(),
            RouterConfig { probe_interval: Duration::ZERO, ..Default::default() },
        )
        .unwrap();
        let handle =
            Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
                .unwrap()
                .spawn()
                .unwrap();
        let got = query_lines(handle.addr(), &requests).unwrap();
        assert_eq!(expected, got, "anonymous-table divergence at {n_shards} shards");
        handle.shutdown();
        for s in shard_handles {
            s.shutdown();
        }
    }
    standalone.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
