//! The cluster's core guarantee, checked end-to-end over real sockets:
//! a router fronting N shards answers the JSON line protocol
//! **byte-identically** to a standalone server over the unsplit table —
//! same neighbor ids, same ordering (ties broken by global node id),
//! same error strings, same `cached` flags — for N ∈ {1, 2, 4},
//! including `batch` envelopes, with the answer cache both enabled and
//! disabled, and down to degenerate single-node and empty tables.
//!
//! CI runs this suite as the router gate (scripts/ci.sh).

use ehna_cluster::{plan_shards, Router, RouterConfig, ShardConfig, ShardServer};
use ehna_serve::{
    query_lines, BruteForceIndex, EmbeddingStore, EngineConfig, IvfConfig, IvfIndex, Json,
    KnnIndex, QueryEngine, RequestLimits, Server, ServerConfig,
};
use ehna_tgraph::{NameMap, NodeEmbeddings};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A tie-heavy table: values cycle through 5 levels so many rows are
/// equidistant and the (dist, id) tie-break actually decides orderings.
fn table(n: usize, dim: usize) -> NodeEmbeddings {
    let data: Vec<f32> = (0..n * dim).map(|i| ((i * 7) % 5) as f32).collect();
    NodeEmbeddings::from_vec(dim, data)
}

fn names(n: usize) -> NameMap {
    let mut map = NameMap::new();
    for i in 0..n {
        map.intern(&format!("node{i}"));
    }
    map
}

/// Write the unsplit snapshot + names under `dir`, returning the paths.
fn write_full(dir: &Path, emb: &NodeEmbeddings, n: usize) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let snap = dir.join("full.bin");
    emb.save_path(&snap).unwrap();
    let names_path = dir.join("full.names");
    let lines: Vec<String> = (0..n).map(|i| format!("node{i}")).collect();
    std::fs::write(&names_path, lines.join("\n") + "\n").unwrap();
    (snap, names_path)
}

fn engine_for(snap: &Path, names: Option<&Path>, cache_capacity: usize) -> Arc<QueryEngine> {
    let store = Arc::new(
        EmbeddingStore::open(snap.to_str().unwrap(), names.map(|p| p.to_str().unwrap())).unwrap(),
    );
    let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
    // The standalone oracle's cache capacity must mirror the router's: a
    // hit flips `"cached":true` in the response, so the *hit patterns*
    // have to line up for byte-level comparison — which is itself part
    // of the guarantee under test.
    Arc::new(QueryEngine::new(
        store,
        index,
        EngineConfig { workers: 1, cache_capacity, ..Default::default() },
    ))
}

/// Everything a running cluster needs torn down at the end.
struct LiveCluster {
    router: ehna_serve::ServerHandle,
    shards: Vec<ehna_cluster::ShardHandle>,
}

impl LiveCluster {
    fn shutdown(self) {
        self.router.shutdown();
        for s in self.shards {
            s.shutdown();
        }
    }
}

/// Shard the table into `dir`, serve every shard over EHNP, and front
/// them with a router speaking JSON on an ephemeral port.
fn start_cluster(
    dir: &Path,
    emb: &NodeEmbeddings,
    name_map: Option<&NameMap>,
    n_shards: u32,
    cache_capacity: usize,
) -> LiveCluster {
    std::fs::create_dir_all(dir).unwrap();
    let manifest = plan_shards(emb, name_map, n_shards, dir).unwrap();
    let mut shard_handles = Vec::new();
    let mut replica_addrs: Vec<Vec<SocketAddr>> = Vec::new();
    for (i, entry) in manifest.shards.iter().enumerate() {
        // Shard engines never cache: the router sends vector queries,
        // which the engine's hot-node cache does not cover. Caching
        // lives on the router, keyed by the snapshot-version vector.
        let engine = engine_for(&dir.join(&entry.snapshot), Some(&dir.join(&entry.names)), 0);
        let shard = ShardServer::bind(
            "127.0.0.1:0",
            engine,
            RequestLimits::default(),
            None,
            ShardConfig { shard_id: i as u32, ..Default::default() },
        )
        .unwrap();
        replica_addrs.push(vec![shard.local_addr().unwrap()]);
        shard_handles.push(shard.spawn().unwrap());
    }
    let router = Router::new(
        manifest,
        replica_addrs,
        RequestLimits::default(),
        RouterConfig { probe_interval: Duration::ZERO, cache_capacity, ..Default::default() },
    )
    .unwrap();
    let server =
        Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
            .unwrap();
    LiveCluster { router: server.spawn().unwrap(), shards: shard_handles }
}

/// The request battery: happy paths, tie-heavy top-k, numeric and named
/// keys, scores, batches, and the full error surface. Every response
/// must match byte-for-byte.
fn battery(n: usize) -> Vec<String> {
    vec![
        r#"{"op":"ping"}"#.to_string(),
        r#"{"op":"knn","node":"node3","k":1}"#.to_string(),
        r#"{"op":"knn","node":"node3","k":5}"#.to_string(),
        format!(r#"{{"op":"knn","node":"node0","k":{}}}"#, n - 1),
        r#"{"op":"knn","node":"7","k":4}"#.to_string(),
        // Aliased spelling of the line above: a numeric key resolving to
        // the same node must share its cache entry on both sides.
        r#"{"op":"knn","node":7,"k":4}"#.to_string(),
        // Non-canonical decimal spellings of the same id: both sides
        // must *reject* these identically. Accepting them (as
        // `parse::<u32>` would) aliases one row under many keys and
        // splits the answer cache, so canonical-form rejection is part
        // of the equivalence contract.
        r#"{"op":"knn","node":"007","k":4}"#.to_string(),
        r#"{"op":"knn","node":"+7","k":4}"#.to_string(),
        r#"{"op":"knn","node":" 7","k":4}"#.to_string(),
        r#"{"op":"score","pairs":[["007","3"],["+1","2"]]}"#.to_string(),
        r#"{"op":"knn","node":"node11"}"#.to_string(),
        r#"{"op":"knn","vector":[1,0,2,4,0,3,1,2],"k":6}"#.to_string(),
        // Exact repeat of an earlier line: with caches on, both sides
        // must flip to `"cached":true` in lockstep.
        r#"{"op":"knn","node":"node3","k":5}"#.to_string(),
        r#"{"op":"knn","vector":[1,0,2,4,0,3,1,2],"k":6}"#.to_string(),
        r#"{"op":"score","pairs":[["node1","node2"],["3","node4"],["node5","node5"]]}"#
            .to_string(),
        r#"{"op":"batch","requests":[{"op":"knn","node":"node2","k":3},{"op":"ping"},{"op":"score","pairs":[["0","1"]]}]}"#
            .to_string(),
        r#"{"op":"batch","requests":[{"op":"reload"},{"op":"knn","node":"ghost","k":2},{"op":"knn","node":"node1","k":2}]}"#
            .to_string(),
        // Error surface: identical strings required — including
        // shard-side validation (the wrong-dimension vector), which must
        // come back verbatim, not prefixed with a shard id.
        r#"{"op":"knn","vector":[1,2],"k":3}"#.to_string(),
        r#"{"op":"knn","node":"ghost","k":3}"#.to_string(),
        r#"{"op":"knn","node":"node1","k":0}"#.to_string(),
        r#"{"op":"knn","node":"node1","k":999999}"#.to_string(),
        r#"{"op":"knn","k":3}"#.to_string(),
        r#"{"op":"score","pairs":[["node1","ghost"]]}"#.to_string(),
        r#"{"op":"frobnicate"}"#.to_string(),
        r#"{"nop":true}"#.to_string(),
        "not json at all".to_string(),
        r#"{"op":"batch","requests":"nope"}"#.to_string(),
    ]
}

#[test]
fn sharded_answers_are_byte_identical_to_standalone() {
    const N: usize = 60;
    const DIM: usize = 8;
    let dir = std::env::temp_dir().join("ehna_router_equivalence");
    let _ = std::fs::remove_dir_all(&dir);
    let emb = table(N, DIM);
    let name_map = names(N);
    let (snap, names_path) = write_full(&dir, &emb, N);
    let requests = battery(N);

    // Once with the answer cache off and once with it on: the battery
    // repeats lines and aliases keys, so the cache-on run checks that
    // hit patterns (the `cached` flag) line up too, not just answers.
    for cache in [0usize, 256] {
        // Oracle: a standalone brute-force server over the unsplit table.
        let standalone = Server::bind_with(
            "127.0.0.1:0",
            engine_for(&snap, Some(&names_path), cache),
            ServerConfig::default(),
        )
        .unwrap();
        let standalone = standalone.spawn().unwrap();
        let expected = query_lines(standalone.addr(), &requests).unwrap();

        for n_shards in [1u32, 2, 4] {
            let shard_dir = dir.join(format!("shards_{n_shards}_c{cache}"));
            let cluster = start_cluster(&shard_dir, &emb, Some(&name_map), n_shards, cache);
            let got = query_lines(cluster.router.addr(), &requests).unwrap();
            for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    want, have,
                    "response {i} diverged at {n_shards} shards (cache {cache})\nrequest: {}",
                    requests[i]
                );
            }
            assert_eq!(expected.len(), got.len());
            cluster.shutdown();
        }
        standalone.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_answers_match_on_an_anonymous_table() {
    // No name map: every key is a decimal global id, exercising the
    // owner-arithmetic GetRow path rather than scatter-resolve hits.
    const N: usize = 33;
    const DIM: usize = 4;
    let dir = std::env::temp_dir().join("ehna_router_equivalence_anon");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, DIM);
    let snap = dir.join("full.bin");
    emb.save_path(&snap).unwrap();

    let standalone =
        Server::bind_with("127.0.0.1:0", engine_for(&snap, None, 0), ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();

    let requests = vec![
        r#"{"op":"knn","node":"0","k":3}"#.to_string(),
        r#"{"op":"knn","node":"32","k":7}"#.to_string(),
        r#"{"op":"knn","node":"33","k":2}"#.to_string(),
        // Non-canonical decimals on the anonymous path: this is where a
        // lax `parse::<u32>` fallback would silently accept them, so
        // the identical-rejection check matters most here.
        r#"{"op":"knn","node":"007","k":3}"#.to_string(),
        r#"{"op":"knn","node":"+3","k":3}"#.to_string(),
        r#"{"op":"score","pairs":[["0","32"],["5","5"]]}"#.to_string(),
        r#"{"op":"batch","requests":[{"op":"knn","node":"16","k":4}]}"#.to_string(),
    ];
    let expected = query_lines(standalone.addr(), &requests).unwrap();

    for n_shards in [2u32, 4] {
        let shard_dir = dir.join(format!("shards_{n_shards}"));
        let cluster = start_cluster(&shard_dir, &emb, None, n_shards, 0);
        let got = query_lines(cluster.router.addr(), &requests).unwrap();
        assert_eq!(expected, got, "anonymous-table divergence at {n_shards} shards");
        cluster.shutdown();
    }
    standalone.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degenerate_tables_match_standalone() {
    // The hard edges: an empty table (every op must reject identically,
    // *before* default-k is derived) and a single-node table (whose only
    // node-keyed answer is an empty neighbor list after self-exclusion).
    // Sharding either table leaves most shards empty, so this also pins
    // the router's merge over zero-row shards.
    const DIM: usize = 3;
    let dir = std::env::temp_dir().join("ehna_router_equivalence_degenerate");
    let _ = std::fs::remove_dir_all(&dir);
    for n in [0usize, 1] {
        let sub = dir.join(format!("n{n}"));
        std::fs::create_dir_all(&sub).unwrap();
        let emb = table(n, DIM);
        let snap = sub.join("full.bin");
        emb.save_path(&snap).unwrap();
        let standalone =
            Server::bind_with("127.0.0.1:0", engine_for(&snap, None, 256), ServerConfig::default())
                .unwrap()
                .spawn()
                .unwrap();
        let requests = vec![
            r#"{"op":"knn","node":"0","k":1}"#.to_string(),
            // Default k: on one node it clamps to 1 (not a rejection);
            // on zero nodes the empty-table rejection fires first.
            r#"{"op":"knn","node":"0"}"#.to_string(),
            r#"{"op":"knn","node":"0"}"#.to_string(),
            r#"{"op":"knn","vector":[1,0,2]}"#.to_string(),
            r#"{"op":"knn","node":"1","k":1}"#.to_string(),
            r#"{"op":"score","pairs":[["0","0"]]}"#.to_string(),
            r#"{"op":"batch","requests":[{"op":"knn","node":"0"},{"op":"ping"}]}"#.to_string(),
        ];
        let expected = query_lines(standalone.addr(), &requests).unwrap();
        for n_shards in [1u32, 2, 4] {
            let shard_dir = sub.join(format!("shards_{n_shards}"));
            let cluster = start_cluster(&shard_dir, &emb, None, n_shards, 256);
            let got = query_lines(cluster.router.addr(), &requests).unwrap();
            for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    want, have,
                    "n={n} response {i} diverged at {n_shards} shards\nrequest: {}",
                    requests[i]
                );
            }
            cluster.shutdown();
        }
        standalone.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_shards_are_byte_identical_to_quantized_standalone() {
    // The quantized analogue of the headline gate: shard snapshots made
    // by `plan_shards_quant` slice code rows verbatim and share the
    // source's codebooks/scales, so a router over quantized shards must
    // answer byte-identically to a standalone server over the unsplit
    // quantized table — per format, including PQ's asymmetric-distance
    // path and the full error surface (non-canonical keys included).
    use ehna_cluster::plan_shards_quant;
    use ehna_tgraph::{QuantFormat, QuantSpec, QuantizedEmbeddings};
    const N: usize = 48;
    const DIM: usize = 8;
    let dir = std::env::temp_dir().join("ehna_router_equivalence_quant");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(N, DIM);
    let name_map = names(N);
    let requests = battery(N);

    for format in [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq] {
        let sub = dir.join(format.label());
        std::fs::create_dir_all(&sub).unwrap();
        let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(format)).unwrap();
        let snap = sub.join("full.ehnq");
        q.save_path(&snap).unwrap();
        let names_path = sub.join("full.names");
        let lines: Vec<String> = (0..N).map(|i| format!("node{i}")).collect();
        std::fs::write(&names_path, lines.join("\n") + "\n").unwrap();

        // Oracle: standalone brute force over the unsplit quantized table.
        let standalone = Server::bind_with(
            "127.0.0.1:0",
            engine_for(&snap, Some(&names_path), 0),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap();
        let expected = query_lines(standalone.addr(), &requests).unwrap();
        standalone.shutdown();

        for n_shards in [2u32, 3] {
            let shard_dir = sub.join(format!("shards_{n_shards}"));
            std::fs::create_dir_all(&shard_dir).unwrap();
            let manifest = plan_shards_quant(&q, Some(&name_map), n_shards, &shard_dir).unwrap();
            let mut shard_handles = Vec::new();
            let mut replicas = Vec::new();
            for (i, entry) in manifest.shards.iter().enumerate() {
                let engine = engine_for(
                    &shard_dir.join(&entry.snapshot),
                    Some(&shard_dir.join(&entry.names)),
                    0,
                );
                let shard = ShardServer::bind(
                    "127.0.0.1:0",
                    engine,
                    RequestLimits::default(),
                    None,
                    ShardConfig { shard_id: i as u32, ..Default::default() },
                )
                .unwrap();
                replicas.push(vec![shard.local_addr().unwrap()]);
                shard_handles.push(shard.spawn().unwrap());
            }
            // Cache off on both sides: quantized caching behavior is
            // already covered by the dense battery's cache-on run.
            let router = Router::new(
                manifest,
                replicas,
                RequestLimits::default(),
                RouterConfig {
                    probe_interval: Duration::ZERO,
                    cache_capacity: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            let handle =
                Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
                    .unwrap()
                    .spawn()
                    .unwrap();
            let got = query_lines(handle.addr(), &requests).unwrap();
            for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    want,
                    have,
                    "{} response {i} diverged at {n_shards} shards\nrequest: {}",
                    format.label(),
                    requests[i]
                );
            }
            assert_eq!(expected.len(), got.len());
            handle.shutdown();
            for s in shard_handles {
                s.shutdown();
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_local_ivf_recall_stays_above_095() {
    // Shards running an approximate IVF index cannot be byte-identical
    // to brute force, so the gate is recall@k against the brute-force
    // oracle, plus structural checks: `explain` must surface each
    // shard's nprobe, and merged answers must stay sorted by
    // (dist, id).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const N: usize = 400;
    const DIM: usize = 8;
    const K: usize = 10;
    let dir = std::env::temp_dir().join("ehna_router_equivalence_ivf");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A clustered table: 8 well-separated centers with small jitter, so
    // IVF's coarse quantizer has real structure to exploit.
    let mut rng = StdRng::seed_from_u64(0xEF7A);
    let mut data = Vec::with_capacity(N * DIM);
    for i in 0..N {
        let c = i % 8;
        for d in 0..DIM {
            let center = if d == c { 10.0 } else { 0.0 };
            data.push(center + rng.gen_range(-0.5..0.5f32));
        }
    }
    let emb = NodeEmbeddings::from_vec(DIM, data);
    let snap = dir.join("full.bin");
    emb.save_path(&snap).unwrap();

    // Brute-force oracle over the unsplit table.
    let standalone =
        Server::bind_with("127.0.0.1:0", engine_for(&snap, None, 0), ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
    let queries: Vec<String> = (0..40)
        .map(|q| format!(r#"{{"op":"knn","node":"{}","k":{K},"explain":true}}"#, q * 9))
        .collect();
    let expected = query_lines(standalone.addr(), &queries).unwrap();
    standalone.shutdown();

    let manifest = plan_shards(&emb, None, 2, &dir).unwrap();
    let mut shard_handles = Vec::new();
    let mut replicas = Vec::new();
    for (i, entry) in manifest.shards.iter().enumerate() {
        let store = Arc::new(
            EmbeddingStore::open(
                dir.join(&entry.snapshot).to_str().unwrap(),
                Some(dir.join(&entry.names).to_str().unwrap()),
            )
            .unwrap(),
        );
        let index: Box<dyn KnnIndex> = Box::new(IvfIndex::build(
            Arc::clone(&store),
            IvfConfig { num_clusters: Some(8), nprobe: 4, ..Default::default() },
        ));
        let engine = Arc::new(QueryEngine::new(
            store,
            index,
            EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
        ));
        let shard = ShardServer::bind(
            "127.0.0.1:0",
            engine,
            RequestLimits::default(),
            None,
            ShardConfig { shard_id: i as u32, ..Default::default() },
        )
        .unwrap();
        replicas.push(vec![shard.local_addr().unwrap()]);
        shard_handles.push(shard.spawn().unwrap());
    }
    let router = Router::new(
        manifest,
        replicas,
        RequestLimits::default(),
        RouterConfig { probe_interval: Duration::ZERO, ..Default::default() },
    )
    .unwrap();
    let handle =
        Server::bind_handler("127.0.0.1:0", Arc::new(router) as _, ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
    let got = query_lines(handle.addr(), &queries).unwrap();

    let ids = |resp: &Json| -> Vec<u32> {
        resp.get("neighbors")
            .and_then(Json::as_arr)
            .expect("neighbors")
            .iter()
            .map(|n| n.get("id").and_then(Json::as_usize).unwrap() as u32)
            .collect()
    };
    let mut hit = 0usize;
    let mut total = 0usize;
    for (want_line, got_line) in expected.iter().zip(&got) {
        let want = Json::parse(want_line).unwrap();
        let have = Json::parse(got_line).unwrap();
        assert_eq!(have.get("ok"), Some(&Json::Bool(true)), "{got_line}");
        let want_ids = ids(&want);
        let got_ids = ids(&have);
        total += want_ids.len();
        hit += got_ids.iter().filter(|id| want_ids.contains(id)).count();
        // Merged approximate answers keep the exact contract's shape:
        // ascending (dist, id), and every shard reports a real nprobe.
        let dists: Vec<f64> = have
            .get("neighbors")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|n| n.get("dist").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "unsorted: {got_line}");
        for shard in have
            .get("explain")
            .and_then(|e| e.get("shards"))
            .and_then(Json::as_arr)
            .expect("explain.shards")
        {
            assert_eq!(
                shard.get("nprobe").and_then(Json::as_usize),
                Some(4),
                "shard nprobe missing: {got_line}"
            );
        }
    }
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.95, "shard-IVF recall@{K} = {recall:.3} < 0.95 ({hit}/{total})");

    handle.shutdown();
    for s in shard_handles {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
