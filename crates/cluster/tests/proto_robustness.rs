//! Property tests for the EHNP v2 frame codec: random messages must
//! survive a round trip bit-exactly, every strict truncation of a valid
//! frame must be rejected (never mis-parsed, never panic), a corrupted
//! byte anywhere in the frame must trip the checksum, and a hostile
//! length prefix must be refused *before* any allocation happens.

use ehna_cluster::proto::{
    decode_frame, encode_frame, read_msg, write_msg, Request, Response, MAX_FRAME_LEN,
};
use ehna_cluster::ProtoError;
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary short strings, including NUL and multi-byte code points —
/// labels and error messages cross the wire verbatim.
fn wire_string() -> impl Strategy<Value = String> {
    vec(0u32..0xD7FF, 0..12).prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

/// Finite f32s (NaN would break the `PartialEq` round-trip oracle, and
/// the protocol never produces NaN distances).
fn rows() -> impl Strategy<Value = Vec<f32>> {
    vec(-1e6f32..1e6f32, 0..24)
}

/// Every [`Request`] variant with arbitrary contents.
fn request() -> impl Strategy<Value = Request> {
    (0u8..6, (0u32..5000, proptest::bool::ANY, rows()), wire_string(), 0u32..100_000).prop_map(
        |(variant, (k, explain, vector), key, local)| match variant {
            0 => Request::Ping,
            1 => Request::Knn { k, explain, vector },
            2 => Request::Resolve { key },
            3 => Request::GetRow { local },
            4 => Request::Stats,
            _ => Request::Reload,
        },
    )
}

/// Every [`Response`] variant with arbitrary contents.
fn response() -> impl Strategy<Value = Response> {
    (
        0u8..7,
        vec((0u32..100_000, -1e9f64..1e9f64, wire_string()), 0..8),
        (proptest::bool::ANY, vec(0u32..64, 0..6), 0u64..1 << 40, 0u32..256),
        (wire_string(), rows(), 0u32..100_000),
        (0u64..1 << 40, 0u64..1 << 40, proptest::bool::ANY),
    )
        .prop_map(
            |(
                variant,
                neighbors,
                (with_info, probed, scanned, nprobe),
                (label, row, local),
                (a, b, with_hit),
            )| {
                match variant {
                    0 => Response::Error(label),
                    1 => Response::Pong { version: a },
                    2 => Response::Knn {
                        neighbors,
                        info: if with_info { Some((probed, scanned, nprobe)) } else { None },
                    },
                    3 => Response::Resolved {
                        hit: if with_hit { Some((local, label, row)) } else { None },
                    },
                    4 => Response::Row { local, label, row },
                    5 => Response::StatsText(label),
                    _ => Response::Reloaded { version: a, nodes: b },
                }
            },
        )
}

proptest! {
    #[test]
    fn requests_round_trip_bit_exactly(req_id in 0u64..u64::MAX, req in request()) {
        let frame = encode_frame(req_id, &req);
        let ((got_id, got), consumed) = decode_frame::<Request>(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(got_id, req_id);
        prop_assert_eq!(got, req);
        prop_assert_eq!(consumed, frame.len(), "decode must consume the whole frame");
    }

    #[test]
    fn responses_round_trip_bit_exactly(req_id in 0u64..u64::MAX, resp in response()) {
        let frame = encode_frame(req_id, &resp);
        let ((got_id, got), consumed) = decode_frame::<Response>(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(got_id, req_id);
        prop_assert_eq!(got, resp);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn every_strict_truncation_is_rejected(req in request()) {
        let frame = encode_frame(7, &req);
        for cut in 0..frame.len() {
            prop_assert!(
                decode_frame::<Request>(&frame[..cut]).is_err(),
                "a {}-byte prefix of a {}-byte frame decoded", cut, frame.len()
            );
        }
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        resp in response(),
        pos_seed in 0usize..1 << 20,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(42, &resp);
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip; // xor with a nonzero byte guarantees a change
        prop_assert!(
            decode_frame::<Response>(&frame).is_err(),
            "flipping byte {} of {} went unnoticed", pos, frame.len()
        );
    }

    #[test]
    fn back_to_back_frames_stream_in_order(reqs in vec((0u64..1 << 40, request()), 1..8)) {
        let mut wire = Vec::new();
        for (id, req) in &reqs {
            write_msg(&mut wire, *id, req)
                .map_err(|e| TestCaseError::fail(format!("write failed: {e}")))?;
        }
        let mut r = Cursor::new(wire);
        for (id, req) in &reqs {
            let (got_id, got) = read_msg::<_, Request>(&mut r)
                .map_err(|e| TestCaseError::fail(format!("read failed: {e}")))?;
            prop_assert_eq!(got_id, *id);
            prop_assert_eq!(&got, req);
        }
    }

    #[test]
    fn oversized_lengths_are_refused_before_allocation(
        over in 1u32..u32::MAX - MAX_FRAME_LEN,
        junk in vec(0u8..=255, 0..16),
    ) {
        // A hostile length prefix with (far) fewer bytes behind it: the
        // cap check must fire on the prefix alone. If the length were
        // trusted, read_msg would try to allocate up to 4 GiB here.
        let mut frame = (MAX_FRAME_LEN + over).to_le_bytes().to_vec();
        frame.extend_from_slice(&junk);
        match decode_frame::<Request>(&frame) {
            Err(ProtoError::Corrupt(msg)) => {
                prop_assert!(msg.contains("exceeds cap"), "unexpected error: {}", msg)
            }
            other => return Err(TestCaseError::fail(format!("expected cap error, got {other:?}"))),
        }
        let mut r = Cursor::new(frame);
        match read_msg::<_, Request>(&mut r) {
            Err(ProtoError::Corrupt(msg)) => {
                prop_assert!(msg.contains("exceeds cap"), "unexpected error: {}", msg)
            }
            other => return Err(TestCaseError::fail(format!("expected cap error, got {other:?}"))),
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics_the_decoder(bytes in vec(0u8..=255, 0..200)) {
        // Decoding random bytes may fail any way it likes, but must
        // return an error rather than panic or loop.
        let _ = decode_frame::<Request>(&bytes);
        let _ = decode_frame::<Response>(&bytes);
    }
}
