//! # ehna-datasets — synthetic temporal-network simulators
//!
//! The EHNA paper evaluates on four proprietary/large downloads (Digg, Yelp,
//! Tmall, DBLP — Table I). Those dumps are not redistributable or available
//! offline, so this crate provides **seeded synthetic simulators** with
//! matched structural shape, per the substitution policy in `DESIGN.md`:
//!
//! * [`social`] — *digg-like*: a friendship network grown by temporal
//!   preferential attachment with triadic closure and recency-biased
//!   re-activation (heavy-tailed degrees, strong temporal locality).
//! * [`bipartite`] — *tmall-like* (purchases, with a "Double 11"-style
//!   sales-burst day) and *yelp-like* (review cadence): user–item bipartite
//!   interaction networks with Zipfian item popularity and power-law user
//!   activity, including repeat interactions.
//! * [`coauthor`] — *dblp-like*: yearly-resolution co-authorship built from
//!   per-paper team cliques with advisor–student growth and strong repeat
//!   collaboration, mirroring the Figure 1/2 motivation of the paper.
//!
//! Every generator is deterministic given a seed, and [`registry`] exposes
//! named presets at three scales so experiments and tests share workloads.
//!
//! ```
//! use ehna_datasets::{generate, Dataset, Scale};
//! let g = generate(Dataset::DblpLike, Scale::Tiny, 42);
//! assert!(g.num_edges() > 500);
//! let again = generate(Dataset::DblpLike, Scale::Tiny, 42);
//! assert_eq!(g.num_edges(), again.num_edges()); // seeded => reproducible
//! ```

pub mod bipartite;
pub mod coauthor;
pub mod community;
pub mod registry;
pub mod social;
mod util;

pub use bipartite::{BipartiteConfig, BipartiteKind};
pub use coauthor::CoauthorConfig;
pub use community::CommunityConfig;
pub use registry::{generate, Dataset, Scale, ALL_DATASETS};
pub use social::SocialConfig;
