//! Named dataset presets shared by examples, tests, and the benchmark
//! harnesses (the four rows of Table I at laptop scales).

use crate::{BipartiteConfig, CoauthorConfig, SocialConfig};
use ehna_tgraph::TemporalGraph;
use std::fmt;
use std::str::FromStr;

/// The four evaluation datasets of the paper, in synthetic form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Social friendship network (paper: Digg, 279 630 nodes / 1.7 M edges).
    DiggLike,
    /// User–business review network (paper: Yelp, 424 450 / 2.6 M).
    YelpLike,
    /// User–item purchase network (paper: Tmall, 577 314 / 4.8 M).
    TmallLike,
    /// Co-authorship network (paper: DBLP, 175 000 / 5.9 M).
    DblpLike,
}

/// All datasets in paper order (Table I).
pub const ALL_DATASETS: [Dataset; 4] =
    [Dataset::DiggLike, Dataset::YelpLike, Dataset::TmallLike, Dataset::DblpLike];

impl Dataset {
    /// Short lowercase name used in CLI flags and result files.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::DiggLike => "digg",
            Dataset::YelpLike => "yelp",
            Dataset::TmallLike => "tmall",
            Dataset::DblpLike => "dblp",
        }
    }

    /// The Table I statistics of the real dataset this preset mirrors:
    /// `(nodes, temporal_edges)`.
    pub fn paper_scale(self) -> (usize, usize) {
        match self {
            Dataset::DiggLike => (279_630, 1_731_653),
            Dataset::YelpLike => (424_450, 2_610_143),
            Dataset::TmallLike => (577_314, 4_807_545),
            Dataset::DblpLike => (175_000, 5_881_024),
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Dataset {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "digg" | "digg-like" | "digglike" => Ok(Dataset::DiggLike),
            "yelp" | "yelp-like" | "yelplike" => Ok(Dataset::YelpLike),
            "tmall" | "tmall-like" | "tmalllike" => Ok(Dataset::TmallLike),
            "dblp" | "dblp-like" | "dblplike" => Ok(Dataset::DblpLike),
            other => Err(format!("unknown dataset '{other}' (digg|yelp|tmall|dblp)")),
        }
    }
}

/// Experiment scale. The paper runs at 10^5–10^6 nodes on a server; these
/// presets keep the same *relative* proportions between the four datasets
/// at laptop sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1–3 k edges: unit/integration tests, doc examples.
    Tiny,
    /// ~10–30 k edges: default for the benchmark harnesses.
    Small,
    /// ~80–200 k edges: closer-to-paper runs (minutes per method).
    Medium,
}

impl Scale {
    /// Multiplier applied to the `Tiny` base sizes.
    fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Medium => 64,
        }
    }
}

impl FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            other => Err(format!("unknown scale '{other}' (tiny|small|medium)")),
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        };
        f.write_str(s)
    }
}

/// Generate a dataset preset. Deterministic in `(dataset, scale, seed)`.
pub fn generate(dataset: Dataset, scale: Scale, seed: u64) -> TemporalGraph {
    let f = scale.factor();
    match dataset {
        Dataset::DiggLike => {
            SocialConfig { num_nodes: 400 * f, edges_per_node: 5, ..Default::default() }
                .generate(seed)
        }
        Dataset::YelpLike => BipartiteConfig::yelp(300 * f, 150 * f, 2_400 * f).generate(seed),
        Dataset::TmallLike => BipartiteConfig::tmall(350 * f, 200 * f, 3_400 * f).generate(seed),
        Dataset::DblpLike => CoauthorConfig {
            num_authors: 250 * f,
            papers_per_100_authors: 10.0,
            ..Default::default()
        }
        .generate(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::GraphStats;

    #[test]
    fn all_presets_generate_at_tiny() {
        for d in ALL_DATASETS {
            let g = generate(d, Scale::Tiny, 1);
            let s = GraphStats::compute(&g);
            assert!(s.num_temporal_edges >= 1_000, "{d}: only {} edges", s.num_temporal_edges);
            assert!(s.num_active_nodes >= 250, "{d}: only {} active", s.num_active_nodes);
        }
    }

    #[test]
    fn scales_are_ordered() {
        let t = generate(Dataset::YelpLike, Scale::Tiny, 1).num_edges();
        let s = generate(Dataset::YelpLike, Scale::Small, 1).num_edges();
        assert!(s > 4 * t, "small ({s}) not much bigger than tiny ({t})");
    }

    #[test]
    fn relative_proportions_match_table1() {
        // In Table I, Tmall has the most temporal edges of the bipartite
        // pair and DBLP has the highest edge/node ratio.
        let yelp = generate(Dataset::YelpLike, Scale::Tiny, 1);
        let tmall = generate(Dataset::TmallLike, Scale::Tiny, 1);
        assert!(tmall.num_edges() > yelp.num_edges());
        let dblp = generate(Dataset::DblpLike, Scale::Tiny, 1);
        let digg = generate(Dataset::DiggLike, Scale::Tiny, 1);
        let ratio = |g: &ehna_tgraph::TemporalGraph| g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio(&dblp) > ratio(&digg), "dblp should be densest per node");
    }

    #[test]
    fn names_roundtrip() {
        for d in ALL_DATASETS {
            assert_eq!(d.name().parse::<Dataset>().unwrap(), d);
        }
        assert!("bogus".parse::<Dataset>().is_err());
        for s in ["tiny", "small", "medium"] {
            assert_eq!(s.parse::<Scale>().unwrap().to_string(), s);
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
