//! *DBLP-like* co-authorship network generator.
//!
//! Reproduces the temporal mechanics the paper's introduction narrates
//! around Figures 1–2: researchers enter the field over the years, publish
//! in small teams, collaborate repeatedly with prior co-authors, and are
//! introduced to new collaborators *through* existing ones (the "node 5
//! enables node 1's collaborations with 6 and 7" story). Edge timestamps
//! carry yearly resolution like the DBLP dump (1955–2017).
//!
//! Mechanics per simulated year:
//! 1. a cohort of new authors joins, each attached to a mentor chosen by
//!    preferential attachment (Ph.D. student → supervisor);
//! 2. papers are formed: a lead author is drawn by activity, then the team
//!    fills with (a) repeat collaborators, (b) collaborators-of-
//!    collaborators (introductions), or (c) random authors;
//! 3. every pair in a team gets a co-authorship edge stamped with the year.

use crate::util::CumulativeSampler;
use ehna_tgraph::{GraphBuilder, TemporalGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`CoauthorConfig::generate`].
#[derive(Debug, Clone)]
pub struct CoauthorConfig {
    /// Total number of authors at the end of the simulation.
    pub num_authors: usize,
    /// Simulated year range (inclusive), e.g. `(1955, 2017)`.
    pub years: (i64, i64),
    /// Papers published per year per 100 active authors.
    pub papers_per_100_authors: f64,
    /// Mean team size (teams are 2..=6, geometric around this mean).
    pub mean_team_size: f64,
    /// Probability a team slot is filled by a repeat collaborator.
    pub repeat_collab: f64,
    /// Probability a team slot is filled through an introduction
    /// (collaborator of a collaborator).
    pub introduction: f64,
}

impl Default for CoauthorConfig {
    fn default() -> Self {
        CoauthorConfig {
            num_authors: 2_000,
            years: (1955, 2017),
            papers_per_100_authors: 8.0,
            mean_team_size: 3.0,
            repeat_collab: 0.45,
            introduction: 0.30,
        }
    }
}

impl CoauthorConfig {
    /// Generate the co-authorship network.
    ///
    /// # Panics
    /// Panics if `num_authors < 10` or the year range is empty.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        assert!(self.num_authors >= 10, "need at least 10 authors");
        let (y0, y1) = self.years;
        assert!(y1 > y0, "empty year range");
        let num_years = (y1 - y0 + 1) as usize;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut builder = GraphBuilder::with_num_nodes(self.num_authors);
        // collaborators[v] = distinct prior co-authors of v.
        let mut collaborators: Vec<Vec<u32>> = vec![Vec::new(); self.num_authors];
        let mut papers_count = vec![0usize; self.num_authors];
        // Authors join at a super-linear rate (the field grows).
        let mut joined = 4usize; // initial seed group
        let mut seen_pairs: std::collections::HashSet<(u32, u32)> = Default::default();

        let add_pair =
            |a: u32,
             b: u32,
             year: i64,
             builder: &mut GraphBuilder,
             collaborators: &mut [Vec<u32>],
             seen_pairs: &mut std::collections::HashSet<(u32, u32)>| {
                if a == b {
                    return;
                }
                builder.add_edge(a, b, year, 1.0).expect("validated ids");
                let key = (a.min(b), a.max(b));
                if seen_pairs.insert(key) {
                    collaborators[a as usize].push(b);
                    collaborators[b as usize].push(a);
                }
            };

        // Seed clique: the founding group writes one paper in year y0.
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                add_pair(a, b, y0, &mut builder, &mut collaborators, &mut seen_pairs);
            }
        }

        for yi in 0..num_years {
            let year = y0 + yi as i64;
            // Growth: fraction of remaining authors joins, accelerating.
            let target = ((yi + 1) as f64 / num_years as f64).powf(1.5);
            let want = ((self.num_authors as f64) * target) as usize;
            while joined < want.min(self.num_authors) {
                let newcomer = joined as u32;
                joined += 1;
                // Mentor by preferential attachment over paper counts.
                let weights: Vec<f64> =
                    (0..newcomer as usize).map(|u| papers_count[u] as f64 + 1.0).collect();
                if let Some(s) = CumulativeSampler::new(&weights) {
                    let mentor = s.sample(&mut rng) as u32;
                    add_pair(
                        newcomer,
                        mentor,
                        year,
                        &mut builder,
                        &mut collaborators,
                        &mut seen_pairs,
                    );
                }
            }
            // Papers this year.
            let n_papers = ((joined as f64 / 100.0) * self.papers_per_100_authors).ceil() as usize;
            let activity: Vec<f64> = (0..joined).map(|u| papers_count[u] as f64 + 1.0).collect();
            let lead_sampler = match CumulativeSampler::new(&activity) {
                Some(s) => s,
                None => continue,
            };
            for _ in 0..n_papers {
                let lead = lead_sampler.sample(&mut rng) as u32;
                let mut team = vec![lead];
                let size = sample_team_size(self.mean_team_size, &mut rng);
                let mut guard = 0;
                while team.len() < size && guard < 50 {
                    guard += 1;
                    let r: f64 = rng.gen();
                    let candidate =
                        if r < self.repeat_collab && !collaborators[lead as usize].is_empty() {
                            let cs = &collaborators[lead as usize];
                            cs[rng.gen_range(0..cs.len())]
                        } else if r < self.repeat_collab + self.introduction {
                            // introduction: collaborator of a random team member
                            let via = team[rng.gen_range(0..team.len())];
                            let cs = &collaborators[via as usize];
                            if cs.is_empty() {
                                continue;
                            }
                            let bridge = cs[rng.gen_range(0..cs.len())];
                            let cs2 = &collaborators[bridge as usize];
                            if cs2.is_empty() {
                                continue;
                            }
                            cs2[rng.gen_range(0..cs2.len())]
                        } else {
                            rng.gen_range(0..joined) as u32
                        };
                    if !team.contains(&candidate) {
                        team.push(candidate);
                    }
                }
                for &m in &team {
                    papers_count[m as usize] += 1;
                }
                for i in 0..team.len() {
                    for j in (i + 1)..team.len() {
                        add_pair(
                            team[i],
                            team[j],
                            year,
                            &mut builder,
                            &mut collaborators,
                            &mut seen_pairs,
                        );
                    }
                }
            }
        }
        builder.build().expect("seed clique guarantees edges")
    }
}

/// Team sizes in 2..=6, geometric-ish around the configured mean.
fn sample_team_size<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    let p = 1.0 / (mean - 1.0).max(1.0);
    let mut size = 2usize;
    while size < 6 && !rng.gen_bool(p.clamp(0.05, 1.0)) {
        size += 1;
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::clustering_coefficient;
    use ehna_tgraph::GraphStats;

    fn small() -> TemporalGraph {
        CoauthorConfig { num_authors: 400, ..Default::default() }.generate(13)
    }

    #[test]
    fn yearly_timestamps() {
        let g = small();
        assert!(g.min_time().raw() >= 1955);
        assert!(g.max_time().raw() <= 2017);
        // Yearly resolution: far fewer distinct times than edges.
        let mut times: Vec<i64> = g.edges().iter().map(|e| e.t.raw()).collect();
        times.dedup();
        assert!(times.len() <= 63);
    }

    #[test]
    fn repeat_collaborations_exist() {
        let g = small();
        let s = GraphStats::compute(&g);
        assert!(
            (s.num_temporal_edges as f64) > 1.15 * s.num_static_edges as f64,
            "too few repeat collaborations: {} vs {}",
            s.num_temporal_edges,
            s.num_static_edges
        );
    }

    #[test]
    fn team_cliques_create_clustering() {
        let g = small();
        let cc = clustering_coefficient(&g);
        assert!(cc > 0.15, "coauthor clustering {cc:.3} too low");
    }

    #[test]
    fn field_grows_over_time() {
        let g = small();
        let mid = (1955 + 2017) / 2;
        let early = g.edges_before(ehna_tgraph::Timestamp(mid));
        let late = g.num_edges() - early;
        assert!(late > 2 * early, "no densification: {early} early vs {late} late");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn team_size_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = sample_team_size(3.0, &mut rng);
            assert!((2..=6).contains(&s));
        }
    }
}
