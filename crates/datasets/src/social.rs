//! *Digg-like* social friendship network generator.
//!
//! Growth model combining the three mechanisms that give online social
//! networks their temporal structure:
//!
//! 1. **Temporal preferential attachment** — arriving users befriend
//!    existing users with probability proportional to `degree + 1`,
//!    producing the heavy-tailed degree distribution of Table I's Digg.
//! 2. **Triadic closure** — a fraction of new ties close open triangles
//!    (friend-of-a-friend), which is exactly the "relevant node two hops
//!    away enables a future edge" pattern EHNA's temporal walks are built
//!    to detect (Figure 2 of the paper).
//! 3. **Recency-biased re-activation** — pairs of already-present users
//!    form ties with probability decaying in the time since their last
//!    activity, giving the network temporal locality.

use crate::util::CumulativeSampler;
use ehna_tgraph::{GraphBuilder, NodeId, TemporalGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`SocialConfig::generate`].
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of users.
    pub num_nodes: usize,
    /// New friendship ties created per arriving user.
    pub edges_per_node: usize,
    /// Probability that a tie closes a triangle instead of attaching
    /// preferentially.
    pub triadic_closure: f64,
    /// Additional re-activation ties per arrival, biased to recent nodes.
    pub reactivation_rate: f64,
    /// Characteristic recency window (in arrival steps) for re-activation.
    pub recency_window: f64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            num_nodes: 2_000,
            edges_per_node: 6,
            triadic_closure: 0.35,
            reactivation_rate: 0.5,
            recency_window: 200.0,
        }
    }
}

impl SocialConfig {
    /// Generate a digg-like temporal friendship network.
    ///
    /// Timestamps are arrival steps (one unit per joining user), so the
    /// network densifies over a span of `num_nodes` time units.
    ///
    /// # Panics
    /// Panics if `num_nodes < 3` or `edges_per_node == 0`.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        assert!(self.num_nodes >= 3, "need at least 3 nodes");
        assert!(self.edges_per_node >= 1, "need at least 1 edge per node");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = GraphBuilder::with_num_nodes(self.num_nodes);
        builder.reserve(self.num_nodes * (self.edges_per_node + 1));

        let mut degree = vec![0usize; self.num_nodes];
        // adjacency for triadic closure lookups (small per-node lists).
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.num_nodes];
        let mut last_active = vec![0i64; self.num_nodes];

        let connect = |a: u32,
                       b: u32,
                       t: i64,
                       builder: &mut GraphBuilder,
                       degree: &mut [usize],
                       adj: &mut [Vec<u32>],
                       last_active: &mut [i64]|
         -> bool {
            if a == b || adj[a as usize].contains(&b) {
                return false;
            }
            builder.add_edge(a, b, t, 1.0).expect("validated ids");
            degree[a as usize] += 1;
            degree[b as usize] += 1;
            adj[a as usize].push(b);
            adj[b as usize].push(a);
            last_active[a as usize] = t;
            last_active[b as usize] = t;
            true
        };

        // Seed triangle so preferential attachment has mass to work with.
        connect(0, 1, 0, &mut builder, &mut degree, &mut adj, &mut last_active);
        connect(1, 2, 0, &mut builder, &mut degree, &mut adj, &mut last_active);
        connect(0, 2, 0, &mut builder, &mut degree, &mut adj, &mut last_active);

        for v in 3..self.num_nodes as u32 {
            let t = v as i64;
            let m = self.edges_per_node.min(v as usize);
            // Preferential attachment sampler over existing nodes.
            let weights: Vec<f64> = (0..v as usize).map(|u| degree[u] as f64 + 1.0).collect();
            let pa = CumulativeSampler::new(&weights).expect("positive weights");
            let mut formed = 0usize;
            let mut attempts = 0usize;
            while formed < m && attempts < m * 20 {
                attempts += 1;
                let target = if rng.gen_bool(self.triadic_closure) && !adj[v as usize].is_empty() {
                    // close a triangle through a random existing friend
                    let f = adj[v as usize][rng.gen_range(0..adj[v as usize].len())];
                    let fn_list = &adj[f as usize];
                    if fn_list.is_empty() {
                        continue;
                    }
                    fn_list[rng.gen_range(0..fn_list.len())]
                } else {
                    pa.sample(&mut rng) as u32
                };
                if connect(v, target, t, &mut builder, &mut degree, &mut adj, &mut last_active) {
                    formed += 1;
                }
            }
            // Recency-biased re-activation among existing users.
            if rng.gen_bool(self.reactivation_rate.clamp(0.0, 1.0)) && v >= 8 {
                let rec_weights: Vec<f64> = (0..v as usize)
                    .map(|u| {
                        let age = (t - last_active[u]) as f64;
                        (degree[u] as f64 + 1.0) * (-age / self.recency_window).exp()
                    })
                    .collect();
                if let Some(rec) = CumulativeSampler::new(&rec_weights) {
                    let a = rec.sample(&mut rng) as u32;
                    let b = rec.sample(&mut rng) as u32;
                    connect(a, b, t, &mut builder, &mut degree, &mut adj, &mut last_active);
                }
            }
        }
        builder.build().expect("non-empty by construction")
    }
}

/// Mean local clustering coefficient over nodes with degree >= 2, computed
/// on the static projection. Exposed for generator validation; the EHNA
/// datasets are strongly clustered and the tests pin that property.
pub fn clustering_coefficient(g: &TemporalGraph) -> f64 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for v in g.nodes() {
        let mut nbrs: Vec<NodeId> = g.neighbors(v).iter().map(|n| n.node).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let mut closed = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if g.has_edge(nbrs[i], nbrs[j]) {
                    closed += 1;
                }
            }
        }
        total += 2.0 * closed as f64 / (k as f64 * (k as f64 - 1.0));
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::GraphStats;

    fn small() -> TemporalGraph {
        SocialConfig { num_nodes: 500, ..Default::default() }.generate(7)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges()[10], b.edges()[10]);
        let c = SocialConfig { num_nodes: 500, ..Default::default() }.generate(8);
        assert_ne!(a.num_edges(), c.num_edges());
    }

    #[test]
    fn heavy_tailed_degrees() {
        let g = small();
        let s = GraphStats::compute(&g);
        assert!(s.degree_gini > 0.3, "gini {:.3} too equal for a social net", s.degree_gini);
        assert!(s.max_degree > 5 * s.mean_degree as usize, "no hubs: {s:?}");
    }

    #[test]
    fn clustered() {
        let g = small();
        let cc = clustering_coefficient(&g);
        assert!(cc > 0.05, "clustering {cc:.3} too low for triadic closure");
    }

    #[test]
    fn timestamps_track_arrivals() {
        let g = small();
        assert_eq!(g.min_time().raw(), 0);
        assert_eq!(g.max_time().raw(), 499);
    }

    #[test]
    fn respects_edge_budget() {
        let cfg = SocialConfig { num_nodes: 300, edges_per_node: 4, ..Default::default() };
        let g = cfg.generate(1);
        // At most edges_per_node + 1 reactivation edge per arrival + seed.
        assert!(g.num_edges() <= 300 * 5 + 3);
        assert!(g.num_edges() >= 300 * 2);
    }
}
