//! Small sampling helpers shared by the generators.

use rand::Rng;

/// Weighted discrete sampler over `0..n` built from a cumulative sum.
///
/// `O(log n)` per draw; weights may be updated only by rebuilding. The
/// generators rebuild rarely (per epoch of growth), so this beats
/// maintaining an alias table under churn.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Build from non-negative weights. Returns `None` if the total weight
    /// is not positive and finite.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        if acc > 0.0 && acc.is_finite() {
            Some(CumulativeSampler { cumulative })
        } else {
            None
        }
    }

    /// Draw one index proportionally to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Zipf-distributed ranks: weight of rank `i` (0-based) is
/// `1 / (i + 1)^exponent`.
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(exponent)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_respects_weights() {
        let s = CumulativeSampler::new(&[0.0, 9.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 8_000, "{counts:?}");
        assert!(counts[2] > 500, "{counts:?}");
    }

    #[test]
    fn sampler_rejects_zero_total() {
        assert!(CumulativeSampler::new(&[0.0, 0.0]).is_none());
        assert!(CumulativeSampler::new(&[]).is_none());
    }

    #[test]
    fn zipf_is_decreasing_and_normalizable() {
        let w = zipf_weights(100, 1.2);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert!(w.iter().sum::<f64>() > 1.0);
    }
}
