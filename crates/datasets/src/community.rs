//! Temporal stochastic block model with ground-truth communities.
//!
//! Used by the node-classification *extension* experiment (the paper's
//! introduction lists node classification among the applications of
//! network embedding but evaluates only reconstruction and link
//! prediction). Nodes belong to `k` communities; interaction probability
//! is much higher within than across, and each community has an activity
//! "era" so the temporal signal also carries label information — a method
//! that uses time well can separate communities that overlap structurally.

use crate::util::CumulativeSampler;
use ehna_tgraph::{GraphBuilder, TemporalGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`CommunityConfig::generate`].
#[derive(Debug, Clone)]
pub struct CommunityConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of communities (labels).
    pub num_communities: usize,
    /// Total interaction events.
    pub num_events: usize,
    /// Probability an event is intra-community.
    pub intra_prob: f64,
    /// Time horizon.
    pub horizon: i64,
    /// Fraction of each community's events concentrated in its own era.
    pub era_mass: f64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig {
            num_nodes: 400,
            num_communities: 4,
            num_events: 4_000,
            intra_prob: 0.85,
            horizon: 10_000,
            era_mass: 0.6,
        }
    }
}

impl CommunityConfig {
    /// Generate the network and its ground-truth community labels
    /// (`labels[v]` ∈ `0..num_communities`).
    ///
    /// # Panics
    /// Panics if fewer than 2 communities or fewer than 2 nodes per
    /// community.
    pub fn generate(&self, seed: u64) -> (TemporalGraph, Vec<usize>) {
        assert!(self.num_communities >= 2, "need at least 2 communities");
        assert!(self.num_nodes >= 2 * self.num_communities, "need at least 2 nodes per community");
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.num_communities;
        // Round-robin labels, then shuffled so ids carry no signal.
        let mut labels: Vec<usize> = (0..self.num_nodes).map(|i| i % k).collect();
        for i in (1..labels.len()).rev() {
            let j = rng.gen_range(0..=i);
            labels.swap(i, j);
        }
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (v, &c) in labels.iter().enumerate() {
            members[c].push(v as u32);
        }
        // Power-law activity within each community.
        let activity: Vec<f64> =
            (0..self.num_nodes).map(|_| rng.gen_range(0.2f64..1.0).powi(3) + 0.05).collect();
        let samplers: Vec<CumulativeSampler> = members
            .iter()
            .map(|m| {
                let w: Vec<f64> = m.iter().map(|&v| activity[v as usize]).collect();
                CumulativeSampler::new(&w).expect("positive activity")
            })
            .collect();
        let era_len = self.horizon / k as i64;

        let mut builder = GraphBuilder::with_num_nodes(self.num_nodes);
        let mut events: Vec<(u32, u32, i64)> = Vec::with_capacity(self.num_events);
        let mut guard = 0usize;
        while events.len() < self.num_events && guard < self.num_events * 20 {
            guard += 1;
            let c = rng.gen_range(0..k);
            let a = members[c][samplers[c].sample(&mut rng)];
            let b = if rng.gen_bool(self.intra_prob) {
                members[c][samplers[c].sample(&mut rng)]
            } else {
                let other = (c + rng.gen_range(1..k)) % k;
                members[other][samplers[other].sample(&mut rng)]
            };
            if a == b {
                continue;
            }
            // Era-concentrated timestamps.
            let t = if rng.gen_bool(self.era_mass) {
                let start = c as i64 * era_len;
                rng.gen_range(start..start + era_len.max(1))
            } else {
                rng.gen_range(0..self.horizon)
            };
            events.push((a, b, t));
        }
        events.sort_by_key(|&(_, _, t)| t);
        for (a, b, t) in events {
            builder.add_edge(a, b, t, 1.0).expect("validated ids");
        }
        (builder.build().expect("events generated"), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::NodeId;

    #[test]
    fn labels_cover_all_communities() {
        let cfg = CommunityConfig::default();
        let (g, labels) = cfg.generate(1);
        assert_eq!(labels.len(), g.num_nodes());
        for c in 0..cfg.num_communities {
            assert!(labels.contains(&c), "community {c} empty");
        }
    }

    #[test]
    fn intra_community_edges_dominate() {
        let cfg = CommunityConfig::default();
        let (g, labels) = cfg.generate(2);
        let intra =
            g.edges().iter().filter(|e| labels[e.src.index()] == labels[e.dst.index()]).count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.7, "only {frac:.2} intra-community");
    }

    #[test]
    fn eras_concentrate_community_activity() {
        let cfg = CommunityConfig::default();
        let (g, labels) = cfg.generate(3);
        let era_len = cfg.horizon / cfg.num_communities as i64;
        // Edges of community 0 nodes should cluster in era 0.
        let mut in_era = 0usize;
        let mut total = 0usize;
        for e in g.edges() {
            if labels[e.src.index()] == 0 && labels[e.dst.index()] == 0 {
                total += 1;
                if e.t.raw() < era_len {
                    in_era += 1;
                }
            }
        }
        assert!(total > 50);
        let frac = in_era as f64 / total as f64;
        assert!(frac > 0.5, "era mass {frac:.2} too diffuse");
    }

    #[test]
    fn deterministic() {
        let cfg = CommunityConfig::default();
        let (a, la) = cfg.generate(7);
        let (b, lb) = cfg.generate(7);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(la, lb);
        assert_eq!(a.degree(NodeId(0)), b.degree(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "at least 2 communities")]
    fn rejects_single_community() {
        CommunityConfig { num_communities: 1, ..Default::default() }.generate(0);
    }
}
