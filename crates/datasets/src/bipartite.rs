//! *Tmall-like* and *yelp-like* user–item bipartite interaction generators.
//!
//! Both networks in the paper connect users to items/businesses through
//! timestamped events (purchases / reviews). The generator draws, for each
//! event, a user from a power-law activity distribution and an item from a
//! Zipfian popularity distribution, with per-user repeat bias (users
//! revisit items they already interacted with).
//!
//! The two presets differ in their **event-time profile**:
//!
//! * [`BipartiteKind::Tmall`] — events concentrate into a sales-burst
//!   window (the "Double 11" shopping day the paper's Tmall dump comes
//!   from): a large share of all interactions land in the final `burst`
//!   fraction of the horizon.
//! * [`BipartiteKind::Yelp`] — steady review cadence spread uniformly over
//!   the horizon with mild weekly seasonality.

use crate::util::{zipf_weights, CumulativeSampler};
use ehna_tgraph::{GraphBuilder, TemporalGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which bipartite event-time profile to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BipartiteKind {
    /// E-commerce purchases with a terminal sales burst.
    Tmall,
    /// Review traffic with a steady cadence.
    Yelp,
}

/// Configuration for [`BipartiteConfig::generate`].
#[derive(Debug, Clone)]
pub struct BipartiteConfig {
    /// Time profile preset.
    pub kind: BipartiteKind,
    /// Number of user nodes (ids `0..num_users`).
    pub num_users: usize,
    /// Number of item nodes (ids `num_users..num_users+num_items`).
    pub num_items: usize,
    /// Total interaction events.
    pub num_events: usize,
    /// Zipf exponent of item popularity.
    pub item_zipf: f64,
    /// Zipf exponent of user activity.
    pub user_zipf: f64,
    /// Probability an event repeats one of the user's previous items.
    pub repeat_bias: f64,
    /// Time horizon in discrete ticks.
    pub horizon: i64,
    /// (Tmall) fraction of the horizon covered by the burst window.
    pub burst_window: f64,
    /// (Tmall) probability an event lands inside the burst window.
    pub burst_mass: f64,
}

impl BipartiteConfig {
    /// Tmall-like preset at a given size.
    pub fn tmall(num_users: usize, num_items: usize, num_events: usize) -> Self {
        BipartiteConfig {
            kind: BipartiteKind::Tmall,
            num_users,
            num_items,
            num_events,
            item_zipf: 1.1,
            user_zipf: 0.9,
            repeat_bias: 0.25,
            horizon: 10_000,
            burst_window: 0.05,
            burst_mass: 0.45,
        }
    }

    /// Yelp-like preset at a given size.
    pub fn yelp(num_users: usize, num_items: usize, num_events: usize) -> Self {
        BipartiteConfig {
            kind: BipartiteKind::Yelp,
            num_users,
            num_items,
            num_events,
            item_zipf: 0.9,
            user_zipf: 1.0,
            repeat_bias: 0.15,
            horizon: 10_000,
            burst_window: 0.0,
            burst_mass: 0.0,
        }
    }

    /// Total node count: users then items.
    pub fn num_nodes(&self) -> usize {
        self.num_users + self.num_items
    }

    /// Whether `node` indexes a user (as opposed to an item).
    pub fn is_user(&self, node: u32) -> bool {
        (node as usize) < self.num_users
    }

    /// Generate the interaction network.
    ///
    /// # Panics
    /// Panics if any of the size fields is zero.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        assert!(self.num_users > 0 && self.num_items > 0 && self.num_events > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        // Shuffle popularity ranks so node id order carries no signal.
        let user_sampler = shuffled_zipf(self.num_users, self.user_zipf, &mut rng);
        let item_sampler = shuffled_zipf(self.num_items, self.item_zipf, &mut rng);

        let mut history: Vec<Vec<u32>> = vec![Vec::new(); self.num_users];
        let mut events: Vec<(u32, u32, i64)> = Vec::with_capacity(self.num_events);
        for _ in 0..self.num_events {
            let user = user_sampler.sample(&mut rng) as u32;
            let item = if !history[user as usize].is_empty() && rng.gen_bool(self.repeat_bias) {
                let h = &history[user as usize];
                h[rng.gen_range(0..h.len())]
            } else {
                (self.num_users + item_sampler.sample(&mut rng)) as u32
            };
            history[user as usize].push(item);
            let t = self.sample_time(&mut rng);
            events.push((user, item, t));
        }
        events.sort_by_key(|&(_, _, t)| t);
        let mut builder = GraphBuilder::with_num_nodes(self.num_nodes());
        builder.reserve(events.len());
        for (u, i, t) in events {
            builder.add_edge(u, i, t, 1.0).expect("validated ids");
        }
        builder.build().expect("num_events > 0")
    }

    fn sample_time<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        match self.kind {
            BipartiteKind::Tmall => {
                let burst_start = ((1.0 - self.burst_window) * self.horizon as f64) as i64;
                if rng.gen_bool(self.burst_mass) {
                    rng.gen_range(burst_start..self.horizon)
                } else {
                    rng.gen_range(0..burst_start.max(1))
                }
            }
            BipartiteKind::Yelp => {
                // Steady cadence with mild weekly seasonality: resample
                // "weekend" ticks with 30% extra acceptance.
                loop {
                    let t = rng.gen_range(0..self.horizon);
                    let day = (t / 100) % 7;
                    if day >= 5 || rng.gen_bool(0.77) {
                        return t;
                    }
                }
            }
        }
    }
}

fn shuffled_zipf<R: Rng + ?Sized>(n: usize, exponent: f64, rng: &mut R) -> CumulativeSampler {
    let mut weights = zipf_weights(n, exponent);
    // Fisher–Yates on the weights.
    for i in (1..weights.len()).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    CumulativeSampler::new(&weights).expect("zipf weights positive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::{GraphStats, NodeId};

    #[test]
    fn bipartite_structure_holds() {
        let cfg = BipartiteConfig::yelp(200, 100, 2_000);
        let g = cfg.generate(3);
        for e in g.edges() {
            let (u, i) = (e.src.0.min(e.dst.0), e.src.0.max(e.dst.0));
            assert!(cfg.is_user(u) != cfg.is_user(i), "edge {u}-{i} not user-item");
        }
    }

    #[test]
    fn tmall_burst_concentrates_events() {
        let cfg = BipartiteConfig::tmall(300, 150, 5_000);
        let g = cfg.generate(11);
        let burst_start = ((1.0 - cfg.burst_window) * cfg.horizon as f64) as i64;
        let in_burst =
            g.edges().iter().filter(|e| e.t.raw() >= burst_start).count() as f64 / 5_000.0;
        // 45% of mass in 5% of the horizon.
        assert!(in_burst > 0.35, "burst mass {in_burst:.3} too small");
    }

    #[test]
    fn yelp_is_not_bursty() {
        let cfg = BipartiteConfig::yelp(300, 150, 5_000);
        let g = cfg.generate(11);
        let last5 =
            g.edges().iter().filter(|e| e.t.raw() >= (0.95 * cfg.horizon as f64) as i64).count()
                as f64
                / 5_000.0;
        assert!(last5 < 0.10, "yelp tail mass {last5:.3} unexpectedly bursty");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let cfg = BipartiteConfig::tmall(500, 250, 10_000);
        let g = cfg.generate(5);
        let s = GraphStats::compute(&g);
        assert!(s.degree_gini > 0.4, "gini {:.3}", s.degree_gini);
    }

    #[test]
    fn repeat_interactions_exist() {
        let cfg = BipartiteConfig::tmall(100, 50, 3_000);
        let g = cfg.generate(9);
        let s = GraphStats::compute(&g);
        assert!(
            s.num_static_edges < s.num_temporal_edges,
            "no repeat purchases: {} == {}",
            s.num_static_edges,
            s.num_temporal_edges
        );
    }

    #[test]
    fn deterministic() {
        let cfg = BipartiteConfig::yelp(100, 60, 1_000);
        let a = cfg.generate(2);
        let b = cfg.generate(2);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.degree(NodeId(0)), b.degree(NodeId(0)));
    }
}
