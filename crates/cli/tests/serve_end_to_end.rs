//! End-to-end serving pipeline: train a tiny model with the real CLI,
//! export the snapshot plus a name map, serve it over TCP, and query it
//! back over the wire — then hold the IVF index to the paper-grade
//! recall bar on a 10k-node synthetic snapshot.

use ehna_serve::{
    query_lines, BruteForceIndex, EmbeddingStore, EngineConfig, IvfConfig, IvfIndex, Json,
    KnnIndex, QueryEngine, Server,
};
use ehna_tgraph::{NodeEmbeddings, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

/// Run the `ehna` CLI in-process, capturing stdout.
fn ehna(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    ehna_cli::run(&args, &mut buf).unwrap_or_else(|e| panic!("ehna {args:?} failed: {e}"));
    String::from_utf8(buf).expect("utf8 output")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ehna_e2e_{}_{name}", std::process::id()))
}

/// The whole user journey: generate -> train -> serve -> query, with the
/// query leg going through a real TCP socket and node *names*.
#[test]
fn train_export_serve_query_round_trip() {
    let net = temp_path("net.txt");
    let emb = temp_path("emb.bin");
    let names = temp_path("names.txt");

    ehna(&[
        "generate",
        "--dataset",
        "dblp",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--out",
        net.to_str().unwrap(),
    ]);
    let train_out = ehna(&[
        "train",
        net.to_str().unwrap(),
        "--method",
        "ehna",
        "--dim",
        "8",
        "--epochs",
        "1",
        "--walks",
        "2",
        "--walk-length",
        "4",
        "--out",
        emb.to_str().unwrap(),
    ]);
    assert!(train_out.contains("wrote"), "train output: {train_out}");

    // Name every node, as a real export pipeline would.
    let snapshot = NodeEmbeddings::load_path(&emb).expect("trained snapshot loads");
    let name_lines: Vec<String> = (0..snapshot.num_nodes()).map(|v| format!("author{v}")).collect();
    std::fs::write(&names, name_lines.join("\n") + "\n").expect("write names");

    // Serve on an ephemeral port, in a thread, via the real CLI path.
    let mut banner = Vec::new();
    let server = ehna_cli::commands::serve::prepare(
        &[
            emb.to_str().unwrap().to_string(),
            "--names".into(),
            names.to_str().unwrap().into(),
            "--addr".into(),
            "127.0.0.1:0".into(),
        ],
        &mut banner,
    )
    .expect("serve prepares");
    let handle = server.server.spawn().expect("serve spawns");
    let banner = String::from_utf8(banner).unwrap();
    assert!(banner.contains("loaded 250 x 8 snapshot"), "banner: {banner}");

    // Query the live server by name over the wire.
    let responses = query_lines(
        handle.addr(),
        &[
            r#"{"op":"ping"}"#.to_string(),
            r#"{"op":"knn","node":"author3","k":5}"#.to_string(),
            r#"{"op":"score","pairs":[["author0","author1"],["author0","author0"]]}"#.to_string(),
            r#"{"op":"knn","node":"author3","k":5,"explain":true}"#.to_string(),
        ],
    )
    .expect("wire round trip");
    assert_eq!(responses.len(), 4);

    let knn = Json::parse(&responses[1]).expect("knn response is json");
    assert_eq!(knn.get("ok"), Some(&Json::Bool(true)), "knn failed: {}", responses[1]);
    let neighbors = knn.get("neighbors").and_then(Json::as_arr).expect("neighbors");
    assert_eq!(neighbors.len(), 5);
    // Self is excluded and labels resolve through the name map.
    for n in neighbors {
        let label = n.get("node").and_then(Json::as_str).expect("node label");
        assert_ne!(label, "author3");
        assert!(label.starts_with("author"), "unexpected label {label}");
    }

    let score = Json::parse(&responses[2]).expect("score response is json");
    let scores = score.get("scores").and_then(Json::as_arr).expect("scores");
    // Eq. 5 distance of a node to itself is exactly zero.
    assert_eq!(scores[1].as_f64(), Some(0.0));

    let explained = Json::parse(&responses[3]).expect("explain response is json");
    assert!(explained.get("explain").is_some(), "no explain block: {}", responses[3]);

    // The CLI query client sees the same thing the raw protocol does.
    let cli_out =
        ehna(&["query", "--addr", &handle.addr().to_string(), "--node", "author3", "--k", "3"]);
    assert!(cli_out.contains("author"), "query output: {cli_out}");

    handle.shutdown();
    for p in [net, emb, names] {
        let _ = std::fs::remove_file(p);
    }
}

/// The same journey under the attention aggregator: `--aggregator attn`
/// must train, export, and serve through the identical pipeline — the
/// aggregator is a training-time choice that leaves no trace in the
/// snapshot format.
#[test]
fn train_attn_aggregator_round_trip() {
    let net = temp_path("attn_net.txt");
    let emb = temp_path("attn_emb.bin");

    ehna(&[
        "generate",
        "--dataset",
        "dblp",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--out",
        net.to_str().unwrap(),
    ]);
    let train_out = ehna(&[
        "train",
        net.to_str().unwrap(),
        "--method",
        "ehna",
        "--aggregator",
        "attn",
        "--heads",
        "2",
        "--dim",
        "8",
        "--epochs",
        "1",
        "--walks",
        "2",
        "--walk-length",
        "4",
        "--out",
        emb.to_str().unwrap(),
    ]);
    assert!(train_out.contains("wrote"), "train output: {train_out}");

    let snapshot = NodeEmbeddings::load_path(&emb).expect("trained snapshot loads");
    assert_eq!(snapshot.dim(), 8);
    assert!(
        snapshot.as_slice().iter().all(|v| v.is_finite()),
        "attn-trained snapshot contains non-finite values"
    );

    // Serve + query over the wire, same path as the LSTM journey.
    let mut banner = Vec::new();
    let server = ehna_cli::commands::serve::prepare(
        &[emb.to_str().unwrap().to_string(), "--addr".into(), "127.0.0.1:0".into()],
        &mut banner,
    )
    .expect("serve prepares");
    let handle = server.server.spawn().expect("serve spawns");
    let responses = query_lines(handle.addr(), &[r#"{"op":"knn","node":"3","k":5}"#.to_string()])
        .expect("wire round trip");
    let knn = Json::parse(&responses[0]).expect("knn response is json");
    assert_eq!(knn.get("ok"), Some(&Json::Bool(true)), "knn failed: {}", responses[0]);
    assert_eq!(knn.get("neighbors").and_then(Json::as_arr).map(|n| n.len()), Some(5));

    handle.shutdown();
    for p in [net, emb] {
        let _ = std::fs::remove_file(p);
    }
}

/// Draw a clustered 10k-node snapshot: points around random blob centers,
/// the regime IVF is built for (and the shape real embeddings take).
fn clustered_embeddings(n: usize, dim: usize, blobs: usize, seed: u64) -> NodeEmbeddings {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> =
        (0..blobs).map(|_| (0..dim).map(|_| rng.gen_range(-8.0f32..8.0)).collect()).collect();
    let mut data = Vec::with_capacity(n * dim);
    for v in 0..n {
        let c = &centers[v % blobs];
        data.extend(c.iter().map(|x| x + rng.gen_range(-0.5f32..0.5)));
    }
    NodeEmbeddings::from_vec(dim, data)
}

/// Acceptance bar from the issue: IVF top-10 recall >= 0.95 against the
/// brute-force oracle on a 10k-node snapshot, measured over the wire.
#[test]
fn ivf_recall_meets_bar_on_10k_nodes() {
    const N: usize = 10_000;
    const K: usize = 10;
    let emb = temp_path("recall10k.bin");
    clustered_embeddings(N, 16, 64, 0xE47).save_path(&emb).expect("save snapshot");

    let store = Arc::new(EmbeddingStore::open(emb.to_str().unwrap(), None).expect("open"));
    let brute = BruteForceIndex::new(Arc::clone(&store));
    let ivf = IvfIndex::build(Arc::clone(&store), IvfConfig::default());
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        Box::new(ivf),
        EngineConfig { workers: 2, batch_max: 32, cache_capacity: 0 },
    ));
    let handle = Server::bind("127.0.0.1:0", engine).expect("bind").spawn().expect("spawn");

    // 100 evenly spread probe nodes, queried over TCP.
    let probes: Vec<u32> = (0..100).map(|i| (i * 97) as u32 % N as u32).collect();
    let requests: Vec<String> =
        probes.iter().map(|v| format!(r#"{{"op":"knn","node":{v},"k":{K}}}"#)).collect();
    let responses = query_lines(handle.addr(), &requests).expect("wire round trip");

    let mut hits = 0usize;
    for (v, line) in probes.iter().zip(&responses) {
        let resp = Json::parse(line).expect("json");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "failed: {line}");
        let approx: Vec<u32> = resp
            .get("neighbors")
            .and_then(Json::as_arr)
            .expect("neighbors")
            .iter()
            .map(|n| n.get("id").and_then(Json::as_f64).expect("id") as u32)
            .collect();
        assert_eq!(approx.len(), K);
        // Exact ground truth (self excluded, like the engine does).
        let exact: Vec<u32> = brute
            .search(&store.row(NodeId(*v)).unwrap(), K + 1)
            .into_iter()
            .filter(|n| n.id.0 != *v)
            .take(K)
            .map(|n| n.id.0)
            .collect();
        hits += approx.iter().filter(|id| exact.contains(id)).count();
    }
    let recall = hits as f64 / (probes.len() * K) as f64;
    assert!(recall >= 0.95, "IVF top-{K} recall {recall:.3} < 0.95");

    handle.shutdown();
    let _ = std::fs::remove_file(emb);
}
