//! End-to-end streaming: train on a prefix of a temporal network, serve
//! the snapshot, ingest the suffix into an edge log in batches, and
//! stream it back — incremental refreshes hot-swapping the live server
//! with zero downtime while clients keep querying.

use ehna_serve::{query_lines, Json};
use ehna_tgraph::NodeEmbeddings;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NUM_NODES: u32 = 10;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn run_cli(list: &[&str]) -> String {
    let mut buf = Vec::new();
    ehna_cli::run(&args(list), &mut buf)
        .unwrap_or_else(|e| panic!("`ehna {}` failed: {}", list.join(" "), e.message));
    String::from_utf8(buf).expect("utf8")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ehna_e2e_{name}_{}", std::process::id()))
}

/// Dense-ish two-community network. The prefix (rounds 0..4) touches
/// every node — including the max id — so the checkpoint covers the
/// whole table; the suffix (rounds 4..8) arrives via the edge log.
fn write_edge_files(prefix: &PathBuf, suffix: &PathBuf) {
    let mut pre = String::new();
    let mut suf = String::new();
    for round in 0u32..8 {
        let out = if round < 4 { &mut pre } else { &mut suf };
        for i in 0..NUM_NODES {
            for j in (i + 1)..NUM_NODES {
                let same = (i < 5) == (j < 5);
                if (i + j + round) % 3 == 0 && (same || round % 2 == 0) {
                    out.push_str(&format!("{i} {j} {}\n", round * 100 + i + j));
                }
            }
        }
    }
    std::fs::write(prefix, pre).unwrap();
    std::fs::write(suffix, suf).unwrap();
}

fn max_row_dist(a: &NodeEmbeddings, b: &NodeEmbeddings) -> f32 {
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.dim(), b.dim());
    (0..a.num_nodes())
        .map(|v| {
            let (ra, rb) =
                (a.get(ehna_tgraph::NodeId(v as u32)), b.get(ehna_tgraph::NodeId(v as u32)));
            ra.iter().zip(rb).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        })
        .fold(0.0f32, f32::max)
}

#[test]
fn train_ingest_stream_reload_round_trip() {
    let prefix = tmp("prefix.txt");
    let suffix = tmp("suffix.txt");
    let ckpt = tmp("ckpt.bin");
    let snap = tmp("snap.bin");
    let snap_full = tmp("snap_full.bin");
    let log = tmp("edges.wal");
    for f in [&ckpt, &snap, &snap_full, &log] {
        let _ = std::fs::remove_file(f);
    }
    write_edge_files(&prefix, &suffix);

    // 1. Train on the prefix, keeping the checkpoint for streaming.
    let arch = ["--dim", "8", "--walks", "2", "--walk-length", "2", "--seed", "7"];
    let mut train_args = vec![
        "train",
        prefix.to_str().unwrap(),
        "--method",
        "ehna",
        "--epochs",
        "1",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
    ];
    train_args.extend_from_slice(&arch);
    run_cli(&train_args);

    // 2. Serve the trained snapshot on an ephemeral port.
    let server = ehna_cli::commands::serve::prepare(
        &args(&[snap.to_str().unwrap(), "--addr", "127.0.0.1:0", "--workers", "2"]),
        &mut Vec::new(),
    )
    .unwrap();
    let handle = server.server.spawn().unwrap();
    let addr = handle.addr().to_string();

    // 3. Ingest the suffix into the edge log in small batches.
    let out =
        run_cli(&["ingest", log.to_str().unwrap(), suffix.to_str().unwrap(), "--batch", "20"]);
    assert!(out.contains("records"), "ingest output: {out}");

    // 4. Clients hammer the server for the whole streaming window; every
    //    response must be well-formed — reloads may never break a query.
    let done = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let done = Arc::clone(&done);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let node = (c * 3) % NUM_NODES as usize;
                    let reqs = [
                        format!(r#"{{"op":"knn","node":"{node}","k":3}}"#),
                        r#"{"op":"score","pairs":[["1","2"]]}"#.to_string(),
                    ];
                    let responses = query_lines(addr.as_str(), &reqs).expect("query io");
                    for r in &responses {
                        let json = Json::parse(r).expect("well-formed response");
                        assert_eq!(json.get("ok"), Some(&Json::Bool(true)), "response: {r}");
                    }
                    served += responses.len();
                }
                served
            })
        })
        .collect();

    // 5. Stream the log with a frozen model (pure re-aggregation),
    //    rewriting the snapshot and hot-swapping the server per batch.
    let mut stream_args = vec![
        "stream",
        log.to_str().unwrap(),
        "--base",
        prefix.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--finetune-steps",
        "0",
        "--once",
        "--reload",
        &addr,
    ];
    stream_args.extend_from_slice(&arch);
    let out = run_cli(&stream_args);
    assert!(out.contains("served version"), "stream output: {out}");

    done.store(true, Ordering::Relaxed);
    let total_served: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total_served > 0, "clients never got a response in");

    // 6. The server must now be past the boot snapshot, one reload per
    //    batch, still healthy.
    let batches = out.matches("batch ").count() as f64;
    assert!(batches >= 2.0, "want multiple streamed batches, got: {out}");
    let stats_resp = query_lines(addr.as_str(), &[r#"{"op":"stats"}"#.to_string()]).unwrap();
    let stats = Json::parse(&stats_resp[0]).unwrap();
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(stats.get("reloads").and_then(Json::as_f64), Some(batches));
    assert_eq!(stats.get("snapshot_version").and_then(Json::as_f64), Some(batches + 1.0));
    assert!(stats.get("last_reload_unix").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
    handle.shutdown();

    // 7. Tolerance: the incrementally-refreshed table must match a run
    //    that rebuilds every row on every batch (the documented frozen-
    //    model equivalence bound; see DESIGN.md and the ehna-stream
    //    refresh_equivalence tests).
    let mut full_args = vec![
        "stream",
        log.to_str().unwrap(),
        "--base",
        prefix.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--out",
        snap_full.to_str().unwrap(),
        "--finetune-steps",
        "0",
        "--full-rebuild-every",
        "1",
        "--once",
    ];
    full_args.extend_from_slice(&arch);
    run_cli(&full_args);
    let incremental = NodeEmbeddings::load_path(&snap).unwrap();
    let rebuilt = NodeEmbeddings::load_path(&snap_full).unwrap();
    let dist = max_row_dist(&incremental, &rebuilt);
    assert!(dist < 1e-4, "incremental drifted {dist} from full rebuild");

    for f in [&prefix, &suffix, &ckpt, &snap, &snap_full, &log] {
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_file(tmp("ckpt.bin.bak"));
}
