//! Minimal typed `--flag value` parser shared by the subcommands.
//!
//! Flags may repeat (`--method a --method b` accumulates); positional
//! arguments are collected in order. `--help` short-circuits into a
//! usage error carrying the command's help text.

use crate::CliError;
use std::collections::BTreeMap;
use std::str::FromStr;

/// Parsed flags + positionals for one subcommand.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, Vec<String>>,
    positionals: Vec<String>,
}

impl Flags {
    /// Parse `args`; `help` is returned as the usage error on `--help`.
    pub fn parse(args: &[String], help: &str) -> Result<Self, CliError> {
        Self::parse_with_switches(args, help, &[])
    }

    /// Like [`Flags::parse`], but flags named in `switches` are bare
    /// booleans (`--explain`) that never consume the next token; they
    /// record the value `"true"` and answer [`Flags::has`].
    pub fn parse_with_switches(
        args: &[String],
        help: &str,
        switches: &[&str],
    ) -> Result<Self, CliError> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--help" || a == "-h" {
                return Err(CliError::usage(help.to_string()));
            }
            if let Some(name) = a.strip_prefix("--") {
                let value = if switches.contains(&name) {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?
                        .clone()
                };
                flags.values.entry(name.to_string()).or_default().push(value);
            } else {
                flags.positionals.push(a.clone());
            }
        }
        Ok(flags)
    }

    /// Whether a flag or switch was given at all.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// The positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Exactly one required positional.
    pub fn one_positional(&self, what: &str) -> Result<&str, CliError> {
        match self.positionals.as_slice() {
            [one] => Ok(one),
            [] => Err(CliError::usage(format!("missing {what}"))),
            _ => Err(CliError::usage(format!("expected exactly one {what}"))),
        }
    }

    /// All values given for a repeatable flag.
    pub fn all(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// Typed flag with default.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse::<T>().map_err(|e| CliError::usage(format!("bad --{name} '{raw}': {e}")))
            }
        }
    }

    /// Comma-separated list flag, e.g. `--p 100,1000`.
    pub fn get_list<T: FromStr>(&self, name: &str, default: Vec<T>) -> Result<Vec<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse::<T>()
                        .map_err(|e| CliError::usage(format!("bad --{name} item '{tok}': {e}")))
                })
                .collect(),
        }
    }

    /// Reject any flag not in `known` (catches typos).
    pub fn expect_known(&self, known: &[&str]) -> Result<(), CliError> {
        for name in self.values.keys() {
            if !known.contains(&name.as_str()) {
                return Err(CliError::usage(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Flags {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Flags::parse(&v, "help text").unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let f = parse(&["input.txt", "--dim", "32", "--method", "a", "--method", "b"]);
        assert_eq!(f.one_positional("input").unwrap(), "input.txt");
        assert_eq!(f.get_or("dim", 0usize).unwrap(), 32);
        assert_eq!(f.all("method"), &["a".to_string(), "b".to_string()]);
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn typed_defaults_and_errors() {
        let f = parse(&["--seed", "notanumber"]);
        assert!(f.get_or("seed", 0u64).is_err());
        assert_eq!(f.get_or("dim", 64usize).unwrap(), 64);
    }

    #[test]
    fn list_parsing() {
        let f = parse(&["--p", "100, 1000,10000"]);
        assert_eq!(f.get_list("p", vec![1usize]).unwrap(), vec![100, 1000, 10000]);
        assert_eq!(f.get_list("q", vec![5usize]).unwrap(), vec![5]);
    }

    #[test]
    fn help_short_circuits() {
        let v: Vec<String> = vec!["--help".into()];
        let err = Flags::parse(&v, "the help").unwrap_err();
        assert_eq!(err.code, 2);
        assert_eq!(err.message, "the help");
    }

    #[test]
    fn unknown_flags_rejected() {
        let f = parse(&["--dim", "8"]);
        assert!(f.expect_known(&["dim"]).is_ok());
        assert!(f.expect_known(&["seed"]).is_err());
    }

    #[test]
    fn missing_value_is_error() {
        let v: Vec<String> = vec!["--dim".into()];
        assert!(Flags::parse(&v, "h").is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let v: Vec<String> =
            ["--explain", "--k", "5", "--raw"].iter().map(|s| s.to_string()).collect();
        let f = Flags::parse_with_switches(&v, "h", &["explain", "raw"]).unwrap();
        assert!(f.has("explain"));
        assert!(f.has("raw"));
        assert!(!f.has("stats"));
        assert_eq!(f.get_or("k", 0usize).unwrap(), 5);
        // A trailing switch must not demand a value.
        let v: Vec<String> = vec!["--raw".into()];
        assert!(Flags::parse_with_switches(&v, "h", &["raw"]).is_ok());
    }
}
