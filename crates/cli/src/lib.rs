//! # ehna-cli — the `ehna` command-line tool
//!
//! End-user entry point to the reproduction:
//!
//! ```text
//! ehna generate --dataset dblp --scale tiny --seed 42 --out net.txt
//! ehna stats net.txt
//! ehna train net.txt --method ehna --dim 64 --epochs 5 --out emb.bin
//! ehna linkpred net.txt --method ehna --method node2vec
//! ehna reconstruct net.txt --method line --p 100,1000,10000
//! ```
//!
//! Command implementations live in [`commands`]; [`flags`] is the tiny
//! typed flag parser they share. Everything is exposed as a library so
//! the behavior is unit-testable without spawning processes.

pub mod commands;
pub mod flags;
pub mod method;

use std::fmt;

/// A CLI failure: message plus exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError { message: message.into(), code: 2 }
    }

    /// A runtime failure (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError { message: message.into(), code: 1 }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ehna_tgraph::GraphError> for CliError {
    fn from(e: ehna_tgraph::GraphError) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Top-level dispatch: `args` excludes argv[0]. Output goes to `out`.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(usage()));
    };
    match cmd.as_str() {
        "generate" => commands::generate::run(rest, out),
        "stats" => commands::stats::run(rest, out),
        "train" => commands::train::run(rest, out),
        "export" => commands::export::run(rest, out),
        "linkpred" => commands::linkpred::run(rest, out),
        "nodeclass" => commands::nodeclass::run(rest, out),
        "reconstruct" => commands::reconstruct::run(rest, out),
        "quantize" => commands::quantize::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "query" => commands::query::run(rest, out),
        "shard" => commands::shard::run(rest, out),
        "router" => commands::router::run(rest, out),
        "ingest" => commands::ingest::run(rest, out),
        "stream" => commands::stream::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage()).map_err(|e| CliError::runtime(e.to_string()))
        }
        other => Err(CliError::usage(format!("unknown command '{other}'\n{}", usage()))),
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "ehna — temporal network embedding (EHNA, ICDE 2020 reproduction)

commands:
  generate     synthesize a dataset preset into an edge-list file
  stats        print statistics of a temporal edge list
  train        train embeddings (ehna | ehna-na | ehna-rw | ehna-sl |
               node2vec | ctdne | line | htne) and save a snapshot
  export       convert an embedding snapshot to TSV
  linkpred     run the future-link-prediction evaluation
  reconstruct  run the network-reconstruction evaluation
  nodeclass    node classification on a temporal SBM (extension)
  quantize     re-encode a snapshot as an EHNQ artifact
               (f32 | f16 | int8 | pq) for compact mmap-able serving
  serve        serve an embedding snapshot over JSON-on-TCP
               (--role shard adds the EHNP binary port for routers;
               --mmap maps EHNQ artifacts zero-copy)
  query        query a running serve instance (knn / score / stats)
  shard        partition a snapshot into cluster shards + manifest
  router       scatter-gather front end over a shard cluster; same
               protocol and byte-identical answers as a single serve
  ingest       append an edge-list file to a crash-safe edge log
  stream       replay an edge log through incremental embedding refresh,
               hot-swapping a live serve instance (zero downtime)
  help         show this message

run `ehna <command> --help` for per-command flags"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn no_command_is_usage_error() {
        let err = run_str(&[]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("commands:"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run_str(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("linkpred"));
    }
}
