//! `ehna nodeclass` — node classification on the temporal stochastic
//! block model (extension experiment; see `ehna-eval::nodeclass`).

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{MethodName, TrainOptions};
use crate::CliError;
use ehna_datasets::CommunityConfig;
use ehna_eval::nodeclass::{evaluate, NodeClassificationConfig};
use std::io::Write;

const HELP: &str = "ehna nodeclass — node classification on a temporal SBM

usage: ehna nodeclass [--method NAME]... [--nodes N] [--communities K]
                      [--events N] [--dim N] [--epochs N] [--seed N]

Generates a temporal stochastic block model whose communities are both
structurally and temporally coherent, trains each method, and reports
accuracy and macro-F1 of one-vs-rest logistic regression on the
embeddings.";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&[
        "method",
        "nodes",
        "communities",
        "events",
        "dim",
        "epochs",
        "walks",
        "walk-length",
        "seed",
    ])?;
    if !flags.positionals().is_empty() {
        return Err(CliError::usage("nodeclass takes no positional arguments"));
    }
    let mut methods: Vec<MethodName> = Vec::new();
    for name in flags.all("method") {
        methods.push(MethodName::parse(name)?);
    }
    if methods.is_empty() {
        methods.push(MethodName::parse("ehna")?);
    }
    let seed = flags.get_or("seed", 42u64)?;
    let cfg = CommunityConfig {
        num_nodes: flags.get_or("nodes", 400usize)?,
        num_communities: flags.get_or("communities", 4usize)?,
        num_events: flags.get_or("events", 4_000usize)?,
        ..Default::default()
    };
    let opts = TrainOptions {
        dim: flags.get_or("dim", 32usize)?,
        epochs: flags.get_or("epochs", 3usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        seed,
        ..Default::default()
    };

    let (graph, labels) = cfg.generate(seed);
    writeln!(
        out,
        "temporal SBM: {} nodes, {} edges, {} communities",
        graph.num_nodes(),
        graph.num_edges(),
        cfg.num_communities
    )
    .map_err(io_err)?;
    writeln!(out, "{:<10} {:>10} {:>10}", "method", "accuracy", "macro-F1").map_err(io_err)?;
    let nc = NodeClassificationConfig { seed, ..Default::default() };
    for method in methods {
        let emb = method.train(&graph, &opts)?;
        let r = evaluate(&emb, &labels, &nc);
        writeln!(out, "{:<10} {:>10.4} {:>10.4}", method.name(), r.accuracy, r.macro_f1)
            .map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_with_line() {
        let args: Vec<String> =
            ["--method", "line", "--nodes", "60", "--events", "600", "--dim", "8", "--epochs", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("LINE"));
        assert!(s.contains("macro-F1"));
    }

    #[test]
    fn rejects_positionals() {
        let args = vec!["stray.txt".to_string()];
        let mut buf = Vec::new();
        assert!(run(&args, &mut buf).is_err());
    }
}
