//! `ehna train` — train embeddings on an edge list and save a snapshot.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{MethodName, TrainOptions};
use crate::CliError;
use ehna_tgraph::read_edge_list_path;
use std::io::Write;

const HELP: &str = "ehna train — train node embeddings

usage: ehna train FILE --method NAME [--dim N] [--epochs N] [--walks N]
                  [--walk-length N] [--p F] [--q F] [--seed N]
                  [--bidirectional true] [--threads N] [--pipeline-depth N]
                  --out SNAPSHOT

methods: ehna, ehna-na, ehna-rw, ehna-sl, node2vec, ctdne, line, htne
--threads sets the walk-sampling workers and --pipeline-depth how many
sampled batches the prefetcher may run ahead of the optimizer (0 =
synchronous; results are identical at any depth). EHNA methods print a
sample/compute/stall phase-timing summary after training.
The snapshot is the binary NodeEmbeddings format (load with
NodeEmbeddings::load or `ehna linkpred --emb SNAPSHOT`).";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&[
        "method",
        "dim",
        "epochs",
        "walks",
        "walk-length",
        "p",
        "q",
        "seed",
        "bidirectional",
        "threads",
        "pipeline-depth",
        "out",
    ])?;
    let input = flags.one_positional("edge-list file")?;
    let method = MethodName::parse(
        flags.get("method").ok_or_else(|| CliError::usage("--method is required"))?,
    )?;
    let snapshot = flags.get("out").ok_or_else(|| CliError::usage("--out is required"))?;
    let opts = TrainOptions {
        dim: flags.get_or("dim", 64usize)?,
        epochs: flags.get_or("epochs", 3usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        p: flags.get_or("p", 1.0f64)?,
        q: flags.get_or("q", 1.0f64)?,
        seed: flags.get_or("seed", 42u64)?,
        bidirectional: flags.get_or("bidirectional", false)?,
        threads: flags.get_or("threads", 1usize)?,
        pipeline_depth: flags.get("pipeline-depth").map(str::parse).transpose().map_err(
            |e: std::num::ParseIntError| CliError::usage(format!("--pipeline-depth: {e}")),
        )?,
    };

    let graph = read_edge_list_path(input)?;
    writeln!(
        out,
        "training {} on {} ({} nodes, {} edges)...",
        method.name(),
        input,
        graph.num_nodes(),
        graph.num_edges()
    )
    .map_err(io_err)?;
    let start = std::time::Instant::now();
    let outcome = method.train_full(&graph, &opts)?;
    let emb = outcome.embeddings;
    let f = std::fs::File::create(snapshot).map_err(io_err)?;
    emb.save(f)?;
    if let Some(report) = &outcome.report {
        let phases = report.total_phase_timings();
        writeln!(
            out,
            "epoch loss {:.4} -> {:.4} over {} epochs ({} batches)",
            report.epoch_losses.first().copied().unwrap_or(f64::NAN),
            report.epoch_losses.last().copied().unwrap_or(f64::NAN),
            report.epoch_losses.len(),
            report.batches,
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "phase timings: sample {:.2}s | compute {:.2}s | prefetch stall {:.2}s",
            phases.sample_time.as_secs_f64(),
            phases.compute_time.as_secs_f64(),
            phases.prefetch_stall_time.as_secs_f64(),
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "trained in {:.2}s; wrote {} x {} snapshot to {snapshot}",
        start.elapsed().as_secs_f64(),
        emb.num_nodes(),
        emb.dim()
    )
    .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::{write_edge_list_path, GraphBuilder, NodeEmbeddings};

    fn tiny_file(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut b = GraphBuilder::new();
        for i in 0..12u32 {
            b.add_edge(i, (i + 1) % 13, i as i64, 1.0).unwrap();
            b.add_edge(i, (i + 5) % 13, i as i64 + 1, 1.0).unwrap();
        }
        write_edge_list_path(&b.build().unwrap(), &path).unwrap();
        path
    }

    #[test]
    fn trains_and_saves_snapshot() {
        let input = tiny_file("ehna_cli_train_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_out.bin");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let emb = NodeEmbeddings::load(std::fs::File::open(&snap).unwrap()).unwrap();
        assert_eq!(emb.dim(), 8);
        assert_eq!(emb.num_nodes(), 13);
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn pipelined_flags_print_phase_summary() {
        let input = tiny_file("ehna_cli_train_pipe_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_pipe_out.bin");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--threads",
            "2",
            "--pipeline-depth",
            "3",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("phase timings: sample"), "missing timings in: {text}");
        assert!(text.contains("prefetch stall"), "missing stall in: {text}");
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn method_list_in_help_matches() {
        use crate::method::METHOD_NAMES;
        for name in METHOD_NAMES {
            assert!(HELP.contains(name), "{name} missing from help");
        }
    }

    #[test]
    fn rejects_unknown_flag() {
        let input = tiny_file("ehna_cli_train_in2.txt");
        let args: Vec<String> =
            [input.to_str().unwrap(), "--method", "ehna", "--lr", "0.1", "--out", "/tmp/x.bin"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let mut buf = Vec::new();
        assert!(run(&args, &mut buf).is_err());
        let _ = std::fs::remove_file(input);
    }
}
