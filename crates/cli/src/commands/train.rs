//! `ehna train` — train embeddings on an edge list and save a snapshot.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{MethodName, TrainOptions};
use crate::CliError;
use ehna_tgraph::read_edge_list_path;
use std::io::Write;

const HELP: &str = "ehna train — train node embeddings

usage: ehna train FILE --method NAME [--dim N] [--epochs N] [--walks N]
                  [--walk-length N] [--p F] [--q F] [--seed N]
                  [--bidirectional true] [--threads N] [--pipeline-depth N]
                  [--aggregator lstm|attn] [--heads N]
                  [--checkpoint FILE] [--checkpoint-every N] [--resume]
                  --out SNAPSHOT

methods: ehna, ehna-na, ehna-rw, ehna-sl, ehna-attn, node2vec, ctdne,
line, htne
--threads sets the walk-sampling workers and --pipeline-depth how many
sampled batches the prefetcher may run ahead of the optimizer (0 =
synchronous; results are identical at any depth). EHNA methods print a
sample/compute/stall phase-timing summary after training.
--aggregator (EHNA only) selects the node-level stage: lstm (the paper's
stacked LSTM, default) or attn (Time2Vec + multi-head attention; --heads
sets the head count, which must divide --dim). The ehna-attn method is
shorthand for --method ehna --aggregator attn.
--checkpoint (EHNA only) writes full trainer state (model + optimizer +
RNG) atomically after training; --checkpoint-every N also writes it every
N epochs, rotating the previous file to FILE.bak. --resume continues
training from --checkpoint bit-identically to a run that was never
interrupted (falling back to FILE.bak if FILE is damaged).
The snapshot is the binary NodeEmbeddings format (load with
NodeEmbeddings::load or `ehna linkpred --emb SNAPSHOT`).";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(args, HELP, &["resume"])?;
    flags.expect_known(&[
        "method",
        "dim",
        "epochs",
        "walks",
        "walk-length",
        "p",
        "q",
        "seed",
        "bidirectional",
        "threads",
        "pipeline-depth",
        "aggregator",
        "heads",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "out",
    ])?;
    let input = flags.one_positional("edge-list file")?;
    let method = MethodName::parse(
        flags.get("method").ok_or_else(|| CliError::usage("--method is required"))?,
    )?;
    let snapshot = flags.get("out").ok_or_else(|| CliError::usage("--out is required"))?;
    let opts = TrainOptions {
        dim: flags.get_or("dim", 64usize)?,
        epochs: flags.get_or("epochs", 3usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        p: flags.get_or("p", 1.0f64)?,
        q: flags.get_or("q", 1.0f64)?,
        seed: flags.get_or("seed", 42u64)?,
        bidirectional: flags.get_or("bidirectional", false)?,
        threads: flags.get_or("threads", 1usize)?,
        pipeline_depth: flags.get("pipeline-depth").map(str::parse).transpose().map_err(
            |e: std::num::ParseIntError| CliError::usage(format!("--pipeline-depth: {e}")),
        )?,
        checkpoint: flags.get("checkpoint").map(std::path::PathBuf::from),
        checkpoint_every: flags.get_or("checkpoint-every", 0usize)?,
        resume: flags.has("resume"),
        aggregator: flags
            .get("aggregator")
            .map(str::parse)
            .transpose()
            .map_err(|e: String| CliError::usage(format!("--aggregator: {e}")))?,
        heads: flags
            .get("heads")
            .map(str::parse)
            .transpose()
            .map_err(|e: std::num::ParseIntError| CliError::usage(format!("--heads: {e}")))?,
    };

    let graph = read_edge_list_path(input)?;
    writeln!(
        out,
        "training {} on {} ({} nodes, {} edges)...",
        method.name(),
        input,
        graph.num_nodes(),
        graph.num_edges()
    )
    .map_err(io_err)?;
    let start = std::time::Instant::now();
    let outcome = method.train_full(&graph, &opts)?;
    for warning in &outcome.warnings {
        writeln!(out, "warning: {warning}").map_err(io_err)?;
    }
    let emb = outcome.embeddings;
    // The snapshot gets the same crash-safety discipline as checkpoints:
    // a torn write must never destroy a previous good snapshot.
    ehna_nn::ioutil::atomic_write_path(std::path::Path::new(snapshot), |w| {
        emb.save(w).map_err(|e| std::io::Error::other(e.to_string()))
    })
    .map_err(io_err)?;
    if let Some(report) = &outcome.report {
        let phases = report.total_phase_timings();
        writeln!(
            out,
            "epoch loss {:.4} -> {:.4} over {} epochs ({} batches)",
            report.epoch_losses.first().copied().unwrap_or(f64::NAN),
            report.epoch_losses.last().copied().unwrap_or(f64::NAN),
            report.epoch_losses.len(),
            report.batches,
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "phase timings: sample {:.2}s | compute {:.2}s | prefetch stall {:.2}s",
            phases.sample_time.as_secs_f64(),
            phases.compute_time.as_secs_f64(),
            phases.prefetch_stall_time.as_secs_f64(),
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "trained in {:.2}s; wrote {} x {} snapshot to {snapshot}",
        start.elapsed().as_secs_f64(),
        emb.num_nodes(),
        emb.dim()
    )
    .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::{write_edge_list_path, GraphBuilder, NodeEmbeddings};

    fn tiny_file(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut b = GraphBuilder::new();
        for i in 0..12u32 {
            b.add_edge(i, (i + 1) % 13, i as i64, 1.0).unwrap();
            b.add_edge(i, (i + 5) % 13, i as i64 + 1, 1.0).unwrap();
        }
        write_edge_list_path(&b.build().unwrap(), &path).unwrap();
        path
    }

    #[test]
    fn trains_and_saves_snapshot() {
        let input = tiny_file("ehna_cli_train_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_out.bin");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let emb = NodeEmbeddings::load(std::fs::File::open(&snap).unwrap()).unwrap();
        assert_eq!(emb.dim(), 8);
        assert_eq!(emb.num_nodes(), 13);
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn trains_with_attn_aggregator_flags() {
        let input = tiny_file("ehna_cli_train_attn_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_attn_out.bin");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--aggregator",
            "attn",
            "--heads",
            "2",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let emb = NodeEmbeddings::load(std::fs::File::open(&snap).unwrap()).unwrap();
        assert_eq!(emb.dim(), 8);
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(snap);

        // Invalid head count surfaces as a usage-style config error.
        let input = tiny_file("ehna_cli_train_attn_bad_in.txt");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna-attn",
            "--heads",
            "3",
            "--dim",
            "8",
            "--out",
            "/tmp/ehna_cli_train_attn_bad.bin",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        let err = run(&args, &mut buf).unwrap_err();
        assert!(err.message.contains("heads"), "{}", err.message);
        let _ = std::fs::remove_file(input);
    }

    #[test]
    fn pipelined_flags_print_phase_summary() {
        let input = tiny_file("ehna_cli_train_pipe_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_pipe_out.bin");
        let args: Vec<String> = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--threads",
            "2",
            "--pipeline-depth",
            "3",
            "--out",
            snap.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("phase timings: sample"), "missing timings in: {text}");
        assert!(text.contains("prefetch stall"), "missing stall in: {text}");
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(snap);
    }

    fn run_args(parts: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn checkpoint_and_resume_through_cli() {
        let input = tiny_file("ehna_cli_train_ckpt_in.txt");
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_cli_train_ckpt_out.bin");
        let ckpt = dir.join("ehna_cli_train_ckpt.ckpt");
        let bak = ehna_nn::ioutil::backup_path(&ckpt);
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&bak);
        let common = ["--method", "ehna", "--dim", "8", "--walks", "2", "--walk-length", "3"];

        let mut first = vec![input.to_str().unwrap()];
        first.extend_from_slice(&common);
        first.extend_from_slice(&[
            "--epochs",
            "2",
            "--checkpoint-every",
            "1",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ]);
        let text = run_args(&first).unwrap();
        assert!(!text.contains("warning:"), "unexpected warning: {text}");
        assert!(ckpt.exists(), "checkpoint not written");
        assert!(bak.exists(), "periodic checkpoints did not rotate a backup");

        let mut second = vec![input.to_str().unwrap()];
        second.extend_from_slice(&common);
        second.extend_from_slice(&[
            "--epochs",
            "1",
            "--resume",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ]);
        let text = run_args(&second).unwrap();
        assert!(!text.contains("warning:"), "v2 resume must be warning-free: {text}");
        for p in [&input, &snap, &ckpt, &bak, &ehna_nn::ioutil::backup_path(&snap)] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn v1_checkpoint_resume_surfaces_warning() {
        use ehna_core::{EhnaConfig, Trainer};
        let input = tiny_file("ehna_cli_train_v1_in.txt");
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_cli_train_v1_out.bin");
        let ckpt = dir.join("ehna_cli_train_v1.ckpt");

        // A genuine legacy v1 file whose architecture matches the CLI's
        // EHNA config at --dim 8.
        let graph = ehna_tgraph::read_edge_list_path(&input).unwrap();
        let config = EhnaConfig { dim: 8, num_walks: 2, walk_length: 3, ..Default::default() };
        let trainer = Trainer::new(&graph, config).unwrap();
        let f = std::fs::File::create(&ckpt).unwrap();
        ehna_core::write_checkpoint_v1_for_tests(trainer.model(), f).unwrap();

        let args = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--walks",
            "2",
            "--walk-length",
            "3",
            "--epochs",
            "1",
            "--resume",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ];
        let text = run_args(&args).unwrap();
        assert!(text.contains("warning:"), "v1 resume must warn: {text}");
        assert!(text.contains("not be bit-faithful"), "caveat missing: {text}");
        for p in [&input, &snap, &ckpt] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(ehna_nn::ioutil::backup_path(&ckpt));
        let _ = std::fs::remove_file(ehna_nn::ioutil::backup_path(&snap));
    }

    #[test]
    fn snapshot_writes_are_atomic_and_rotate() {
        let input = tiny_file("ehna_cli_train_atomic_in.txt");
        let snap = std::env::temp_dir().join("ehna_cli_train_atomic_out.bin");
        let bak = ehna_nn::ioutil::backup_path(&snap);
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&bak);
        let args = [
            input.to_str().unwrap(),
            "--method",
            "htne",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--out",
            snap.to_str().unwrap(),
        ];
        run_args(&args).unwrap();
        assert!(snap.exists() && !bak.exists());
        let first = std::fs::read(&snap).unwrap();
        run_args(&args).unwrap();
        assert!(bak.exists(), "second snapshot did not rotate the first to .bak");
        assert_eq!(std::fs::read(&bak).unwrap(), first, ".bak is not the prior snapshot");
        NodeEmbeddings::load(std::fs::File::open(&snap).unwrap()).unwrap();
        for p in [&input, &snap, &bak] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn resume_with_missing_checkpoint_fails_cleanly() {
        let input = tiny_file("ehna_cli_train_missing_in.txt");
        let args = [
            input.to_str().unwrap(),
            "--method",
            "ehna",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--resume",
            "--checkpoint",
            "/nonexistent/dir/x.ckpt",
            "--out",
            "/tmp/ehna_cli_train_missing_out.bin",
        ];
        let err = run_args(&args).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot resume"), "{}", err.message);
        let _ = std::fs::remove_file(input);
    }

    #[test]
    fn method_list_in_help_matches() {
        use crate::method::METHOD_NAMES;
        for name in METHOD_NAMES {
            assert!(HELP.contains(name), "{name} missing from help");
        }
    }

    #[test]
    fn rejects_unknown_flag() {
        let input = tiny_file("ehna_cli_train_in2.txt");
        let args: Vec<String> =
            [input.to_str().unwrap(), "--method", "ehna", "--lr", "0.1", "--out", "/tmp/x.bin"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let mut buf = Vec::new();
        assert!(run(&args, &mut buf).is_err());
        let _ = std::fs::remove_file(input);
    }
}
