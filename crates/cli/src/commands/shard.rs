//! `ehna shard` — partition an embedding snapshot for cluster serving.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_cluster::{plan_shards, plan_shards_quant, MANIFEST_NAME};
use ehna_tgraph::{NameMap, NodeEmbeddings, QuantizedEmbeddings};
use std::io::{BufReader, Read, Write};
use std::path::Path;

const HELP: &str = "ehna shard — partition a snapshot into cluster shards

usage: ehna shard SNAPSHOT --shards N --out DIR [--names FILE]

Splits SNAPSHOT round-robin into N shard snapshots (global node g lands
at local row g/N of shard g%N) and writes them to DIR as shard_I.bin +
shard_I.names, plus a checksummed cluster.manifest describing the
layout. Serve each shard with `ehna serve shard_I.bin --names
shard_I.names --role shard --shard-id I --ehnp-addr ...`, then front
them with `ehna router --manifest DIR --shard ADDR ...`; the routed
answers are byte-identical to serving the unsplit SNAPSHOT.

SNAPSHOT may be a dense (EHNA) snapshot or a quantized EHNQ artifact
from `ehna quantize`. Quantized tables shard by slicing each node's
code row verbatim — never re-encoding — and copying the source's
codebooks/scales into every shard, so quantized clusters keep the
byte-identical guarantee (serve the shards with --mmap if desired).

flags:
  --shards N    number of shards to produce (at least 1, at most the
                node count)
  --out DIR     output directory (created if missing)
  --names FILE  name map for SNAPSHOT (one name per line, line i names
                node i); shard name files then carry the global names,
                so clusters resolve the same keys a single node does";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&["shards", "out", "names"])?;
    let snapshot = flags.one_positional("snapshot file")?;
    let num_shards: u32 = flags.get_or("shards", 0u32)?;
    if num_shards == 0 {
        return Err(CliError::usage(format!("--shards is required (and must be >= 1)\n{HELP}")));
    }
    let Some(out_dir) = flags.get("out") else {
        return Err(CliError::usage(format!("--out is required\n{HELP}")));
    };

    // Auto-detect the snapshot family from its magic bytes, the same
    // way `ehna serve` does.
    let mut magic = [0u8; 4];
    let got = std::fs::File::open(snapshot)
        .and_then(|mut f| f.read(&mut magic))
        .map_err(|e| CliError::runtime(format!("cannot open {snapshot}: {e}")))?;
    let quant = if got == 4 && &magic == b"EHNQ" {
        Some(
            QuantizedEmbeddings::open_path(snapshot, false)
                .map_err(|e| CliError::runtime(format!("cannot load {snapshot}: {e}")))?,
        )
    } else {
        None
    };
    let emb = match quant {
        Some(_) => None,
        None => Some(
            NodeEmbeddings::load_path(snapshot)
                .map_err(|e| CliError::runtime(format!("cannot load {snapshot}: {e}")))?,
        ),
    };
    let names = flags
        .get("names")
        .map(|path| {
            std::fs::File::open(path)
                .map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))
                .and_then(|f| {
                    NameMap::load(BufReader::new(f))
                        .map_err(|e| CliError::runtime(format!("bad name map {path}: {e}")))
                })
        })
        .transpose()?;
    let (n, dim, kind) = match (&quant, &emb) {
        (Some(q), _) => (q.num_nodes(), q.dim(), q.format().label()),
        (None, Some(e)) => (e.num_nodes(), e.dim(), "dense"),
        (None, None) => unreachable!("one of quant/emb is always loaded"),
    };
    writeln!(out, "loaded {n} x {dim} {kind} snapshot from {snapshot}").map_err(io_err)?;

    let dir = Path::new(out_dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::runtime(format!("cannot create {out_dir}: {e}")))?;
    let manifest = match (&quant, &emb) {
        (Some(q), _) => plan_shards_quant(q, names.as_ref(), num_shards, dir),
        (None, Some(e)) => plan_shards(e, names.as_ref(), num_shards, dir),
        (None, None) => unreachable!(),
    }
    .map_err(|e| CliError::runtime(e.to_string()))?;
    for (i, entry) in manifest.shards.iter().enumerate() {
        writeln!(out, "shard {i}: {} nodes -> {}/{}", entry.nodes, out_dir, entry.snapshot)
            .map_err(io_err)?;
    }
    writeln!(
        out,
        "wrote {}/{MANIFEST_NAME} ({} shards, {} nodes, dim {})",
        out_dir, manifest.num_shards, manifest.total_nodes, manifest.dim
    )
    .map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_cluster::ClusterManifest;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shards_a_snapshot_and_writes_a_manifest() {
        let dir = std::env::temp_dir().join("ehna_cli_shard_cmd");
        let _ = std::fs::remove_dir_all(&dir);
        let snap = dir.join("full.bin");
        std::fs::create_dir_all(&dir).unwrap();
        let data: Vec<f32> = (0..10 * 3).map(|i| i as f32).collect();
        NodeEmbeddings::from_vec(3, data).save_path(&snap).unwrap();

        let out_dir = dir.join("cluster");
        let mut buf = Vec::new();
        run(
            &args(&[snap.to_str().unwrap(), "--shards", "3", "--out", out_dir.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3 shards, 10 nodes, dim 3"), "output: {text}");

        let manifest = ClusterManifest::load(&out_dir).unwrap();
        assert_eq!(manifest.num_shards, 3);
        manifest.verify(&out_dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_a_quantized_artifact_by_slicing_codes() {
        use ehna_tgraph::{QuantFormat, QuantSpec};
        let dir = std::env::temp_dir().join("ehna_cli_shard_quant_cmd");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data: Vec<f32> = (0..12 * 4).map(|i| i as f32 * 0.5).collect();
        let emb = NodeEmbeddings::from_vec(4, data);
        let q = QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::Int8)).unwrap();
        let snap = dir.join("full.ehnq");
        q.save_path(&snap).unwrap();

        let out_dir = dir.join("cluster");
        let mut buf = Vec::new();
        run(
            &args(&[snap.to_str().unwrap(), "--shards", "2", "--out", out_dir.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("12 x 4 int8 snapshot"), "output: {text}");

        let manifest = ClusterManifest::load(&out_dir).unwrap();
        manifest.verify(&out_dir).unwrap();
        // Shard files are EHNQ in the source format with verbatim rows.
        let shard0 =
            QuantizedEmbeddings::open_path(out_dir.join(&manifest.shards[0].snapshot), false)
                .unwrap();
        assert_eq!(shard0.format(), QuantFormat::Int8);
        assert_eq!(&*shard0.row(1), &*q.row(2), "global 2 -> shard 0 local 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        let mut buf = Vec::new();
        let err = run(&args(&["snap.bin", "--out", "/tmp/x"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2, "missing --shards: {}", err.message);
        let err = run(&args(&["snap.bin", "--shards", "2"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2, "missing --out: {}", err.message);
        let err = run(
            &args(&["/nonexistent.bin", "--shards", "2", "--out", "/tmp/ehna_shard_nope"]),
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
    }
}
