//! `ehna stream` — replay an edge log into a trained model, refreshing
//! embeddings incrementally and hot-swapping a live `ehna serve`.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{ehna_config, MethodName, TrainOptions};
use crate::CliError;
use ehna_core::load_checkpoint_path;
use ehna_serve::{query_lines, Json};
use ehna_stream::{EdgeLogReader, StreamOptions, StreamProcessor};
use ehna_tgraph::read_edge_list_path;
use std::io::Write;
use std::path::Path;

const HELP: &str = "ehna stream — incremental embedding refresh from an edge log

usage: ehna stream LOG --base EDGELIST --checkpoint CKPT --out SNAPSHOT
                   [--method NAME] [--dim N] [--walks N] [--walk-length N]
                   [--p F] [--q F] [--seed N] [--bidirectional true]
                   [--aggregator lstm|attn] [--heads N] [--nodes N]
                   [--finetune-steps N] [--finetune-lr F]
                   [--full-rebuild-every K]
                   [--reload ADDR] [--poll-ms N] [--once] [--max-batches N]
                   [--checkpoint-out FILE]

Replays batches appended to LOG (see `ehna ingest`) on top of the graph
in --base and the model in --checkpoint. After each batch the dirty
embedding rows are re-aggregated and --out is rewritten atomically; with
--reload, a running `ehna serve` instance serving --out is told to
hot-swap it in (`{\"op\":\"reload\"}`) with zero downtime.

The architecture flags (--method, --dim, --walks, --walk-length, --p,
--q, --bidirectional, --aggregator, --heads) must match the `ehna train`
run that produced --checkpoint; mismatches are rejected at load. --nodes pads the base
graph with isolated trailing ids when the checkpoint was trained with
node headroom.

flags:
  --base FILE          edge list the checkpoint was trained on
  --checkpoint FILE    trained EHNA checkpoint (from `ehna train`)
  --out FILE           embedding snapshot rewritten after every batch
  --nodes N            pad the base graph to N nodes (checkpoint headroom)
  --finetune-steps N   gradient steps per batch; 0 freezes the model,
                       making refresh match a full rebuild near-exactly
                       (default 1)
  --finetune-lr F      reduced learning rate for streaming fine-tune
                       steps (default: the training rate)
  --full-rebuild-every K  refresh every row on every K-th batch (0 = off)
  --reload ADDR        ehna-serve address to send {\"op\":\"reload\"} after
                       each snapshot write
  --poll-ms N          sleep between polls at end-of-log (default 500)
  --once               exit at end-of-log instead of tailing
  --max-batches N      stop after N batches (0 = unlimited)
  --checkpoint-out FILE  write the fine-tuned model here on exit";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(args, HELP, &["once"])?;
    flags.expect_known(&[
        "base",
        "checkpoint",
        "out",
        "method",
        "dim",
        "walks",
        "walk-length",
        "p",
        "q",
        "seed",
        "bidirectional",
        "aggregator",
        "heads",
        "nodes",
        "finetune-steps",
        "finetune-lr",
        "full-rebuild-every",
        "reload",
        "poll-ms",
        "once",
        "max-batches",
        "checkpoint-out",
    ])?;
    let log = flags.one_positional("edge log")?;
    let base = flags.get("base").ok_or_else(|| CliError::usage("--base is required"))?;
    let ckpt =
        flags.get("checkpoint").ok_or_else(|| CliError::usage("--checkpoint is required"))?;
    let snapshot = flags.get("out").ok_or_else(|| CliError::usage("--out is required"))?;

    let method = MethodName::parse(flags.get("method").unwrap_or("ehna"))?;
    let MethodName::Ehna(variant) = method else {
        return Err(CliError::usage(format!(
            "streaming refresh needs an EHNA checkpoint, not {}",
            method.name()
        )));
    };
    let train_opts = TrainOptions {
        dim: flags.get_or("dim", 64usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        p: flags.get_or("p", 1.0f64)?,
        q: flags.get_or("q", 1.0f64)?,
        seed: flags.get_or("seed", 42u64)?,
        bidirectional: flags.get_or("bidirectional", false)?,
        aggregator: flags
            .get("aggregator")
            .map(str::parse)
            .transpose()
            .map_err(|e: String| CliError::usage(format!("--aggregator: {e}")))?,
        heads: flags
            .get("heads")
            .map(str::parse)
            .transpose()
            .map_err(|e: std::num::ParseIntError| CliError::usage(format!("--heads: {e}")))?,
        ..TrainOptions::default()
    };
    let config = ehna_config(variant, &train_opts);

    let stream_opts = StreamOptions {
        finetune_steps: flags.get_or("finetune-steps", 1usize)?,
        full_rebuild_every: flags.get_or("full-rebuild-every", 0u64)?,
        finetune_lr: flags
            .get("finetune-lr")
            .map(str::parse)
            .transpose()
            .map_err(|e| CliError::usage(format!("bad --finetune-lr: {e}")))?,
    };
    let reload_addr = flags.get("reload").map(str::to_string);
    let poll_ms: u64 = flags.get_or("poll-ms", 500u64)?;
    let once = flags.has("once");
    let max_batches: u64 = flags.get_or("max-batches", 0u64)?;

    let mut graph = read_edge_list_path(base)?;
    if let Some(n) = flags
        .get("nodes")
        .map(str::parse)
        .transpose()
        .map_err(|e: std::num::ParseIntError| CliError::usage(format!("bad --nodes: {e}")))?
    {
        if n > graph.num_nodes() {
            graph = graph.padded_to(n);
        }
    }
    let (ckpt_loaded, used_backup) = load_checkpoint_path(Path::new(ckpt), &graph, config)
        .map_err(|e| CliError::runtime(format!("cannot load checkpoint {ckpt}: {e}")))?;
    if used_backup {
        writeln!(out, "warning: checkpoint {ckpt} was unreadable; loaded its .bak backup")
            .map_err(io_err)?;
    }
    for w in &ckpt_loaded.warnings {
        writeln!(out, "warning: {w}").map_err(io_err)?;
    }
    writeln!(
        out,
        "streaming onto {} nodes, {} edges ({} epochs trained)",
        graph.num_nodes(),
        graph.num_edges(),
        ckpt_loaded.model.epochs_trained
    )
    .map_err(io_err)?;

    let mut proc = StreamProcessor::new(graph, ckpt_loaded.model, stream_opts)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let mut reader = EdgeLogReader::open(log).map_err(|e| CliError::runtime(e.to_string()))?;

    loop {
        match reader.next_batch().map_err(|e| CliError::runtime(e.to_string()))? {
            Some(batch) => {
                let outcome =
                    proc.apply_batch(&batch).map_err(|e| CliError::runtime(e.to_string()))?;
                write_snapshot(snapshot, &proc)?;
                let mut line = format!(
                    "batch {}: +{} edges, refreshed {} rows{}",
                    proc.batches_done(),
                    outcome.edges,
                    outcome.refreshed,
                    if outcome.full_rebuild { " (full rebuild)" } else { "" },
                );
                if let Some(loss) = outcome.finetune_loss {
                    line.push_str(&format!(", finetune loss {loss:.4}"));
                }
                if let Some(addr) = reload_addr.as_deref() {
                    let version = push_reload(addr)?;
                    line.push_str(&format!(", served version {version}"));
                }
                writeln!(out, "{line}").map_err(io_err)?;
                if max_batches > 0 && proc.batches_done() >= max_batches {
                    break;
                }
            }
            None if once => {
                if reader.tail_pending() {
                    writeln!(out, "warning: log ends in a torn record (writer crashed?)")
                        .map_err(io_err)?;
                }
                break;
            }
            None => std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1))),
        }
    }

    if let Some(path) = flags.get("checkpoint-out") {
        ehna_nn::ioutil::atomic_write_path(Path::new(path), |w| proc.model().save_checkpoint(w))
            .map_err(io_err)?;
        writeln!(out, "wrote fine-tuned checkpoint to {path}").map_err(io_err)?;
    }
    writeln!(out, "processed {} batches; final snapshot at {snapshot}", proc.batches_done())
        .map_err(io_err)?;
    Ok(())
}

/// Atomically rewrite the served snapshot (same discipline as `ehna
/// train`: a torn write must never destroy the previous good snapshot).
fn write_snapshot(path: &str, proc: &StreamProcessor) -> Result<(), CliError> {
    ehna_nn::ioutil::atomic_write_path(Path::new(path), |w| {
        proc.embeddings().save(w).map_err(|e| std::io::Error::other(e.to_string()))
    })
    .map_err(io_err)
}

/// Tell a running `ehna serve` to hot-swap the snapshot; returns the new
/// snapshot version.
fn push_reload(addr: &str) -> Result<u64, CliError> {
    let responses = query_lines(addr, &[r#"{"op":"reload"}"#.to_string()])
        .map_err(|e| CliError::runtime(format!("reload push to {addr} failed: {e}")))?;
    let resp = responses
        .first()
        .ok_or_else(|| CliError::runtime(format!("no reload response from {addr}")))?;
    let json = Json::parse(resp)
        .map_err(|e| CliError::runtime(format!("bad reload response from {addr}: {e}")))?;
    if json.get("ok") != Some(&Json::Bool(true)) {
        return Err(CliError::runtime(format!("server at {addr} refused reload: {resp}")));
    }
    Ok(json.get("version").and_then(Json::as_f64).unwrap_or(0.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn missing_required_flags_are_usage_errors() {
        let err = run(&args(&["log.wal"]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--base"));
    }

    #[test]
    fn baseline_methods_are_rejected() {
        let err = run(
            &args(&[
                "log.wal",
                "--base",
                "net.txt",
                "--checkpoint",
                "c.bin",
                "--out",
                "s.bin",
                "--method",
                "node2vec",
            ]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("EHNA checkpoint"));
    }

    #[test]
    fn architecture_mismatch_is_reported_at_load() {
        // Train a tiny checkpoint through the real CLI path, then stream
        // with the wrong --dim: the loader must reject it.
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let net = dir.join(format!("ehna_stream_cmd_net_{pid}.txt"));
        let ckpt = dir.join(format!("ehna_stream_cmd_ckpt_{pid}.bin"));
        let emb = dir.join(format!("ehna_stream_cmd_emb_{pid}.bin"));
        let mut lines = String::new();
        for i in 0u32..6 {
            for j in (i + 1)..6 {
                lines.push_str(&format!("{i} {j} {}\n", 10 * (i + j)));
            }
        }
        std::fs::write(&net, lines).unwrap();
        crate::commands::train::run(
            &args(&[
                net.to_str().unwrap(),
                "--method",
                "ehna",
                "--dim",
                "8",
                "--epochs",
                "1",
                "--walks",
                "2",
                "--walk-length",
                "2",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--out",
                emb.to_str().unwrap(),
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        let err = run(
            &args(&[
                "missing.wal",
                "--base",
                net.to_str().unwrap(),
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--out",
                emb.to_str().unwrap(),
                "--dim",
                "16",
                "--once",
            ]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot load checkpoint"), "got: {}", err.message);

        for f in [&net, &ckpt, &emb] {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_file(dir.join(format!("ehna_stream_cmd_ckpt_{pid}.bin.bak")));
    }
}
