//! `ehna quantize` — convert a dense embedding snapshot into an EHNQ
//! quantized artifact (f32 / f16 / int8 / pq) for compact, mmap-able
//! serving.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_nn::ioutil::atomic_write_path;
use ehna_tgraph::{NodeEmbeddings, NodeId, QuantFormat, QuantSpec, QuantizedEmbeddings};
use std::io::{Read, Write};
use std::path::Path;

const HELP: &str = "ehna quantize — produce an EHNQ quantized embedding artifact

usage: ehna quantize SNAPSHOT --out FILE [--format f32|f16|int8|pq]
                     [--pq-m N] [--pq-iters N] [--seed N] [--check]

Re-encodes a dense (EHNA) snapshot as an EHNQ v1 artifact: a versioned,
checksummed, 64-byte-aligned file that `ehna serve` and `ehna shard`
auto-detect, and that `ehna serve --mmap` maps zero-copy so open time
stays O(1) in table size. Formats:

  f32    lossless; 4 bytes/dim (alignment + checksums over raw rows)
  f16    IEEE binary16, round-to-nearest-even; 2 bytes/dim
  int8   per-dimension min/scale affine codes; 1 byte/dim
  pq     product quantization, 256 centroids per sub-space; --pq-m
         bytes per node (pq-m must divide the dimension)

Encoding is deterministic: the same snapshot, format, and seed produce a
byte-identical artifact.

flags:
  --out FILE     output artifact path (written atomically; required)
  --format KIND  target format (default f16)
  --pq-m N       PQ sub-quantizers = code bytes per node (default 8)
  --pq-iters N   Lloyd iterations for PQ codebook training (default 10)
  --seed N       PQ training sample/init seed (default 42)
  --check        re-open the written artifact, verify every checksum,
                 and report the worst per-value decode error";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(args, HELP, &["check"])?;
    flags.expect_known(&["out", "format", "pq-m", "pq-iters", "seed", "check"])?;
    let snapshot = flags.one_positional("snapshot file")?;
    let Some(out_path) = flags.get("out") else {
        return Err(CliError::usage(format!("--out is required\n{HELP}")));
    };
    let label = flags.get("format").unwrap_or("f16");
    let format = QuantFormat::parse_label(label)
        .ok_or_else(|| CliError::usage(format!("unknown format '{label}' (f32|f16|int8|pq)")))?;
    let mut spec = QuantSpec::new(format);
    spec.pq_m = flags.get_or("pq-m", spec.pq_m)?;
    spec.pq_iters = flags.get_or("pq-iters", spec.pq_iters)?;
    spec.seed = flags.get_or("seed", spec.seed)?;

    // A clearer message than the dense loader's parse error when someone
    // points this at an artifact that is already quantized.
    let mut magic = [0u8; 4];
    let got = std::fs::File::open(snapshot)
        .and_then(|mut f| f.read(&mut magic))
        .map_err(|e| CliError::runtime(format!("cannot open {snapshot}: {e}")))?;
    if got == 4 && &magic == b"EHNQ" {
        return Err(CliError::runtime(format!(
            "{snapshot} is already an EHNQ artifact; quantize from the dense snapshot \
             to avoid stacking quantization error"
        )));
    }

    let emb = NodeEmbeddings::load_path(snapshot)
        .map_err(|e| CliError::runtime(format!("cannot load {snapshot}: {e}")))?;
    writeln!(out, "loaded {} x {} snapshot from {snapshot}", emb.num_nodes(), emb.dim())
        .map_err(io_err)?;

    let q = QuantizedEmbeddings::encode(&emb, &spec)
        .map_err(|e| CliError::runtime(format!("encode failed: {e}")))?;
    atomic_write_path(Path::new(out_path), |w| w.write_all(q.as_bytes()))
        .map_err(|e| CliError::runtime(format!("cannot write {out_path}: {e}")))?;

    let dense_bpn = emb.dim() * 4;
    let code_bpn = q.code_bytes_per_node();
    let ratio = if code_bpn > 0 { dense_bpn as f64 / code_bpn as f64 } else { 0.0 };
    writeln!(
        out,
        "wrote {out_path}: format {}, {} code bytes/node ({ratio:.1}x vs f32 dense), \
         {} bytes total",
        format.label(),
        code_bpn,
        q.as_bytes().len()
    )
    .map_err(io_err)?;

    if flags.has("check") {
        // A heap open re-verifies header, meta, and payload checksums
        // against the bytes that actually hit the disk.
        let back = QuantizedEmbeddings::open_path(out_path, false)
            .map_err(|e| CliError::runtime(format!("check failed: {e}")))?;
        let mut worst = 0f32;
        for i in 0..back.num_nodes() {
            let decoded = back.row(i);
            let source = emb.get(NodeId(i as u32));
            for (d, s) in decoded.iter().zip(source) {
                worst = worst.max((d - s).abs());
            }
        }
        if format == QuantFormat::F32 && worst != 0.0 {
            return Err(CliError::runtime(format!(
                "check failed: f32 round-trip is not lossless (max error {worst:e})"
            )));
        }
        writeln!(out, "check ok: checksums verified, max |decoded - source| = {worst:e}")
            .map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn dense_snapshot(dir: &Path, n: usize, dim: usize) -> std::path::PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let snap = dir.join("dense.bin");
        let data: Vec<f32> = (0..n * dim).map(|i| ((i % 23) as f32 - 11.0) * 0.37).collect();
        NodeEmbeddings::from_vec(dim, data).save_path(&snap).unwrap();
        snap
    }

    #[test]
    fn quantizes_every_format_with_check() {
        let dir = std::env::temp_dir().join("ehna_cli_quantize");
        let _ = std::fs::remove_dir_all(&dir);
        let snap = dense_snapshot(&dir, 40, 8);
        for (label, min_ratio) in [("f32", 1.0), ("f16", 2.0), ("int8", 4.0), ("pq", 4.0)] {
            let out_path = dir.join(format!("emb.{label}.ehnq"));
            let mut buf = Vec::new();
            run(
                &args(&[
                    snap.to_str().unwrap(),
                    "--format",
                    label,
                    "--out",
                    out_path.to_str().unwrap(),
                    "--pq-m",
                    "4",
                    "--check",
                ]),
                &mut buf,
            )
            .unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains(&format!("format {label}")), "{label}: {text}");
            assert!(text.contains("check ok"), "{label}: {text}");
            let q = QuantizedEmbeddings::open_path(&out_path, false).unwrap();
            let ratio = (q.dim() * 4) as f64 / q.code_bytes_per_node() as f64;
            assert!(ratio >= min_ratio, "{label}: ratio {ratio}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantizing_an_ehnq_artifact_is_refused() {
        let dir = std::env::temp_dir().join("ehna_cli_quantize_twice");
        let _ = std::fs::remove_dir_all(&dir);
        let snap = dense_snapshot(&dir, 8, 4);
        let first = dir.join("once.ehnq");
        let mut buf = Vec::new();
        run(
            &args(&[snap.to_str().unwrap(), "--format", "f16", "--out", first.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap();
        let err = run(
            &args(&[first.to_str().unwrap(), "--format", "int8", "--out", "/tmp/nope.ehnq"]),
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("already an EHNQ artifact"), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_bad_flags_are_usage_errors() {
        let mut buf = Vec::new();
        let err = run(&args(&["snap.bin"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2, "missing --out: {}", err.message);
        let err =
            run(&args(&["snap.bin", "--out", "/tmp/x", "--format", "bf16"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2, "bad format: {}", err.message);
    }

    #[test]
    fn same_seed_means_byte_identical_artifacts() {
        let dir = std::env::temp_dir().join("ehna_cli_quantize_det");
        let _ = std::fs::remove_dir_all(&dir);
        let snap = dense_snapshot(&dir, 32, 8);
        let a = dir.join("a.ehnq");
        let b = dir.join("b.ehnq");
        for path in [&a, &b] {
            let mut buf = Vec::new();
            run(
                &args(&[
                    snap.to_str().unwrap(),
                    "--format",
                    "pq",
                    "--pq-m",
                    "4",
                    "--seed",
                    "7",
                    "--out",
                    path.to_str().unwrap(),
                ]),
                &mut buf,
            )
            .unwrap();
        }
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
