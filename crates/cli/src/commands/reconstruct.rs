//! `ehna reconstruct` — the §V-D network-reconstruction evaluation.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{MethodName, TrainOptions};
use crate::CliError;
use ehna_eval::reconstruction::precision_at;
use ehna_eval::ReconstructionConfig;
use ehna_tgraph::read_edge_list_path;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

const HELP: &str = "ehna reconstruct — network reconstruction (paper §V-D)

usage: ehna reconstruct FILE [--method NAME]... [--dim N] [--epochs N]
                        [--p 100,1000,10000] [--sample-nodes N]
                        [--repetitions N] [--seed N]

Trains on the full network and reports Precision@P: the fraction of the
top-P dot-product-ranked node pairs that are true edges.";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&[
        "method",
        "dim",
        "epochs",
        "walks",
        "walk-length",
        "p",
        "sample-nodes",
        "repetitions",
        "seed",
    ])?;
    let input = flags.one_positional("edge-list file")?;
    let mut methods: Vec<MethodName> = Vec::new();
    for name in flags.all("method") {
        methods.push(MethodName::parse(name)?);
    }
    if methods.is_empty() {
        methods.push(MethodName::parse("ehna")?);
    }
    let seed = flags.get_or("seed", 42u64)?;
    let ps: Vec<usize> = flags.get_list("p", vec![100, 1_000, 10_000])?;
    let cfg = ReconstructionConfig {
        sample_nodes: flags.get_or("sample-nodes", 600usize)?,
        repetitions: flags.get_or("repetitions", 5usize)?,
    };
    let opts = TrainOptions {
        dim: flags.get_or("dim", 64usize)?,
        epochs: flags.get_or("epochs", 3usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        seed,
        ..Default::default()
    };

    let graph = read_edge_list_path(input)?;
    let mut header = format!("{:<10}", "method");
    for p in &ps {
        header.push_str(&format!(" {:>12}", format!("P={p}")));
    }
    writeln!(out, "{header}").map_err(io_err)?;
    for method in methods {
        let emb = method.train(&graph, &opts)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC0);
        let precisions = precision_at(&graph, &emb, &ps, &cfg, &mut rng);
        let mut row = format!("{:<10}", method.name());
        for v in precisions {
            row.push_str(&format!(" {v:>12.4}"));
        }
        writeln!(out, "{row}").map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_datasets::{generate, Dataset, Scale};
    use ehna_tgraph::write_edge_list_path;

    #[test]
    fn reconstructs_with_line() {
        let path = std::env::temp_dir().join("ehna_cli_rec_test.txt");
        let g = generate(Dataset::DblpLike, Scale::Tiny, 2);
        write_edge_list_path(&g, &path).unwrap();
        let args: Vec<String> = [
            path.to_str().unwrap(),
            "--method",
            "line",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--p",
            "50,200",
            "--sample-nodes",
            "100",
            "--repetitions",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("LINE"));
        assert!(s.contains("P=50"));
        let _ = std::fs::remove_file(path);
    }
}
