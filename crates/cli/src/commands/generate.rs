//! `ehna generate` — synthesize a dataset preset into an edge-list file.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_datasets::{generate, Dataset, Scale};
use ehna_tgraph::write_edge_list_path;
use std::io::Write;

const HELP: &str = "ehna generate — synthesize a temporal network

usage: ehna generate --dataset digg|yelp|tmall|dblp [--scale tiny|small|medium]
                     [--seed N] --out FILE";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&["dataset", "scale", "seed", "out"])?;
    let dataset: Dataset = flags
        .get("dataset")
        .ok_or_else(|| CliError::usage("--dataset is required"))?
        .parse()
        .map_err(CliError::usage)?;
    let scale: Scale = flags.get_or("scale", Scale::Tiny)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let path = flags.get("out").ok_or_else(|| CliError::usage("--out is required"))?;

    let graph = generate(dataset, scale, seed);
    write_edge_list_path(&graph, path)?;
    writeln!(
        out,
        "wrote {}-like network ({} nodes, {} temporal edges) to {path}",
        dataset,
        graph.num_nodes(),
        graph.num_edges()
    )
    .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&v, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn generates_a_file() {
        let path = std::env::temp_dir().join("ehna_cli_gen_test.txt");
        let path_s = path.to_str().unwrap();
        let out = run_cmd(&["--dataset", "dblp", "--seed", "1", "--out", path_s]).unwrap();
        assert!(out.contains("dblp-like"));
        let g = ehna_tgraph::read_edge_list_path(&path).unwrap();
        assert!(g.num_edges() > 500);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn requires_dataset_and_out() {
        assert!(run_cmd(&["--out", "/tmp/x"]).is_err());
        assert!(run_cmd(&["--dataset", "digg"]).is_err());
        assert!(run_cmd(&["--dataset", "marvel", "--out", "/tmp/x"]).is_err());
    }
}
