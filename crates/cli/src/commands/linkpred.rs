//! `ehna linkpred` — the §V-E future-link-prediction evaluation.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::method::{MethodName, TrainOptions};
use crate::CliError;
use ehna_eval::operators::ALL_OPERATORS;
use ehna_eval::{LinkPredictionConfig, LinkPredictionTask};
use ehna_tgraph::read_edge_list_path;
use std::io::Write;

const HELP: &str = "ehna linkpred — future link prediction (paper §V-E)

usage: ehna linkpred FILE [--method NAME]... [--dim N] [--epochs N]
                     [--walks N] [--walk-length N] [--seed N] [--holdout F]

Holds out the newest fraction of edges (default 0.2), trains each method
on the remainder, and reports AUC/F1/precision/recall for all four edge
operators.";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&["method", "dim", "epochs", "walks", "walk-length", "seed", "holdout"])?;
    let input = flags.one_positional("edge-list file")?;
    let mut methods: Vec<MethodName> = Vec::new();
    for name in flags.all("method") {
        methods.push(MethodName::parse(name)?);
    }
    if methods.is_empty() {
        methods.push(MethodName::parse("ehna")?);
    }
    let seed = flags.get_or("seed", 42u64)?;
    let holdout = flags.get_or("holdout", 0.2f64)?;
    let opts = TrainOptions {
        dim: flags.get_or("dim", 64usize)?,
        epochs: flags.get_or("epochs", 3usize)?,
        num_walks: flags.get_or("walks", 5usize)?,
        walk_length: flags.get_or("walk-length", 5usize)?,
        seed,
        ..Default::default()
    };

    let graph = read_edge_list_path(input)?;
    if holdout <= 0.0 || holdout >= 1.0 {
        return Err(CliError::usage("--holdout must be in (0,1)"));
    }
    let task = LinkPredictionTask::prepare(
        &graph,
        LinkPredictionConfig { holdout, seed, ..Default::default() },
    );
    writeln!(
        out,
        "{}: {} training edges, {} future links held out",
        input,
        task.train_graph().num_edges(),
        task.num_positives()
    )
    .map_err(io_err)?;

    writeln!(
        out,
        "{:<10} {:<12} {:>8} {:>8} {:>8} {:>8}",
        "method", "operator", "AUC", "F1", "Prec", "Rec"
    )
    .map_err(io_err)?;
    for method in methods {
        let emb = method.train(task.train_graph(), &opts)?;
        for op in ALL_OPERATORS {
            let m = task.evaluate(&emb, op);
            writeln!(
                out,
                "{:<10} {:<12} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                method.name(),
                op.name(),
                m.auc,
                m.f1,
                m.precision,
                m.recall
            )
            .map_err(io_err)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_datasets::{generate, Dataset, Scale};
    use ehna_tgraph::write_edge_list_path;

    #[test]
    fn evaluates_a_method() {
        let path = std::env::temp_dir().join("ehna_cli_lp_test.txt");
        let g = generate(Dataset::DiggLike, Scale::Tiny, 3);
        write_edge_list_path(&g, &path).unwrap();
        let args: Vec<String> = [
            path.to_str().unwrap(),
            "--method",
            "node2vec",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--walks",
            "2",
            "--walk-length",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Node2Vec"));
        assert!(s.contains("Hadamard"));
        assert_eq!(s.lines().count(), 2 + 4); // header x2 + 4 operator rows
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_holdout_rejected() {
        let path = std::env::temp_dir().join("ehna_cli_lp_test2.txt");
        let g = generate(Dataset::DiggLike, Scale::Tiny, 3);
        write_edge_list_path(&g, &path).unwrap();
        let args: Vec<String> =
            [path.to_str().unwrap(), "--holdout", "1.5"].iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        assert!(run(&args, &mut buf).is_err());
        let _ = std::fs::remove_file(path);
    }
}
