//! `ehna stats` — print statistics of a temporal edge list.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_tgraph::{read_edge_list_path, GraphStats};
use std::io::Write;

const HELP: &str = "ehna stats — temporal network statistics

usage: ehna stats FILE";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&[])?;
    let path = flags.one_positional("edge-list file")?;
    let graph = read_edge_list_path(path)?;
    let stats = GraphStats::compute(&graph);
    writeln!(out, "{stats}").map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::{write_edge_list_path, GraphBuilder};

    #[test]
    fn prints_stats() {
        let path = std::env::temp_dir().join("ehna_cli_stats_test.txt");
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 10, 1.0).unwrap();
        b.add_edge(1, 2, 20, 1.0).unwrap();
        write_edge_list_path(&b.build().unwrap(), &path).unwrap();

        let args = vec![path.to_str().unwrap().to_string()];
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("temporal edges:  2"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_runtime_error() {
        let args = vec!["/definitely/not/here.txt".to_string()];
        let mut buf = Vec::new();
        let err = run(&args, &mut buf).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
