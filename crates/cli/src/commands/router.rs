//! `ehna router` — front a shard cluster with the JSON line protocol.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_cluster::{ClusterManifest, Router, RouterConfig};
use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use ehna_serve::{RequestLimits, Server, ServerConfig};

const HELP: &str = "ehna router — scatter-gather front end for a shard cluster

usage: ehna router --manifest DIR --shard ADDR[,ADDR] [--shard ...]
                   [--addr HOST:PORT] [--no-verify]
                   [--shard-timeout-ms N] [--connect-timeout-ms N]
                   [--probe-interval-ms N] [--probe-timeout-ms N]
                   [--breaker-threshold N] [--breaker-cooldown-ms N]
                   [--reload-timeout-ms N] [--cache-capacity N]
                   [--conn-workers N] [--max-conns N]
                   [--read-timeout-ms N] [--write-timeout-ms N]
                   [--max-line-bytes N] [--max-k N] [--max-pairs N]
                   [--max-batch N] [--drain-ms N]

Clients speak the same JSON line protocol as a standalone `ehna serve`;
the router scatter-gathers each knn/score/batch across every shard over
EHNP v2 (the binary shard protocol) and merges per-shard top-k lists by
(distance, global id) — answers are byte-identical to an unsharded
server. Scatter is pipelined: every shard's request is on the wire
before any reply is read. Give one --shard flag per shard, in shard
order; each value is a comma-separated replica list. Replicas are
health-probed, load-balanced (power of two choices by in-flight count),
failed over on error, and circuit-broken after repeated failures.
Node-keyed knn answers are cached, keyed by the cluster-wide snapshot
version vector; `reload` rolls the cluster shard-by-shard,
replica-by-replica and invalidates the cache by construction.

flags:
  --manifest DIR          directory holding cluster.manifest (from
                          `ehna shard`)
  --shard ADDR[,ADDR]     EHNP replica addresses for one shard;
                          repeat once per shard, in shard-id order
  --addr ADDR             listen address (default 127.0.0.1:7878)
  --no-verify             skip re-hashing shard files under DIR (use
                          when the router host does not hold them)
  --shard-timeout-ms N    per-shard call budget (default 5000)
  --connect-timeout-ms N  replica dial budget (default 2000)
  --probe-interval-ms N   health-probe period; 0 disables (default 2000)
  --probe-timeout-ms N    per-probe budget, kept short so one tar-pit
                          replica cannot stall the probe round and
                          delay another replica's recovery
                          (default 1000)
  --breaker-threshold N   consecutive failures that open a replica's
                          circuit breaker (default 3)
  --breaker-cooldown-ms N how long an open breaker skips its replica
                          (default 5000)
  --reload-timeout-ms N   per-replica rolling-reload budget
                          (default 60000)
  --cache-capacity N      router answer-cache entries; 0 disables
                          (default 1024)

hardening (same client-facing front end as `ehna serve`):
  --conn-workers N --max-conns N --read-timeout-ms N
  --write-timeout-ms N --max-line-bytes N --max-k N --max-pairs N
  --max-batch N --drain-ms N";

/// Switch-style flags (present/absent, no value).
const SWITCHES: &[&str] = &["no-verify"];

/// Parse one `--shard` value into its replica addresses.
fn parse_replicas(shard: usize, value: &str) -> Result<Vec<SocketAddr>, CliError> {
    value
        .split(',')
        .map(|tok| {
            let tok = tok.trim();
            tok.to_socket_addrs()
                .map_err(|e| CliError::usage(format!("bad --shard {shard} address '{tok}': {e}")))?
                .next()
                .ok_or_else(|| {
                    CliError::usage(format!("--shard {shard} address '{tok}' resolved to nothing"))
                })
        })
        .collect()
}

/// Parse flags, load + verify the manifest, build the router, and bind
/// the client socket. Split from [`run`] — and public — so tests can
/// drive a bound router without blocking on the accept loop.
pub fn prepare(args: &[String], out: &mut dyn Write) -> Result<Server, CliError> {
    let flags = Flags::parse_with_switches(args, HELP, SWITCHES)?;
    flags.expect_known(&[
        "manifest",
        "shard",
        "addr",
        "no-verify",
        "shard-timeout-ms",
        "connect-timeout-ms",
        "probe-interval-ms",
        "probe-timeout-ms",
        "breaker-threshold",
        "breaker-cooldown-ms",
        "reload-timeout-ms",
        "cache-capacity",
        "conn-workers",
        "max-conns",
        "read-timeout-ms",
        "write-timeout-ms",
        "max-line-bytes",
        "max-k",
        "max-pairs",
        "max-batch",
        "drain-ms",
    ])?;
    if !flags.positionals().is_empty() {
        return Err(CliError::usage(format!("unexpected positional arguments\n{HELP}")));
    }
    let Some(manifest_dir) = flags.get("manifest") else {
        return Err(CliError::usage(format!("--manifest is required\n{HELP}")));
    };
    let dir = Path::new(manifest_dir);
    let manifest = ClusterManifest::load(dir).map_err(|e| CliError::runtime(e.to_string()))?;
    if !flags.has("no-verify") {
        manifest.verify(dir).map_err(|e| {
            CliError::runtime(format!("{e} (pass --no-verify to skip the file check)"))
        })?;
    }

    let shard_flags = flags.all("shard");
    if shard_flags.is_empty() {
        return Err(CliError::usage(format!(
            "need one --shard flag per shard ({} for this manifest)\n{HELP}",
            manifest.num_shards
        )));
    }
    let replicas: Vec<Vec<SocketAddr>> = shard_flags
        .iter()
        .enumerate()
        .map(|(i, v)| parse_replicas(i, v))
        .collect::<Result<_, _>>()?;

    let defaults = ServerConfig::default();
    let limits = RequestLimits {
        max_k: flags.get_or("max-k", defaults.limits.max_k)?.max(1),
        max_pairs: flags.get_or("max-pairs", defaults.limits.max_pairs)?.max(1),
        max_batch: flags.get_or("max-batch", defaults.limits.max_batch)?.max(1),
    };
    let router_defaults = RouterConfig::default();
    let config = RouterConfig {
        shard_timeout: Duration::from_millis(
            flags
                .get_or("shard-timeout-ms", router_defaults.shard_timeout.as_millis() as u64)?
                .max(1),
        ),
        connect_timeout: Duration::from_millis(
            flags
                .get_or("connect-timeout-ms", router_defaults.connect_timeout.as_millis() as u64)?
                .max(1),
        ),
        probe_interval: Duration::from_millis(
            flags.get_or("probe-interval-ms", router_defaults.probe_interval.as_millis() as u64)?,
        ),
        probe_timeout: Duration::from_millis(
            flags
                .get_or("probe-timeout-ms", router_defaults.probe_timeout.as_millis() as u64)?
                .max(1),
        ),
        breaker_threshold: flags
            .get_or("breaker-threshold", router_defaults.breaker_threshold)?
            .max(1),
        breaker_cooldown: Duration::from_millis(
            flags
                .get_or("breaker-cooldown-ms", router_defaults.breaker_cooldown.as_millis() as u64)?
                .max(1),
        ),
        reload_timeout: Duration::from_millis(
            flags
                .get_or("reload-timeout-ms", router_defaults.reload_timeout.as_millis() as u64)?
                .max(1),
        ),
        cache_capacity: flags.get_or("cache-capacity", router_defaults.cache_capacity)?,
    };

    writeln!(
        out,
        "routing {} shards, {} nodes, dim {} (manifest {})",
        manifest.num_shards, manifest.total_nodes, manifest.dim, manifest_dir
    )
    .map_err(io_err)?;
    for (i, set) in replicas.iter().enumerate() {
        let list: Vec<String> = set.iter().map(SocketAddr::to_string).collect();
        writeln!(out, "shard {i}: replicas [{}]", list.join(", ")).map_err(io_err)?;
    }

    let router = Router::new(manifest, replicas, limits.clone(), config)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    let server_config = ServerConfig {
        conn_workers: flags.get_or("conn-workers", defaults.conn_workers)?.max(1),
        max_connections: flags.get_or("max-conns", defaults.max_connections)?.max(1),
        read_timeout: Duration::from_millis(
            flags.get_or("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?.max(1),
        ),
        write_timeout: Duration::from_millis(
            flags.get_or("write-timeout-ms", defaults.write_timeout.as_millis() as u64)?.max(1),
        ),
        max_line_bytes: flags.get_or("max-line-bytes", defaults.max_line_bytes)?.max(64),
        limits,
        drain_deadline: Duration::from_millis(
            flags.get_or("drain-ms", defaults.drain_deadline.as_millis() as u64)?,
        ),
    };
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::bind_handler(addr, Arc::new(router) as _, server_config)
        .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?;
    writeln!(out, "routing on {}", server.local_addr().map_err(io_err)?).map_err(io_err)?;
    Ok(server)
}

/// Run the subcommand (blocks in the accept loop until killed).
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    prepare(args, out)?.run().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_cluster::{plan_shards, ShardConfig, ShardServer};
    use ehna_serve::{
        query_lines, BruteForceIndex, EmbeddingStore, EngineConfig, Json, KnnIndex, QueryEngine,
    };
    use ehna_tgraph::NodeEmbeddings;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Shard a 12-node table into `dir`, serve every shard over EHNP,
    /// and return the replica addresses in shard order.
    fn cluster(dir: &Path, shards: u32) -> Vec<SocketAddr> {
        std::fs::create_dir_all(dir).unwrap();
        let data: Vec<f32> = (0..12 * 4).map(|i| ((i * 7) % 5) as f32).collect();
        let emb = NodeEmbeddings::from_vec(4, data);
        let manifest = plan_shards(&emb, None, shards, dir).unwrap();
        manifest
            .shards
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let snap = dir.join(&entry.snapshot);
                let names = dir.join(&entry.names);
                let store = Arc::new(
                    EmbeddingStore::open(snap.to_str().unwrap(), Some(names.to_str().unwrap()))
                        .unwrap(),
                );
                let index: Box<dyn KnnIndex> = Box::new(BruteForceIndex::new(Arc::clone(&store)));
                let engine = Arc::new(QueryEngine::new(
                    store,
                    index,
                    EngineConfig { workers: 1, ..Default::default() },
                ));
                let shard = ShardServer::bind(
                    "127.0.0.1:0",
                    engine,
                    RequestLimits::default(),
                    None,
                    ShardConfig { shard_id: i as u32, ..Default::default() },
                )
                .unwrap();
                let addr = shard.local_addr().unwrap();
                // Detach: the test process exits with the shards running.
                let _ = shard.spawn().unwrap();
                addr
            })
            .collect()
    }

    #[test]
    fn routes_queries_to_a_live_cluster() {
        let dir = std::env::temp_dir().join("ehna_cli_router_cmd");
        let _ = std::fs::remove_dir_all(&dir);
        let addrs = cluster(&dir, 2);
        let mut buf = Vec::new();
        let server = prepare(
            &args(&[
                "--manifest",
                dir.to_str().unwrap(),
                "--shard",
                &addrs[0].to_string(),
                "--shard",
                &addrs[1].to_string(),
                "--addr",
                "127.0.0.1:0",
                "--probe-interval-ms",
                "0",
                "--probe-timeout-ms",
                "500",
                "--cache-capacity",
                "64",
            ]),
            &mut buf,
        )
        .unwrap();
        let banner = String::from_utf8(buf).unwrap();
        assert!(banner.contains("routing on"), "banner: {banner}");
        let handle = server.spawn().unwrap();
        let responses = query_lines(
            handle.addr(),
            &[
                r#"{"op":"knn","node":"3","k":2}"#.to_string(),
                r#"{"op":"knn","node":"3","k":2}"#.to_string(),
                r#"{"op":"stats"}"#.to_string(),
            ],
        )
        .unwrap();
        let knn = Json::parse(&responses[0]).unwrap();
        assert_eq!(knn.get("ok"), Some(&Json::Bool(true)), "knn: {}", responses[0]);
        assert_eq!(knn.get("cached"), Some(&Json::Bool(false)), "cold: {}", responses[0]);
        let warm = Json::parse(&responses[1]).unwrap();
        assert_eq!(warm.get("cached"), Some(&Json::Bool(true)), "warm: {}", responses[1]);
        let stats = Json::parse(&responses[2]).unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
        assert_eq!(stats.get("cache_hits").and_then(Json::as_usize), Some(1));
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        let mut buf = Vec::new();
        let err = run(&args(&["--shard", "127.0.0.1:1"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2, "missing --manifest: {}", err.message);
        let err = run(&args(&["--manifest", "/nonexistent/dir"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 1, "missing manifest file: {}", err.message);
    }

    #[test]
    fn replica_count_mismatch_is_a_runtime_error() {
        let dir = std::env::temp_dir().join("ehna_cli_router_mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data: Vec<f32> = (0..8 * 2).map(|i| i as f32).collect();
        plan_shards(&NodeEmbeddings::from_vec(2, data), None, 2, &dir).unwrap();
        let mut buf = Vec::new();
        let err = prepare(
            &args(&["--manifest", dir.to_str().unwrap(), "--shard", "127.0.0.1:1"]),
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("replica sets"), "message: {}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
