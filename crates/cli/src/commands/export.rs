//! `ehna export` — convert a binary embedding snapshot to TSV for
//! plotting or downstream tooling.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_tgraph::{NodeEmbeddings, NodeId};
use std::io::Write;

const HELP: &str = "ehna export — embedding snapshot to TSV

usage: ehna export SNAPSHOT [--out FILE]

Writes one line per node: `node_id\\tv0\\tv1\\t...`. Without --out, prints
to stdout.";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&["out"])?;
    let snapshot = flags.one_positional("snapshot file")?;
    let emb = NodeEmbeddings::load(std::fs::File::open(snapshot).map_err(io_err)?)?;

    let mut sink: Box<dyn Write> = match flags.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).map_err(io_err)?),
        None => Box::new(&mut *out),
    };
    for v in 0..emb.num_nodes() {
        let row = emb.get(NodeId(v as u32));
        let mut line = String::with_capacity(8 + row.len() * 10);
        line.push_str(&v.to_string());
        for x in row {
            line.push('\t');
            line.push_str(&format!("{x}"));
        }
        writeln!(sink, "{line}").map_err(io_err)?;
    }
    sink.flush().map_err(io_err)?;
    drop(sink);
    if let Some(path) = flags.get("out") {
        writeln!(out, "wrote {} x {} embeddings to {path}", emb.num_nodes(), emb.dim())
            .map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_tsv() {
        let dir = std::env::temp_dir();
        let snap = dir.join("ehna_cli_export.bin");
        let emb = NodeEmbeddings::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        emb.save(std::fs::File::create(&snap).unwrap()).unwrap();

        let args = vec![snap.to_str().unwrap().to_string()];
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("0\t1\t2"));

        let tsv = dir.join("ehna_cli_export.tsv");
        let args: Vec<String> = [snap.to_str().unwrap(), "--out", tsv.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let content = std::fs::read_to_string(&tsv).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_file(snap);
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn corrupt_snapshot_is_error() {
        let dir = std::env::temp_dir().join("ehna_cli_export_bad.bin");
        std::fs::write(&dir, b"garbage").unwrap();
        let args = vec![dir.to_str().unwrap().to_string()];
        let mut buf = Vec::new();
        assert!(run(&args, &mut buf).is_err());
        let _ = std::fs::remove_file(dir);
    }
}
