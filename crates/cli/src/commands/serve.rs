//! `ehna serve` — serve an embedding snapshot over line-delimited JSON
//! on TCP.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_cluster::{ShardConfig, ShardServer};
use ehna_serve::{
    BruteForceIndex, EmbeddingStore, EngineConfig, IvfConfig, IvfIndex, KnnIndex, QueryEngine,
    Reloader, RequestLimits, Server, ServerConfig,
};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "ehna serve — serve an embedding snapshot over TCP

usage: ehna serve SNAPSHOT [--names FILE] [--addr HOST:PORT] [--mmap]
                  [--index ivf|brute] [--clusters N] [--nprobe N]
                  [--workers N] [--batch N] [--cache N]
                  [--role standalone|shard] [--shard-id N]
                  [--ehnp-addr HOST:PORT] [--frame-deadline-ms N]
                  [--conn-workers N] [--max-conns N]
                  [--read-timeout-ms N] [--write-timeout-ms N]
                  [--max-line-bytes N] [--max-k N] [--max-pairs N]
                  [--drain-ms N]

Protocol: one JSON request per line, one JSON response per line:
  {\"op\":\"knn\",\"node\":\"alice\",\"k\":10}
  {\"op\":\"knn\",\"vector\":[0.1,0.2],\"k\":5,\"explain\":true}
  {\"op\":\"score\",\"pairs\":[[\"alice\",\"bob\"]]}
  {\"op\":\"stats\"}
  {\"op\":\"reload\"}
Distances are squared Euclidean (Eq. 5): lower = stronger link.
`reload` re-reads SNAPSHOT (and --names) from disk, rebuilds the index
with the same flags, and hot-swaps it in without dropping in-flight
queries; `stats` reports the serving snapshot_version. Pair with
`ehna stream --reload` for live refresh.

flags:
  --names FILE    name map saved alongside the snapshot (one name per
                  line, line i names node i); queries may then use names
  --addr ADDR     listen address (default 127.0.0.1:7878; port 0 picks
                  an ephemeral port)
  --mmap          memory-map EHNQ artifacts (see `ehna quantize`)
                  instead of reading them onto the heap: open and
                  reload time become O(1) in table size and a reload
                  never doubles resident memory; ignored for legacy
                  dense snapshots (and on non-unix platforms)
  --index KIND    ivf (cluster-pruned, default for >= 4096 nodes) or
                  brute (exact, default below that)
  --clusters N    IVF cluster count (default sqrt(n))
  --nprobe N      IVF clusters probed per query (default 8)
  --workers N     query worker threads (default 2)
  --batch N       max requests drained per worker wakeup (default 32)
  --cache N       hot-node cache entries (default 1024, 0 disables)

cluster role (see `ehna shard` / `ehna router`):
  --role KIND           standalone (default) or shard; a shard also
                        serves EHNP v1 — the binary router protocol —
                        on --ehnp-addr, sharing the JSON port's engine,
                        stats, and hot-swapped snapshots
  --shard-id N          this shard's id in the cluster (default 0;
                        reported by `stats` on both ports)
  --ehnp-addr ADDR      EHNP listen address (default 127.0.0.1:7879;
                        port 0 picks an ephemeral port)
  --frame-deadline-ms N drop a router connection stalled mid-frame this
                        long (default 10000; idle keep-alive is fine)

hardening (see README, 'Operating ehna-serve'):
  --conn-workers N      connection-handler threads (default 4)
  --max-conns N         concurrent-connection cap; arrivals beyond it
                        get {\"ok\":false,\"error\":\"overloaded\"}
                        (default 64)
  --read-timeout-ms N   drop a connection idle/stalled on read this
                        long (default 30000)
  --write-timeout-ms N  drop a client not draining its response this
                        long (default 10000)
  --max-line-bytes N    longest accepted request line (default 1048576)
  --max-k N             largest k a knn request may ask (default 1024)
  --max-pairs N         most pairs one score request may send
                        (default 4096)
  --max-batch N         most sub-requests one batch envelope may carry
                        (default 256)
  --drain-ms N          shutdown grace for in-flight requests
                        (default 5000)";

/// A bound-but-not-yet-serving `ehna serve` process: the JSON server,
/// plus the EHNP endpoint when `--role shard` was given.
pub struct PreparedServe {
    /// The JSON line-protocol server (always present).
    pub server: Server,
    /// The EHNP v1 shard endpoint (`--role shard` only).
    pub shard: Option<ShardServer>,
}

impl std::fmt::Debug for PreparedServe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedServe").field("shard", &self.shard).finish_non_exhaustive()
    }
}

/// Parse flags, load the snapshot, build the index, and bind the
/// socket(s). Split from [`run`] — and public — so tests and embedders
/// can drive a bound server without blocking on the accept loop.
pub fn prepare(args: &[String], out: &mut dyn Write) -> Result<PreparedServe, CliError> {
    let flags = Flags::parse_with_switches(args, HELP, &["mmap"])?;
    flags.expect_known(&[
        "names",
        "addr",
        "mmap",
        "index",
        "clusters",
        "nprobe",
        "workers",
        "batch",
        "cache",
        "role",
        "shard-id",
        "ehnp-addr",
        "frame-deadline-ms",
        "conn-workers",
        "max-conns",
        "read-timeout-ms",
        "write-timeout-ms",
        "max-line-bytes",
        "max-k",
        "max-pairs",
        "max-batch",
        "drain-ms",
    ])?;
    let snapshot = flags.one_positional("snapshot file")?;
    let mmap = flags.has("mmap");
    let store = Arc::new(
        EmbeddingStore::open_with(snapshot, flags.get("names"), mmap)
            .map_err(|e| CliError::runtime(e.to_string()))?,
    );
    writeln!(
        out,
        "loaded {} x {} snapshot from {snapshot} ({}, {})",
        store.num_nodes(),
        store.dim(),
        store.format_label(),
        if store.is_mmap() { "mmap" } else { "heap" }
    )
    .map_err(io_err)?;

    let kind = match flags.get("index") {
        Some(k) => k.to_string(),
        None => if store.num_nodes() >= 4096 { "ivf" } else { "brute" }.to_string(),
    };
    let clusters: Option<usize> = flags
        .get("clusters")
        .map(str::parse)
        .transpose()
        .map_err(|e| CliError::usage(format!("bad --clusters: {e}")))?;
    let nprobe: usize = flags.get_or("nprobe", 8usize)?;
    let index: Box<dyn KnnIndex> = match kind.as_str() {
        "brute" => Box::new(BruteForceIndex::new(Arc::clone(&store))),
        "ivf" => {
            let config = IvfConfig { num_clusters: clusters, nprobe, ..Default::default() };
            let ivf = IvfIndex::build(Arc::clone(&store), config);
            writeln!(
                out,
                "built ivf index: {} clusters, nprobe {}",
                ivf.num_clusters(),
                ivf.nprobe()
            )
            .map_err(io_err)?;
            Box::new(ivf)
        }
        other => return Err(CliError::usage(format!("unknown index '{other}'"))),
    };

    let engine_config = EngineConfig {
        workers: flags.get_or("workers", 2usize)?.max(1),
        batch_max: flags.get_or("batch", 32usize)?.max(1),
        cache_capacity: flags.get_or("cache", 1024usize)?,
    };
    let engine = Arc::new(QueryEngine::new(store, index, engine_config));

    let defaults = ServerConfig::default();
    let server_config = ServerConfig {
        conn_workers: flags.get_or("conn-workers", defaults.conn_workers)?.max(1),
        max_connections: flags.get_or("max-conns", defaults.max_connections)?.max(1),
        read_timeout: Duration::from_millis(
            flags.get_or("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?.max(1),
        ),
        write_timeout: Duration::from_millis(
            flags.get_or("write-timeout-ms", defaults.write_timeout.as_millis() as u64)?.max(1),
        ),
        max_line_bytes: flags.get_or("max-line-bytes", defaults.max_line_bytes)?.max(64),
        limits: RequestLimits {
            max_k: flags.get_or("max-k", defaults.limits.max_k)?.max(1),
            max_pairs: flags.get_or("max-pairs", defaults.limits.max_pairs)?.max(1),
            max_batch: flags.get_or("max-batch", defaults.limits.max_batch)?.max(1),
        },
        drain_deadline: Duration::from_millis(
            flags.get_or("drain-ms", defaults.drain_deadline.as_millis() as u64)?,
        ),
    };

    // The `reload` op re-reads the same snapshot path with the same
    // index flags, so an `ehna stream` writer (or any out-of-band
    // retrain) can hot-swap the served table without a restart.
    let snapshot_path = snapshot.to_string();
    let names_path = flags.get("names").map(str::to_string);
    let reload_kind = kind.clone();
    let reloader: Reloader = Arc::new(move || {
        let store = Arc::new(EmbeddingStore::open_with(
            snapshot_path.as_str(),
            names_path.as_deref(),
            mmap,
        )?);
        let index: Box<dyn KnnIndex> = match reload_kind.as_str() {
            "brute" => Box::new(BruteForceIndex::new(Arc::clone(&store))),
            _ => Box::new(IvfIndex::build(
                Arc::clone(&store),
                IvfConfig { num_clusters: clusters, nprobe, ..Default::default() },
            )),
        };
        Ok((store, index))
    });

    // `--role shard` binds the EHNP endpoint on the same engine, so the
    // router's binary traffic and local JSON debugging see one coherent
    // view (stats, counters, snapshot version).
    let shard = match flags.get("role").unwrap_or("standalone") {
        "standalone" => None,
        "shard" => {
            let ehnp_addr = flags.get("ehnp-addr").unwrap_or("127.0.0.1:7879");
            let shard_config = ShardConfig {
                shard_id: flags.get_or("shard-id", 0u32)?,
                frame_deadline: Duration::from_millis(
                    flags.get_or("frame-deadline-ms", 10_000u64)?.max(1),
                ),
                ..Default::default()
            };
            let shard = ShardServer::bind(
                ehnp_addr,
                Arc::clone(&engine),
                server_config.limits.clone(),
                Some(Arc::clone(&reloader)),
                shard_config,
            )
            .map_err(|e| CliError::runtime(format!("cannot bind EHNP on {ehnp_addr}: {e}")))?;
            writeln!(
                out,
                "shard {} serving EHNP on {}",
                flags.get_or("shard-id", 0u32)?,
                shard.local_addr().map_err(io_err)?
            )
            .map_err(io_err)?;
            Some(shard)
        }
        other => return Err(CliError::usage(format!("unknown role '{other}'"))),
    };

    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::bind_with(addr, engine, server_config)
        .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?
        .with_reloader(reloader);
    writeln!(out, "serving on {}", server.local_addr().map_err(io_err)?).map_err(io_err)?;
    Ok(PreparedServe { server, shard })
}

/// Run the subcommand (blocks in the accept loop until killed).
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let prepared = prepare(args, out)?;
    // The shard endpoint's accept loop runs on its own thread for the
    // life of the process; the JSON accept loop blocks here.
    let _shard = prepared.shard.map(ShardServer::spawn).transpose().map_err(io_err)?;
    prepared.server.run().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_serve::{query_lines, Json};
    use ehna_tgraph::NodeEmbeddings;

    fn snapshot_file(name: &str, n: usize, dim: usize) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let data: Vec<f32> = (0..n * dim).map(|i| (i % 17) as f32 * 0.25).collect();
        NodeEmbeddings::from_vec(dim, data).save_path(&path).unwrap();
        path
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serves_over_the_wire() {
        let snap = snapshot_file("ehna_cli_serve.bin", 30, 4);
        let mut buf = Vec::new();
        let prepared = prepare(
            &args(&[snap.to_str().unwrap(), "--addr", "127.0.0.1:0", "--workers", "1"]),
            &mut buf,
        )
        .unwrap();
        assert!(prepared.shard.is_none(), "standalone must not bind EHNP");
        let handle = prepared.server.spawn().unwrap();
        let banner = String::from_utf8(buf).unwrap();
        assert!(banner.contains("serving on"), "banner: {banner}");

        let responses =
            query_lines(handle.addr(), &[r#"{"op":"knn","node":"3","k":2}"#.to_string()]).unwrap();
        let resp = Json::parse(&responses[0]).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown();
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn ivf_flags_are_honored() {
        let snap = snapshot_file("ehna_cli_serve_ivf.bin", 64, 4);
        let mut buf = Vec::new();
        let server = prepare(
            &args(&[
                snap.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--index",
                "ivf",
                "--clusters",
                "4",
                "--nprobe",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();
        drop(server);
        let banner = String::from_utf8(buf).unwrap();
        assert!(banner.contains("4 clusters, nprobe 2"), "banner: {banner}");
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn shard_role_serves_both_protocols() {
        use ehna_cluster::{MuxClient, Request, Response};

        let snap = snapshot_file("ehna_cli_serve_shard.bin", 30, 4);
        let mut buf = Vec::new();
        let prepared = prepare(
            &args(&[
                snap.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--role",
                "shard",
                "--shard-id",
                "2",
                "--ehnp-addr",
                "127.0.0.1:0",
                "--workers",
                "1",
            ]),
            &mut buf,
        )
        .unwrap();
        let banner = String::from_utf8(buf).unwrap();
        assert!(banner.contains("shard 2 serving EHNP on"), "banner: {banner}");
        let shard = prepared.shard.expect("--role shard must bind EHNP");
        let ehnp_addr = shard.local_addr().unwrap();
        let shard_handle = shard.spawn().unwrap();
        let handle = prepared.server.spawn().unwrap();

        // Binary port answers router traffic...
        let client =
            MuxClient::connect(ehnp_addr, Duration::from_secs(5), Duration::from_secs(5)).unwrap();
        let pong = client.call(&Request::Ping, Duration::from_secs(5)).unwrap();
        assert_eq!(pong, Response::Pong { version: 1 });
        drop(client);

        // ...while the JSON port still works and reports the identity.
        let responses = query_lines(handle.addr(), &[r#"{"op":"stats"}"#.to_string()]).unwrap();
        let stats = Json::parse(&responses[0]).unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("shard"));
        assert_eq!(stats.get("shard_id").and_then(Json::as_f64), Some(2.0));

        handle.shutdown();
        shard_handle.shutdown();
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn mmap_serves_a_quantized_snapshot() {
        use ehna_tgraph::{QuantFormat, QuantSpec, QuantizedEmbeddings};
        let dir = std::env::temp_dir().join("ehna_cli_serve_mmap");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data: Vec<f32> = (0..30 * 4).map(|i| (i % 17) as f32 * 0.25).collect();
        let emb = NodeEmbeddings::from_vec(4, data);
        let snap = dir.join("emb.f16.ehnq");
        QuantizedEmbeddings::encode(&emb, &QuantSpec::new(QuantFormat::F16))
            .unwrap()
            .save_path(&snap)
            .unwrap();

        let mut buf = Vec::new();
        let prepared = prepare(
            &args(&[snap.to_str().unwrap(), "--mmap", "--addr", "127.0.0.1:0", "--workers", "1"]),
            &mut buf,
        )
        .unwrap();
        let banner = String::from_utf8(buf).unwrap();
        let mode = if cfg!(unix) { "mmap" } else { "heap" };
        assert!(banner.contains(&format!("(f16, {mode})")), "banner: {banner}");
        let handle = prepared.server.spawn().unwrap();

        // Queries answer, and `reload` re-maps the same artifact.
        let responses = query_lines(
            handle.addr(),
            &[
                r#"{"op":"knn","node":"3","k":2}"#.to_string(),
                r#"{"op":"reload"}"#.to_string(),
                r#"{"op":"knn","node":"3","k":2}"#.to_string(),
            ],
        )
        .unwrap();
        for (i, line) in responses.iter().enumerate() {
            let resp = Json::parse(line).unwrap();
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "response {i}: {line}");
        }
        assert_eq!(responses[0], responses[2].replace(",\"cached\":true", ",\"cached\":false"));
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_role_is_a_usage_error() {
        let snap = snapshot_file("ehna_cli_serve_badrole.bin", 8, 2);
        let mut buf = Vec::new();
        let err =
            prepare(&args(&[snap.to_str().unwrap(), "--role", "leader"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("leader"), "message: {}", err.message);
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn hardening_flags_are_honored() {
        let snap = snapshot_file("ehna_cli_serve_limits.bin", 30, 4);
        let mut buf = Vec::new();
        let server = prepare(
            &args(&[
                snap.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--max-k",
                "2",
                "--max-conns",
                "8",
                "--read-timeout-ms",
                "2000",
            ]),
            &mut buf,
        )
        .unwrap();
        let handle = server.server.spawn().unwrap();
        let responses = query_lines(
            handle.addr(),
            &[
                r#"{"op":"knn","node":"3","k":5}"#.to_string(),
                r#"{"op":"knn","node":"3","k":2}"#.to_string(),
            ],
        )
        .unwrap();
        let over = Json::parse(&responses[0]).unwrap();
        assert_eq!(over.get("ok"), Some(&Json::Bool(false)), "k over --max-k accepted");
        assert!(over.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        let ok = Json::parse(&responses[1]).unwrap();
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown();
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn reload_over_the_wire_picks_up_a_rewritten_snapshot() {
        let snap = snapshot_file("ehna_cli_serve_reload.bin", 30, 4);
        let mut buf = Vec::new();
        let server = prepare(
            &args(&[snap.to_str().unwrap(), "--addr", "127.0.0.1:0", "--workers", "1"]),
            &mut buf,
        )
        .unwrap();
        let handle = server.server.spawn().unwrap();

        // Grow the snapshot on disk, then ask the server to hot-swap it.
        let data: Vec<f32> = (0..50 * 4).map(|i| (i % 13) as f32 * 0.5).collect();
        NodeEmbeddings::from_vec(4, data).save_path(&snap).unwrap();
        let responses = query_lines(
            handle.addr(),
            &[
                r#"{"op":"knn","node":"45","k":2}"#.to_string(),
                r#"{"op":"reload"}"#.to_string(),
                r#"{"op":"knn","node":"45","k":2}"#.to_string(),
                r#"{"op":"stats"}"#.to_string(),
            ],
        )
        .unwrap();
        let before = Json::parse(&responses[0]).unwrap();
        assert_eq!(before.get("ok"), Some(&Json::Bool(false)), "node 45 served pre-reload");
        let reload = Json::parse(&responses[1]).unwrap();
        assert_eq!(reload.get("ok"), Some(&Json::Bool(true)), "reload: {}", responses[1]);
        assert_eq!(reload.get("version").and_then(Json::as_f64), Some(2.0));
        assert_eq!(reload.get("nodes").and_then(Json::as_f64), Some(50.0));
        let after = Json::parse(&responses[2]).unwrap();
        assert_eq!(after.get("ok"), Some(&Json::Bool(true)), "node 45 missing post-reload");
        let stats = Json::parse(&responses[3]).unwrap();
        assert_eq!(stats.get("snapshot_version").and_then(Json::as_f64), Some(2.0));
        assert_eq!(stats.get("reloads").and_then(Json::as_f64), Some(1.0));
        handle.shutdown();
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        let snap = snapshot_file("ehna_cli_serve_bad.bin", 8, 2);
        let mut buf = Vec::new();
        let err =
            prepare(&args(&[snap.to_str().unwrap(), "--index", "faiss"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 2);
        let err = prepare(&args(&["/nonexistent/snapshot.bin"]), &mut buf).unwrap_err();
        assert_eq!(err.code, 1);
        let _ = std::fs::remove_file(snap);
    }
}
