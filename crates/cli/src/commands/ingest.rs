//! `ehna ingest` — append an edge-list file to a crash-safe edge log.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_stream::EdgeLogWriter;
use ehna_tgraph::read_edge_list_path;
use std::io::Write;

const HELP: &str = "ehna ingest — append edges to a streaming edge log

usage: ehna ingest LOG EDGEFILE [--batch N]

Reads EDGEFILE (the same whitespace `src dst t [w]` format `ehna train`
consumes), sorts it chronologically, and appends it to LOG in records of
--batch edges (default 256). LOG is created if missing; an existing log
is recovered first (a torn final record from a crashed writer is
truncated away, never replayed as data). Each record carries a length
prefix and an FNV-1a checksum, so a crash mid-append can lose at most
the record being written.

Consume the log with `ehna stream`.

flags:
  --batch N   edges per appended record (default 256)";

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, HELP)?;
    flags.expect_known(&["batch"])?;
    let positionals = flags.positionals();
    let [log, edgefile] = positionals else {
        return Err(CliError::usage(format!(
            "expected LOG and EDGEFILE, got {} positional arguments\n{HELP}",
            positionals.len()
        )));
    };
    let batch = flags.get_or("batch", 256usize)?.max(1);

    let graph = read_edge_list_path(edgefile)?;
    let log_path = std::path::Path::new(log);
    let mut writer = if log_path.exists() {
        let w = EdgeLogWriter::open(log_path).map_err(io_err)?;
        if w.recovered_bytes() > 0 {
            writeln!(out, "recovered {}: dropped {} torn bytes", log, w.recovered_bytes())
                .map_err(io_err)?;
        }
        w
    } else {
        EdgeLogWriter::create(log_path).map_err(io_err)?
    };

    let mut records = 0usize;
    for chunk in graph.edges().chunks(batch) {
        writer.append(chunk).map_err(io_err)?;
        records += 1;
    }
    writeln!(
        out,
        "appended {} edges in {} records to {} (log now {} bytes)",
        graph.num_edges(),
        records,
        log,
        writer.offset()
    )
    .map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_stream::EdgeLogReader;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn edge_file(name: &str, lines: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("{name}_{}", std::process::id()));
        std::fs::write(&path, lines).unwrap();
        path
    }

    #[test]
    fn ingest_appends_batched_records() {
        let edges = edge_file("ehna_ingest_edges.txt", "0 1 10\n1 2 20\n0 2 30\n2 3 40\n");
        let log = std::env::temp_dir().join(format!("ehna_ingest_{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&log);

        let mut buf = Vec::new();
        run(&args(&[log.to_str().unwrap(), edges.to_str().unwrap(), "--batch", "3"]), &mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("appended 4 edges in 2 records"), "output: {text}");

        // A second ingest appends, not truncates.
        run(&args(&[log.to_str().unwrap(), edges.to_str().unwrap()]), &mut Vec::new()).unwrap();
        let batches = EdgeLogReader::open(&log).unwrap().read_all().unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 8);

        let _ = std::fs::remove_file(edges);
        let _ = std::fs::remove_file(log);
    }

    #[test]
    fn missing_positionals_are_usage_errors() {
        let err = run(&args(&["only-one.wal"]), &mut Vec::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("EDGEFILE"));
    }
}
