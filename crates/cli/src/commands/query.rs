//! `ehna query` — one-shot client for a running `ehna serve` instance.

use crate::commands::io_err;
use crate::flags::Flags;
use crate::CliError;
use ehna_serve::{query_lines_detailed, Json};
use std::io::Write;
use std::time::Duration;

const HELP: &str = "ehna query — query a running `ehna serve` instance

usage: ehna query --addr HOST:PORT (--node KEY | --vector V | --pairs P |
                  --stats | --ping) [--k N] [--explain] [--raw]
                  [--timeout-ms N]

exactly one of:
  --node KEY      top-k neighbors of a stored node (name or decimal id)
  --vector V      top-k neighbors of a free vector, e.g. --vector 0.1,0.2
  --pairs P       link scores for candidate edges, e.g. --pairs a:b,c:d
                  (squared Euclidean, Eq. 5 — lower = stronger link)
  --stats         serving counters and latency percentiles
  --ping          liveness check

flags:
  --addr ADDR     server address (default 127.0.0.1:7878)
  --k N           neighbors to return (default 10)
  --explain       include probed IVF centroids and the exact-vs-approx
                  rank agreement with each k-NN answer
  --raw           print the raw JSON response instead of formatting
  --timeout-ms N  connect/read/write timeout; a stuck server becomes a
                  clear error instead of a hang (default 10000)";

/// Switch-style flags (present/absent, no value).
const SWITCHES: &[&str] = &["stats", "ping", "explain", "raw"];

/// Build the request document from the parsed flags.
fn build_request(flags: &Flags) -> Result<Json, CliError> {
    let k = flags.get_or("k", 10usize)?;
    let explain = flags.has("explain");
    let modes = [
        flags.has("node"),
        flags.has("vector"),
        flags.has("pairs"),
        flags.has("stats"),
        flags.has("ping"),
    ];
    if modes.iter().filter(|&&m| m).count() != 1 {
        return Err(CliError::usage(format!(
            "need exactly one of --node/--vector/--pairs/--stats/--ping\n{HELP}"
        )));
    }
    if let Some(node) = flags.get("node") {
        let mut fields = vec![
            ("op".to_string(), Json::Str("knn".into())),
            ("node".to_string(), Json::Str(node.to_string())),
            ("k".to_string(), Json::Num(k as f64)),
        ];
        if explain {
            fields.push(("explain".to_string(), Json::Bool(true)));
        }
        return Ok(Json::Obj(fields));
    }
    if let Some(vector) = flags.get("vector") {
        let values: Vec<Json> = vector
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| CliError::usage(format!("bad --vector entry '{tok}': {e}")))
            })
            .collect::<Result<_, _>>()?;
        let mut fields = vec![
            ("op".to_string(), Json::Str("knn".into())),
            ("vector".to_string(), Json::Arr(values)),
            ("k".to_string(), Json::Num(k as f64)),
        ];
        if explain {
            fields.push(("explain".to_string(), Json::Bool(true)));
        }
        return Ok(Json::Obj(fields));
    }
    if let Some(pairs) = flags.get("pairs") {
        let parsed: Vec<Json> = pairs
            .split(',')
            .map(|pair| {
                let (a, b) = pair.split_once(':').ok_or_else(|| {
                    CliError::usage(format!("bad --pairs entry '{pair}' (want src:dst)"))
                })?;
                Ok(Json::Arr(vec![
                    Json::Str(a.trim().to_string()),
                    Json::Str(b.trim().to_string()),
                ]))
            })
            .collect::<Result<_, CliError>>()?;
        return Ok(Json::obj([("op", Json::Str("score".into())), ("pairs", Json::Arr(parsed))]));
    }
    if flags.has("stats") {
        return Ok(Json::obj([("op", Json::Str("stats".into()))]));
    }
    Ok(Json::obj([("op", Json::Str("ping".into()))]))
}

/// Render a response document for humans.
fn format_response(resp: &Json, out: &mut dyn Write) -> std::io::Result<()> {
    if resp.get("ok") != Some(&Json::Bool(true)) {
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("unknown error");
        return writeln!(out, "server error: {msg}");
    }
    if let Some(neighbors) = resp.get("neighbors").and_then(Json::as_arr) {
        let cached = resp.get("cached") == Some(&Json::Bool(true));
        writeln!(
            out,
            "rank  node                      id      dist{}",
            if cached { "   (cached)" } else { "" }
        )?;
        for (rank, nb) in neighbors.iter().enumerate() {
            writeln!(
                out,
                "{:>4}  {:<24}  {:>6}  {:.6}",
                rank + 1,
                nb.get("node").and_then(Json::as_str).unwrap_or("?"),
                nb.get("id").and_then(Json::as_f64).unwrap_or(-1.0) as i64,
                nb.get("dist").and_then(Json::as_f64).unwrap_or(f64::NAN),
            )?;
        }
        if let Some(explain) = resp.get("explain") {
            let probed = explain
                .get("probed_centroids")
                .and_then(Json::as_arr)
                .map(|cs| {
                    cs.iter()
                        .filter_map(Json::as_f64)
                        .map(|c| (c as i64).to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            writeln!(out, "probed centroids: [{probed}]")?;
            if let Some(scanned) = explain.get("scanned").and_then(Json::as_f64) {
                writeln!(out, "rows scanned exactly: {}", scanned as i64)?;
            }
            if let Some(agree) = explain.get("rank_agreement").and_then(Json::as_f64) {
                writeln!(out, "exact/approx rank agreement: {agree:.3}")?;
            }
        }
        return Ok(());
    }
    if let Some(scores) = resp.get("scores").and_then(Json::as_arr) {
        for (i, s) in scores.iter().enumerate() {
            writeln!(out, "pair {i}: score {:.6}", s.as_f64().unwrap_or(f64::NAN))?;
        }
        return Ok(());
    }
    if resp.get("pong").is_some() {
        return writeln!(out, "pong");
    }
    // stats (or any future op): dump fields one per line.
    if let Json::Obj(fields) = resp {
        for (key, value) in fields {
            if key != "ok" {
                writeln!(out, "{key}: {value}")?;
            }
        }
    }
    Ok(())
}

/// Run the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(args, HELP, SWITCHES)?;
    flags.expect_known(&[
        "addr",
        "node",
        "vector",
        "pairs",
        "stats",
        "ping",
        "k",
        "explain",
        "raw",
        "timeout-ms",
    ])?;
    if !flags.positionals().is_empty() {
        return Err(CliError::usage(format!("unexpected positional arguments\n{HELP}")));
    }
    let request = build_request(&flags)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let timeout = Duration::from_millis(flags.get_or("timeout-ms", 10_000u64)?.max(1));
    // The typed client error tells a human what to do next: a connect
    // failure means the server is down (start it, fix the address),
    // while a mid-stream timeout means it is up but stuck or overloaded.
    let responses = query_lines_detailed(addr, &[request.to_string()], timeout).map_err(|e| {
        if e.is_connect() {
            CliError::runtime(format!("server at {addr} is unreachable: {e}"))
        } else {
            CliError::runtime(format!("server at {addr} accepted the connection but: {e}"))
        }
    })?;
    let line = responses.into_iter().next().unwrap_or_default();
    if flags.has("raw") {
        writeln!(out, "{line}").map_err(io_err)?;
        return Ok(());
    }
    let resp = Json::parse(&line)
        .map_err(|e| CliError::runtime(format!("bad response from server: {e}")))?;
    format_response(&resp, out).map_err(io_err)?;
    if resp.get("ok") != Some(&Json::Bool(true)) {
        return Err(CliError::runtime("server reported an error".to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Flags {
        let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        Flags::parse_with_switches(&args, HELP, SWITCHES).unwrap()
    }

    #[test]
    fn builds_knn_request() {
        let req = build_request(&parse(&["--node", "alice", "--k", "3"])).unwrap();
        assert_eq!(req.to_string(), r#"{"op":"knn","node":"alice","k":3}"#);
        let req = build_request(&parse(&["--node", "alice", "--explain"])).unwrap();
        assert!(req.to_string().contains(r#""explain":true"#));
    }

    #[test]
    fn builds_vector_and_pairs_requests() {
        let req = build_request(&parse(&["--vector", "0.5, -1"])).unwrap();
        assert_eq!(req.to_string(), r#"{"op":"knn","vector":[0.5,-1],"k":10}"#);
        let req = build_request(&parse(&["--pairs", "a:b, c:d"])).unwrap();
        assert_eq!(req.to_string(), r#"{"op":"score","pairs":[["a","b"],["c","d"]]}"#);
        let req = build_request(&parse(&["--stats"])).unwrap();
        assert_eq!(req.to_string(), r#"{"op":"stats"}"#);
    }

    #[test]
    fn mode_conflicts_are_usage_errors() {
        assert!(build_request(&parse(&[])).is_err());
        assert!(build_request(&parse(&["--node", "a", "--ping"])).is_err());
        assert!(build_request(&parse(&["--vector", "zero,one"])).is_err());
        assert!(build_request(&parse(&["--pairs", "nocolon"])).is_err());
    }

    #[test]
    fn formats_responses() {
        let resp = Json::parse(
            r#"{"ok":true,"k":1,"neighbors":[{"node":"bob","id":1,"dist":0.25}],"cached":false,
                "explain":{"probed_centroids":[2,0],"scanned":12,"rank_agreement":1}}"#
                .replace('\n', " ")
                .trim(),
        )
        .unwrap();
        let mut buf = Vec::new();
        format_response(&resp, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bob"));
        assert!(text.contains("probed centroids: [2, 0]"));
        assert!(text.contains("rank agreement: 1.000"));

        let err = Json::parse(r#"{"ok":false,"error":"boom"}"#).unwrap();
        let mut buf = Vec::new();
        format_response(&err, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("boom"));
    }

    #[test]
    fn unreachable_server_reports_a_connect_failure() {
        // Bind-then-drop guarantees nothing is listening on the port.
        let unused = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = unused.local_addr().unwrap().to_string();
        drop(unused);
        let args: Vec<String> = ["--addr", &addr, "--ping", "--timeout-ms", "500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut buf = Vec::new();
        let err = run(&args, &mut buf).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("unreachable"), "message: {}", err.message);
    }

    #[test]
    fn stuck_server_reports_a_mid_stream_timeout() {
        // Accepts the connection, never answers: up but wedged.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let sink = std::thread::spawn(move || {
            let _conn = listener.accept();
            std::thread::sleep(std::time::Duration::from_millis(400));
        });
        let args: Vec<String> = ["--addr", &addr, "--ping", "--timeout-ms", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut buf = Vec::new();
        let err = run(&args, &mut buf).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("accepted the connection but"), "message: {}", err.message);
        assert!(!err.message.contains("unreachable"));
        sink.join().unwrap();
    }
}
