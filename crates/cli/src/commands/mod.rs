//! Subcommand implementations.

pub mod export;
pub mod generate;
pub mod ingest;
pub mod linkpred;
pub mod nodeclass;
pub mod quantize;
pub mod query;
pub mod reconstruct;
pub mod router;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod train;

use crate::CliError;

/// Map an IO error into a runtime CLI error.
pub(crate) fn io_err(e: std::io::Error) -> CliError {
    CliError::runtime(format!("io error: {e}"))
}
