//! Method selection by name, covering the baselines and all EHNA
//! variants.

use crate::CliError;
use ehna_baselines::{Ctdne, EmbeddingMethod, Htne, Line, Node2Vec, SkipGramConfig};
use ehna_core::{
    load_checkpoint_path, AggregatorKind, EhnaConfig, EhnaVariant, Trainer, TrainingReport,
};
use ehna_nn::ioutil::backup_path;
use ehna_tgraph::{NodeEmbeddings, TemporalGraph};
use ehna_walks::{CtdneConfig, Node2VecConfig};
use std::path::PathBuf;

/// Per-method training knobs exposed on the CLI.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Epochs (EHNA / HTNE) or SGNS passes (walk methods).
    pub epochs: usize,
    /// Walks per target / per node.
    pub num_walks: usize,
    /// Walk length.
    pub walk_length: usize,
    /// node2vec-style return parameter.
    pub p: f64,
    /// node2vec-style in-out parameter.
    pub q: f64,
    /// Seed.
    pub seed: u64,
    /// Bidirectional negative sampling (EHNA, Eq. 7).
    pub bidirectional: bool,
    /// Walk-sampling worker threads (EHNA).
    pub threads: usize,
    /// Batch-prefetch pipeline depth (EHNA); `None` keeps the
    /// [`EhnaConfig`] default.
    pub pipeline_depth: Option<usize>,
    /// Checkpoint file (EHNA): written atomically after training, and —
    /// with [`TrainOptions::checkpoint_every`] — during it.
    pub checkpoint: Option<PathBuf>,
    /// Write the checkpoint every N epochs while training (EHNA);
    /// 0 disables periodic checkpointing.
    pub checkpoint_every: usize,
    /// Resume from [`TrainOptions::checkpoint`] instead of starting
    /// fresh (EHNA).
    pub resume: bool,
    /// Node-level aggregator (EHNA); `None` keeps the [`EhnaConfig`]
    /// default (`lstm`). The `ehna-attn` method name forces `attn`.
    pub aggregator: Option<AggregatorKind>,
    /// Attention heads for the `attn` aggregator (EHNA); `None` keeps
    /// the [`EhnaConfig`] default.
    pub heads: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            dim: 64,
            epochs: 3,
            num_walks: 5,
            walk_length: 5,
            p: 1.0,
            q: 1.0,
            seed: 42,
            bidirectional: false,
            threads: 1,
            pipeline_depth: None,
            checkpoint: None,
            checkpoint_every: 0,
            resume: false,
            aggregator: None,
            heads: None,
        }
    }
}

/// The [`EhnaConfig`] a [`TrainOptions`] set resolves to for `variant`.
///
/// Shared by `ehna train` and `ehna stream`: a streaming session must
/// reconstruct exactly the architecture (dim, layers, aggregation,
/// attention, walk style) the checkpoint was trained with, or the
/// checkpoint loader rejects it.
pub fn ehna_config(variant: EhnaVariant, opts: &TrainOptions) -> EhnaConfig {
    let defaults = EhnaConfig::default();
    variant.configure(EhnaConfig {
        dim: opts.dim,
        num_walks: opts.num_walks,
        walk_length: opts.walk_length,
        p: opts.p,
        q: opts.q,
        epochs: opts.epochs,
        batch_size: 128,
        lr: 2e-3,
        seed: opts.seed,
        bidirectional: opts.bidirectional,
        threads: opts.threads,
        pipeline_depth: opts.pipeline_depth.unwrap_or(defaults.pipeline_depth),
        checkpoint_every: opts.checkpoint_every,
        aggregator: opts.aggregator.unwrap_or(defaults.aggregator),
        heads: opts.heads.unwrap_or(defaults.heads),
        ..defaults
    })
}

/// What a training run produced: the embeddings, and — for EHNA methods,
/// which train through [`Trainer`] — the trainer's report with per-epoch
/// losses and sample/compute/stall phase timings.
pub struct TrainOutcome {
    /// The trained node embeddings.
    pub embeddings: NodeEmbeddings,
    /// Trainer report; `None` for the baseline methods.
    pub report: Option<TrainingReport>,
    /// Non-fatal conditions the operator should see (e.g. a resume that
    /// fell back to the `.bak` checkpoint, or one that could not restore
    /// optimizer state and will not be bit-faithful).
    pub warnings: Vec<String>,
}

/// A method selected by CLI name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodName {
    /// Full EHNA or one of its Table VII variants.
    Ehna(EhnaVariant),
    /// Static node2vec baseline.
    Node2Vec,
    /// CTDNE baseline.
    Ctdne,
    /// LINE baseline.
    Line,
    /// HTNE baseline.
    Htne,
}

/// Every accepted method name, for help text.
pub const METHOD_NAMES: [&str; 9] =
    ["ehna", "ehna-na", "ehna-rw", "ehna-sl", "ehna-attn", "node2vec", "ctdne", "line", "htne"];

impl MethodName {
    /// Parse a CLI method name.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "ehna" => Ok(MethodName::Ehna(EhnaVariant::Full)),
            "ehna-na" => Ok(MethodName::Ehna(EhnaVariant::NoAttention)),
            "ehna-rw" => Ok(MethodName::Ehna(EhnaVariant::StaticWalks)),
            "ehna-sl" => Ok(MethodName::Ehna(EhnaVariant::SingleLevel)),
            "ehna-attn" => Ok(MethodName::Ehna(EhnaVariant::Attention)),
            "node2vec" => Ok(MethodName::Node2Vec),
            "ctdne" => Ok(MethodName::Ctdne),
            "line" => Ok(MethodName::Line),
            "htne" => Ok(MethodName::Htne),
            other => Err(CliError::usage(format!(
                "unknown method '{other}' (expected one of: {})",
                METHOD_NAMES.join(", ")
            ))),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodName::Ehna(v) => v.name(),
            MethodName::Node2Vec => "Node2Vec",
            MethodName::Ctdne => "CTDNE",
            MethodName::Line => "LINE",
            MethodName::Htne => "HTNE",
        }
    }

    /// Train on `graph` with `opts`, returning only the embeddings.
    pub fn train(
        self,
        graph: &TemporalGraph,
        opts: &TrainOptions,
    ) -> Result<NodeEmbeddings, CliError> {
        self.train_full(graph, opts).map(|o| o.embeddings)
    }

    /// Train on `graph` with `opts`, keeping the trainer report when the
    /// method produces one.
    pub fn train_full(
        self,
        graph: &TemporalGraph,
        opts: &TrainOptions,
    ) -> Result<TrainOutcome, CliError> {
        if !matches!(self, MethodName::Ehna(_))
            && (opts.checkpoint.is_some() || opts.checkpoint_every > 0 || opts.resume)
        {
            return Err(CliError::usage(format!(
                "--checkpoint / --checkpoint-every / --resume only apply to EHNA methods, \
                 not {}",
                self.name()
            )));
        }
        let mut report = None;
        let mut warnings = Vec::new();
        let emb = match self {
            MethodName::Ehna(variant) => {
                let config = ehna_config(variant, opts);
                let mut trainer = if opts.resume {
                    let path = opts
                        .checkpoint
                        .as_deref()
                        .ok_or_else(|| CliError::usage("--resume requires --checkpoint PATH"))?;
                    let (ckpt, used_backup) =
                        load_checkpoint_path(path, graph, config).map_err(|e| {
                            CliError::runtime(format!("cannot resume from {}: {e}", path.display()))
                        })?;
                    if used_backup {
                        warnings.push(format!(
                            "checkpoint {} was missing or unreadable; resumed from backup {}",
                            path.display(),
                            backup_path(path).display()
                        ));
                    }
                    if let Some(w) = ckpt.resume_warning() {
                        warnings.push(w);
                    }
                    warnings.extend(ckpt.warnings.iter().cloned());
                    Trainer::from_checkpoint(graph, ckpt).map_err(CliError::usage)?
                } else {
                    Trainer::new(graph, config).map_err(CliError::usage)?
                };
                if let Some(path) = opts.checkpoint.clone() {
                    trainer.set_checkpoint_hook(Box::new(move |_epoch, t| {
                        t.checkpoint_to_path(&path)
                    }));
                }
                let r = trainer.train();
                if let Some(err) = &r.checkpoint_error {
                    return Err(CliError::runtime(format!("periodic checkpoint failed: {err}")));
                }
                // Save the final checkpoint *before* inference: embedding
                // extraction advances the trainer's RNG on the fallback
                // path, and a resumed run must continue from the post-
                // training state, not the post-inference one.
                if let Some(path) = &opts.checkpoint {
                    trainer.checkpoint_to_path(path).map_err(|e| {
                        CliError::runtime(format!(
                            "cannot write checkpoint {}: {e}",
                            path.display()
                        ))
                    })?;
                }
                report = Some(r);
                trainer.into_embeddings()
            }
            MethodName::Node2Vec => Node2Vec {
                walks: Node2VecConfig {
                    length: opts.walk_length.max(10) * 4,
                    walks_per_node: opts.num_walks,
                    p: opts.p,
                    q: opts.q,
                },
                sgns: SkipGramConfig { dim: opts.dim, epochs: opts.epochs, ..Default::default() },
                threads: 1,
            }
            .embed(graph, opts.seed),
            MethodName::Ctdne => Ctdne {
                walks: CtdneConfig { length: opts.walk_length.max(10) * 4, ..Default::default() },
                walks_per_node: opts.num_walks,
                sgns: SkipGramConfig { dim: opts.dim, epochs: opts.epochs, ..Default::default() },
                threads: 1,
            }
            .embed(graph, opts.seed),
            MethodName::Line => {
                if opts.dim % 2 != 0 {
                    return Err(CliError::usage("LINE needs an even --dim".to_string()));
                }
                Line {
                    dim: opts.dim,
                    samples_per_edge: 20 * opts.epochs.max(1),
                    ..Default::default()
                }
                .embed(graph, opts.seed)
            }
            MethodName::Htne => {
                Htne { dim: opts.dim, epochs: opts.epochs.max(1) * 2, ..Default::default() }
                    .embed(graph, opts.seed)
            }
        };
        Ok(TrainOutcome { embeddings: emb, report, warnings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehna_tgraph::GraphBuilder;

    #[test]
    fn all_names_parse() {
        for name in METHOD_NAMES {
            assert!(MethodName::parse(name).is_ok(), "{name}");
        }
        assert!(MethodName::parse("gcn").is_err());
    }

    #[test]
    fn variant_names_roundtrip() {
        assert_eq!(MethodName::parse("ehna-rw").unwrap().name(), "EHNA-RW");
        assert_eq!(MethodName::parse("EHNA").unwrap().name(), "EHNA");
        assert_eq!(MethodName::parse("ehna-attn").unwrap().name(), "EHNA-ATTN");
    }

    #[test]
    fn aggregator_flags_reach_the_config() {
        let opts = TrainOptions {
            aggregator: Some(AggregatorKind::Attn),
            heads: Some(8),
            ..Default::default()
        };
        let cfg = ehna_config(EhnaVariant::Full, &opts);
        assert_eq!(cfg.aggregator, AggregatorKind::Attn);
        assert_eq!(cfg.heads, 8);
        // The ehna-attn method name forces attn regardless of the flag.
        let cfg = ehna_config(EhnaVariant::Attention, &TrainOptions::default());
        assert_eq!(cfg.aggregator, AggregatorKind::Attn);
        // And plain ehna defaults to the paper's LSTM.
        let cfg = ehna_config(EhnaVariant::Full, &TrainOptions::default());
        assert_eq!(cfg.aggregator, AggregatorKind::Lstm);
    }

    #[test]
    fn line_rejects_odd_dim() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let opts = TrainOptions { dim: 15, epochs: 1, ..Default::default() };
        assert!(MethodName::Line.train(&g, &opts).is_err());
    }

    #[test]
    fn baselines_reject_checkpoint_flags() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        for opts in [
            TrainOptions { checkpoint: Some("/tmp/x.ckpt".into()), ..Default::default() },
            TrainOptions { checkpoint_every: 1, ..Default::default() },
            TrainOptions { resume: true, ..Default::default() },
        ] {
            let err = MethodName::Htne.train(&g, &opts).unwrap_err();
            assert_eq!(err.code, 2, "{}", err.message);
            assert!(err.message.contains("EHNA"), "{}", err.message);
        }
    }

    #[test]
    fn resume_requires_checkpoint_path() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let opts = TrainOptions { resume: true, epochs: 1, ..Default::default() };
        let err = MethodName::Ehna(EhnaVariant::Full).train(&g, &opts).unwrap_err();
        assert!(err.message.contains("--checkpoint"), "{}", err.message);
    }

    fn richer_graph() -> ehna_tgraph::TemporalGraph {
        let mut b = GraphBuilder::new();
        for i in 0..10u32 {
            b.add_edge(i, (i + 1) % 11, i as i64, 1.0).unwrap();
            b.add_edge(i, (i + 4) % 11, i as i64 + 2, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_training() {
        let g = richer_graph();
        let ckpt = std::env::temp_dir()
            .join(format!("ehna_cli_method_resume_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(backup_path(&ckpt));
        let base = TrainOptions { dim: 8, num_walks: 2, walk_length: 3, ..Default::default() };
        let m = MethodName::Ehna(EhnaVariant::Full);

        let reference = m.train_full(&g, &TrainOptions { epochs: 4, ..base.clone() }).unwrap();

        let first = m
            .train_full(
                &g,
                &TrainOptions { epochs: 2, checkpoint: Some(ckpt.clone()), ..base.clone() },
            )
            .unwrap();
        assert!(first.warnings.is_empty());
        let resumed = m
            .train_full(
                &g,
                &TrainOptions {
                    epochs: 2,
                    checkpoint: Some(ckpt.clone()),
                    resume: true,
                    ..base.clone()
                },
            )
            .unwrap();
        assert!(resumed.warnings.is_empty(), "unexpected: {:?}", resumed.warnings);

        let bits = |r: &TrainOutcome| -> Vec<u64> {
            r.report.as_ref().unwrap().epoch_losses.iter().map(|l| l.to_bits()).collect()
        };
        let mut stitched = bits(&first);
        stitched.extend(bits(&resumed));
        assert_eq!(bits(&reference), stitched, "losses diverged across CLI resume");
        assert_eq!(reference.embeddings, resumed.embeddings, "embeddings diverged");
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(backup_path(&ckpt));
    }

    #[test]
    fn tiny_training_works_for_each_method() {
        let mut b = GraphBuilder::new();
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 9, i as i64, 1.0).unwrap();
            b.add_edge(i, (i + 3) % 9, i as i64 + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let opts =
            TrainOptions { dim: 8, epochs: 1, num_walks: 2, walk_length: 3, ..Default::default() };
        for name in METHOD_NAMES {
            let m = MethodName::parse(name).unwrap();
            let e = m.train(&g, &opts).unwrap();
            assert_eq!(e.num_nodes(), g.num_nodes(), "{name}");
            assert_eq!(e.dim(), 8, "{name}");
        }
    }
}
