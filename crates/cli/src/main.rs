//! The `ehna` binary: thin wrapper around [`ehna_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = ehna_cli::run(&args, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(e.code);
    }
}
