//! Property-based invariants of the temporal graph substrate.

use ehna_tgraph::{GraphBuilder, NodeEmbeddings, NodeId, SnapshotView, TemporalGraph, Timestamp};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = TemporalGraph> {
    proptest::collection::vec((0u32..40, 0u32..40, -50i64..50, 0.1f64..10.0), 1..200)
        .prop_filter_map("needs at least one non-loop edge", |edges| {
            let mut b = GraphBuilder::new();
            let mut any = false;
            for (a, bb, t, w) in edges {
                if a != bb {
                    b.add_edge(a, bb, t, w).expect("valid");
                    any = true;
                }
            }
            if any {
                Some(b.build().expect("non-empty"))
            } else {
                None
            }
        })
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edge_count(g in arb_graph()) {
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn adjacency_is_time_sorted_and_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0].t <= w[1].t));
            for n in nbrs {
                // The reverse direction must exist with the same time.
                let back = g.neighbors(n.node).iter().any(|m| m.node == v && m.t == n.t);
                prop_assert!(back, "asymmetric adjacency at {v:?}");
                // has_edge agrees with adjacency.
                prop_assert!(g.has_edge(v, n.node));
            }
        }
    }

    #[test]
    fn time_partition_is_exhaustive(g in arb_graph(), t in -60i64..60) {
        let t = Timestamp(t);
        for v in g.nodes() {
            let before = g.neighbors_before(v, t).len();
            let upto = g.neighbors_at_or_before(v, t).len();
            let all = g.neighbors(v).len();
            prop_assert!(before <= upto && upto <= all);
            let after = g.neighbors(v).iter().filter(|n| n.t > t).count();
            prop_assert_eq!(upto + after, all);
        }
    }

    #[test]
    fn snapshot_view_matches_materialized_subgraph(g in arb_graph(), t in -60i64..60) {
        let t = Timestamp(t);
        let view = SnapshotView::strict(&g, t);
        match g.subgraph_before(t) {
            Some(sub) => {
                prop_assert_eq!(view.num_edges(), sub.num_edges());
                for v in g.nodes() {
                    prop_assert_eq!(view.degree(v), sub.degree(v));
                }
            }
            None => prop_assert_eq!(view.num_edges(), 0),
        }
    }

    #[test]
    fn edges_before_is_a_partition_point(g in arb_graph(), t in -60i64..60) {
        let t = Timestamp(t);
        let k = g.edges_before(t);
        prop_assert!(g.edges()[..k].iter().all(|e| e.t < t));
        prop_assert!(g.edges()[k..].iter().all(|e| e.t >= t));
    }

    #[test]
    fn embedding_bytes_roundtrip(
        dim in 1usize..16,
        rows in 0usize..20,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let e = NodeEmbeddings::from_vec(dim, data);
        let back = NodeEmbeddings::from_bytes(&e.to_bytes()).expect("roundtrip");
        prop_assert_eq!(e, back);
    }

    #[test]
    fn corrupted_magic_or_version_is_rejected(
        dim in 1usize..16,
        rows in 0usize..20,
        byte in 0usize..8,
        mask in 1u8..=255,
    ) {
        // Any bit flip in the magic or version field must fail parsing.
        let e = NodeEmbeddings::zeros(rows, dim);
        let mut bytes = e.to_bytes();
        bytes[byte] ^= mask;
        prop_assert!(NodeEmbeddings::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_snapshot_is_rejected(
        dim in 1usize..16,
        rows in 0usize..20,
        cut in 0.0f64..1.0,
    ) {
        // Every strict prefix (and any extension) of a snapshot fails:
        // the header pins the exact payload size.
        let e = NodeEmbeddings::zeros(rows, dim);
        let full = e.to_bytes();
        let keep = (cut * full.len() as f64) as usize; // < full.len()
        prop_assert!(NodeEmbeddings::from_bytes(&full[..keep]).is_err());
        let mut extended = full.clone();
        extended.push(0);
        prop_assert!(NodeEmbeddings::from_bytes(&extended).is_err());
    }

    #[test]
    fn header_size_lies_are_rejected(
        dim in 1usize..16,
        rows in 1usize..20,
        bump in 1u32..5,
    ) {
        // Growing the claimed row count without payload must fail.
        let e = NodeEmbeddings::zeros(rows, dim);
        let mut bytes = e.to_bytes();
        let claimed = rows as u32 + bump;
        bytes[8..12].copy_from_slice(&claimed.to_be_bytes());
        prop_assert!(NodeEmbeddings::from_bytes(&bytes).is_err());
    }

    #[test]
    fn sq_dist_is_a_metric_square(
        dim in 1usize..8,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..3 * dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let e = NodeEmbeddings::from_vec(dim, data);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        prop_assert_eq!(e.sq_dist(a, a), 0.0);
        prop_assert!((e.sq_dist(a, b) - e.sq_dist(b, a)).abs() < 1e-9);
        // Triangle inequality on the *square roots*.
        let (dab, dbc, dac) =
            (e.sq_dist(a, b).sqrt(), e.sq_dist(b, c).sqrt(), e.sq_dist(a, c).sqrt());
        prop_assert!(dac <= dab + dbc + 1e-6);
    }
}
