//! Robustness gates for the EHNQ v1 quantized-artifact format:
//! property-based round-trips per format, exhaustive truncation and
//! single-byte-corruption rejection, the O(1)-open contract (mmap opens
//! must not read the code section), and heap/mmap answer identity.
//!
//! CI runs this suite as the quant format gate (scripts/ci.sh).

use ehna_tgraph::quant::{f16_to_f32, f32_to_f16, sq_dist_f64};
use ehna_tgraph::{NodeEmbeddings, NodeId, QuantFormat, QuantSpec, QuantizedEmbeddings};
use proptest::prelude::*;

const ALL_FORMATS: [QuantFormat; 4] =
    [QuantFormat::F32, QuantFormat::F16, QuantFormat::Int8, QuantFormat::Pq];

fn spec_for(format: QuantFormat, dim: usize) -> QuantSpec {
    let mut spec = QuantSpec::new(format);
    // pq_m must divide dim; the smallest divisor > 1 keeps tests fast
    // while still exercising multi-subspace LUTs.
    spec.pq_m = if dim % 4 == 0 { 4 } else { dim };
    spec
}

fn table(n: usize, dim: usize) -> NodeEmbeddings {
    let data: Vec<f32> = (0..n * dim).map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.125).collect();
    NodeEmbeddings::from_vec(dim, data)
}

// ------------------------------------------------------------ round-trip

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Per-format serialization round-trip on random tables: the file
    // image reparses, geometry survives, decoding is stable, and the
    // decode error is bounded by the format's contract.
    #[test]
    fn round_trip_preserves_rows(
        n in 0usize..24,
        dim_quarters in 1usize..5,
        values in proptest::collection::vec(-64.0f32..64.0, 0..24 * 16),
    ) {
        let dim = dim_quarters * 4;
        let mut data = vec![0.0f32; n * dim];
        for (i, slot) in data.iter_mut().enumerate() {
            *slot = values.get(i % values.len().max(1)).copied().unwrap_or(0.0)
                + (i % 7) as f32 * 0.25;
        }
        let emb = NodeEmbeddings::from_vec(dim, data);
        for format in ALL_FORMATS {
            let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, dim)).unwrap();
            let back = QuantizedEmbeddings::from_bytes(q.as_bytes()).unwrap();
            prop_assert_eq!(back.num_nodes(), n);
            prop_assert_eq!(back.dim(), dim);
            prop_assert_eq!(back.format(), format);
            for i in 0..n {
                let src = emb.get(NodeId(i as u32));
                let dec = back.row(i);
                prop_assert_eq!(dec.len(), dim);
                // The reparsed image must decode exactly like the
                // original encoder output (byte-stable codes)...
                prop_assert_eq!(&*q.row(i), &*dec);
                for (d, s) in dec.iter().zip(src) {
                    prop_assert!(d.is_finite());
                    match format {
                        // ...and per-format error bounds hold: f32 is
                        // lossless, f16 is within half a ulp at 64
                        // (2^-4 here), int8 within half a grid step.
                        QuantFormat::F32 => prop_assert_eq!(*d, *s),
                        QuantFormat::F16 => prop_assert!((d - s).abs() <= 0.0625),
                        QuantFormat::Int8 => prop_assert!((d - s).abs() <= 130.0 / 255.0 / 2.0 + 1e-4),
                        QuantFormat::Pq => {} // lossy by design; gated via recall in ehna-serve
                    }
                }
            }
        }
    }
}

// ------------------------------------------- truncation and corruption

#[test]
fn every_truncation_is_rejected() {
    let emb = table(6, 4);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 4)).unwrap();
        let image = q.as_bytes();
        for len in 0..image.len() {
            assert!(
                QuantizedEmbeddings::from_bytes(&image[..len]).is_err(),
                "{format:?}: truncation to {len}/{} bytes accepted",
                image.len()
            );
        }
        // One byte appended is just as malformed as one byte missing.
        let mut grown = image.to_vec();
        grown.push(0);
        assert!(QuantizedEmbeddings::from_bytes(&grown).is_err(), "{format:?}: trailing byte");
    }
}

#[test]
fn every_single_byte_corruption_is_rejected_on_heap_open() {
    // Header, meta, and code sections each carry an FNV-1a checksum and
    // together they cover every byte of the file, so no single-byte flip
    // can slip through a fully-verified (heap) open.
    let emb = table(5, 4);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 4)).unwrap();
        let image = q.as_bytes();
        for off in 0..image.len() {
            let mut bad = image.to_vec();
            bad[off] ^= 0x40;
            assert!(
                QuantizedEmbeddings::from_bytes(&bad).is_err(),
                "{format:?}: flipped bit at byte {off}/{} accepted",
                image.len()
            );
        }
    }
}

#[test]
fn mmap_open_skips_the_code_section_until_audited() {
    // The O(1)-open contract, stated as a falsifiable test: corrupting a
    // payload byte must NOT fail an mmap open (it verifies only header +
    // meta, O(dim) work), must fail the deferred audit, and must fail a
    // heap open. If mmap open ever started reading the payload, the
    // first assertion would flip.
    let dir = std::env::temp_dir().join("ehna_quant_mmap_skip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(16, 8);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 8)).unwrap();
        let path = dir.join(format!("{}.ehnq", format.label()));
        let mut image = q.as_bytes().to_vec();
        let last = image.len() - 1; // final code byte: covered by code_fnv only
        image[last] ^= 0xFF;
        std::fs::write(&path, &image).unwrap();

        assert!(
            QuantizedEmbeddings::open_path(&path, false).is_err(),
            "{format:?}: heap open must verify the payload"
        );
        if cfg!(unix) {
            let mapped = QuantizedEmbeddings::open_path(&path, true)
                .unwrap_or_else(|e| panic!("{format:?}: mmap open read the payload: {e}"));
            assert!(mapped.is_mmap());
            assert!(mapped.verify_payload().is_err(), "{format:?}: audit missed corruption");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------- f16 exhaustiveness

#[test]
fn f16_conversion_is_exhaustively_consistent() {
    // All 65536 bit patterns: widening then re-narrowing is the
    // identity on every non-NaN value (including both zeros, all
    // subnormals, and both infinities); NaNs collapse to the canonical
    // quiet NaN rather than escaping as garbage.
    for bits in 0u16..=u16::MAX {
        let wide = f16_to_f32(bits);
        let back = f32_to_f16(wide);
        let exp = (bits >> 10) & 0x1F;
        let mantissa = bits & 0x3FF;
        if exp == 0x1F && mantissa != 0 {
            assert!(wide.is_nan(), "{bits:#06x} should widen to NaN");
            // Payload collapses to the canonical quiet NaN; the sign
            // bit may survive (both spellings are quiet NaNs).
            assert_eq!(back & 0x7FFF, 0x7E00, "{bits:#06x} renarrowed to {back:#06x}");
        } else {
            assert_eq!(back, bits, "{bits:#06x} -> {wide} -> {back:#06x}");
        }
    }
}

// -------------------------------------------------- alignment and rows

#[test]
fn sections_are_64_byte_aligned() {
    let emb = table(9, 8);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 8)).unwrap();
        let image = q.as_bytes();
        assert_eq!(image.as_ptr() as usize % 64, 0, "{format:?}: buffer not 64-aligned");
        // The code section starts on a 64-byte boundary of the file, so
        // an aligned buffer (or any mmap, page-aligned) yields aligned
        // row pointers for the f32 zero-copy view.
        let code_off = image.len() - 9 * q.code_bytes_per_node();
        assert_eq!(code_off % 64, 0, "{format:?}: code section offset {code_off}");
        if format == QuantFormat::F32 {
            let view = q.row_f32_view(0).expect("f32 rows are zero-copy");
            assert_eq!(view.as_ptr() as usize % 4, 0);
            assert_eq!(view, emb.get(NodeId(0)));
        } else {
            assert!(q.row_f32_view(0).is_none(), "{format:?} must not alias rows as f32");
        }
    }
}

#[test]
fn select_rows_round_trips_and_bounds_checks() {
    let emb = table(10, 4);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 4)).unwrap();
        let sub = QuantizedEmbeddings::from_bytes(&q.select_rows(&[7, 0, 3]).unwrap()).unwrap();
        assert_eq!(sub.num_nodes(), 3);
        for (local, global) in [(0usize, 7usize), (1, 0), (2, 3)] {
            assert_eq!(&*sub.row(local), &*q.row(global), "{format:?} row {global}");
        }
        let empty = QuantizedEmbeddings::from_bytes(&q.select_rows(&[]).unwrap()).unwrap();
        assert_eq!(empty.num_nodes(), 0);
        assert!(q.select_rows(&[10]).is_err(), "{format:?}: out-of-range accepted");
    }
}

// ------------------------------------------------- heap/mmap identity

#[test]
fn mmap_and_heap_scorers_agree_bit_for_bit() {
    let dir = std::env::temp_dir().join("ehna_quant_mmap_identity");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let emb = table(40, 8);
    for format in ALL_FORMATS {
        let q = QuantizedEmbeddings::encode(&emb, &spec_for(format, 8)).unwrap();
        let path = dir.join(format!("{}.ehnq", format.label()));
        q.save_path(&path).unwrap();
        let heap = QuantizedEmbeddings::open_path(&path, false).unwrap();
        let mapped = QuantizedEmbeddings::open_path(&path, true).unwrap();
        assert_eq!(mapped.is_mmap(), cfg!(unix));
        for probe in [0usize, 7, 39] {
            let query = heap.row(probe).into_owned();
            let hs = heap.scorer(&query);
            let ms = mapped.scorer(&query);
            for i in 0..heap.num_nodes() {
                assert_eq!(
                    hs.dist(i).to_bits(),
                    ms.dist(i).to_bits(),
                    "{format:?}: dist({probe}, {i}) diverged between heap and mmap"
                );
                assert_eq!(&*heap.row(i), &*mapped.row(i));
            }
            // The symmetric decoded-row distance pins the same f64
            // accumulation contract both scorers are built on.
            let d = sq_dist_f64(&heap.row(probe), &mapped.row(probe));
            assert_eq!(d, 0.0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
